"""Legacy setup shim (metadata lives in pyproject.toml).

Present so that ``pip install -e .`` works on environments whose
setuptools predates full PEP 660 editable-install support.
"""

from setuptools import setup

setup()
