#!/usr/bin/env python
"""Distributed predicate detection over the global-state lattice.

[11] pairs the synchronization relations with *distributed predicate
specification*.  This demo detects a mutual-exclusion violation two
ways and shows they agree:

1. as a **global predicate** — ``Possibly(both nodes inside the
   critical section)`` over the consistent-global-state lattice
   (Cooper–Marzullo sweep and the Garg–Waldecker conjunctive fast
   path);
2. as a **relation condition** — the occupancies are *not* serialised
   by ``R1(U,L)`` either way.

Run:  python examples/predicate_detection.py
"""

from repro.apps.mutex import MutualExclusionChecker, token_mutex_trace
from repro.globalstates import (
    GlobalStateLattice,
    possibly,
    possibly_conjunctive,
)


def in_cs_predicate(execution, occupancies):
    """Per-node local predicates: 'this node is inside some occupancy'.

    Node ``n`` is inside a critical section after its ``i``-th event iff
    that event carries a ``cs:`` label and is not the occupancy's last
    event on the node (entry..exit markers).
    """
    inside = {}
    for occ in occupancies.values():
        for node in occ.node_set:
            lo, hi = occ.first_at(node), occ.last_at(node)
            inside.setdefault(node, []).append((lo, hi))

    def local(node, index, spans=inside):
        return any(lo <= index < hi for lo, hi in spans.get(node, []))

    return {node: local for node in inside}


def analyse(violate: bool) -> None:
    title = "racy run" if violate else "correct run"
    print("=" * 70)
    print(f"Detecting simultaneous critical-section occupancy — {title}")
    print("=" * 70)
    execution, occupancies = token_mutex_trace(
        num_nodes=3, occupancies=3, replicas=1, violate=violate, seed=2
    )
    lattice = GlobalStateLattice(execution)
    print(f"execution: {execution.trace.total_events} events; "
          f"{lattice.count()} consistent global states")

    locals_ = in_cs_predicate(execution, occupancies)

    def two_inside(state):
        return sum(
            1 for node, p in locals_.items() if p(node, state[node])
        ) >= 2

    hit = possibly(execution, two_inside)
    print(f"Possibly(two nodes inside a CS): "
          f"{'YES at state ' + str(hit) if hit else 'no'}")

    # relation view
    violations = MutualExclusionChecker(execution).check()
    print(f"relation checker violations: {len(violations)}")
    agree = bool(hit is not None) == bool(violations)
    print(f"the two views agree: {agree}\n")


def conjunctive_fast_path_demo() -> None:
    print("=" * 70)
    print("Garg–Waldecker fast path vs lattice sweep")
    print("=" * 70)
    from repro.simulation.workloads import random_execution

    ex = random_execution(4, events_per_node=6, msg_prob=0.4, seed=9)
    # "every node has executed at least half its events"
    locals_ = {
        n: (lambda n_, i, t=ex.num_real(n) // 2: i >= t)
        for n in range(ex.num_nodes)
    }
    fast = possibly_conjunctive(ex, locals_)
    slow = possibly(
        ex, lambda s: all(p(n, s[n]) for n, p in locals_.items())
    )
    print(f"least satisfying state (fast path):   {fast}")
    print(f"least satisfying state (full sweep):  {slow}")
    print(f"lattice size: {GlobalStateLattice(ex).count()} states; the fast "
          "path visited none of them")


if __name__ == "__main__":
    analyse(violate=False)
    analyse(violate=True)
    conjunctive_fast_path_demo()
