#!/usr/bin/env python
"""Regenerate the paper's three figures as ASCII space-time diagrams.

* Figure 1 — poset events X and Y with their proxies L/U;
* Figure 2 — the 8-event poset X on 4 nodes with cuts C1(X)–C4(X);
* Figure 3 — the four cuts of each proxy L_X and U_X, with the
  coincidences noted in Section 2.5 verified.

Run:  python examples/paper_figures.py
"""

from repro.simulation.scenarios import figure1, figure2, figure3
from repro.viz import render, render_cut_table


def show_figure1() -> None:
    fig = figure1()
    print("=" * 70)
    print("Figure 1: poset events X and Y and their proxies")
    print("=" * 70)
    print(render(
        fig.execution,
        intervals={"X": fig.x, "Y": fig.y},
        show_messages=True,
    ))
    print(f"\nN_X = {list(fig.x.node_set)}, N_Y = {list(fig.y.node_set)}")
    print(f"L_X = {sorted(fig.lx.ids)}")
    print(f"U_X = {sorted(fig.ux.ids)}")
    print(f"L_Y = {sorted(fig.ly.ids)}")
    print(f"U_Y = {sorted(fig.uy.ids)}")


def show_figure2() -> None:
    fig = figure2()
    print("\n" + "=" * 70)
    print("Figure 2: cuts of poset X (8 atomic events, 4 nodes)")
    print("=" * 70)
    print(render(
        fig.execution,
        intervals={"X": fig.x},
        cuts={
            "C1": fig.cuts.c1,
            "C2": fig.cuts.c2,
            "C3": fig.cuts.c3,
            "C4": fig.cuts.c4,
        },
        show_messages=False,
    ))
    print("\nCut timestamps (Table 2):")
    print(render_cut_table({
        "C1(X) = ∩⇓X": fig.cuts.c1,
        "C2(X) = ∪⇓X": fig.cuts.c2,
        "C3(X) = ∩⇑X": fig.cuts.c3,
        "C4(X) = ∪⇑X": fig.cuts.c4,
    }))
    print(f"\nC1 ⊆ C2: {fig.cuts.c1.issubset(fig.cuts.c2)}")
    print(f"C3 ⊆ C4: {fig.cuts.c3.issubset(fig.cuts.c4)}")


def show_figure3() -> None:
    fig = figure3()
    print("\n" + "=" * 70)
    print("Figure 3: cuts of proxies L_X and U_X")
    print("=" * 70)
    print(f"L_X = {sorted(fig.lx.ids)}")
    print(f"U_X = {sorted(fig.ux.ids)}\n")
    print(render_cut_table({
        "C1(L_X)": fig.cuts_lx.c1,
        "C2(L_X)": fig.cuts_lx.c2,
        "C3(L_X)": fig.cuts_lx.c3,
        "C4(L_X)": fig.cuts_lx.c4,
        "C1(U_X)": fig.cuts_ux.c1,
        "C2(U_X)": fig.cuts_ux.c2,
        "C3(U_X)": fig.cuts_ux.c3,
        "C4(U_X)": fig.cuts_ux.c4,
    }))
    print("\nCoincidences (Section 2.5):")
    print(f"  C1(L_X) == C1(X): {fig.cuts_lx.c1 == fig.cuts_x.c1}")
    print(f"  C2(U_X) == C2(X): {fig.cuts_ux.c2 == fig.cuts_x.c2}")
    print(f"  C3(L_X) == C3(X): {fig.cuts_lx.c3 == fig.cuts_x.c3}")
    print(f"  C4(U_X) == C4(X): {fig.cuts_ux.c4 == fig.cuts_x.c4}")


if __name__ == "__main__":
    show_figure1()
    show_figure2()
    show_figure3()
