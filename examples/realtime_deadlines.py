#!/usr/bin/env python
"""Causal + temporal verification of a process-control loop.

The paper's real-time applications need both halves of each
requirement checked: the *causal* half (this round's actuation was
driven by this round's samples — a relation condition) and the
*temporal* half (and completed within the deadline).  This demo runs
the sensor → controller → actuator loop, then checks per-round timed
constraints and reports which half failed when a deadline is
artificially tightened.

Run:  python examples/realtime_deadlines.py
"""

from repro.apps.process_control import control_loop
from repro.core import SynchronizationAnalyzer
from repro.realtime import RealTimeChecker, TimedConstraint, periodic_jitter


def main() -> None:
    loop = control_loop(num_sensors=3, num_actuators=2, periods=4)
    analyzer = SynchronizationAnalyzer(loop.execution)
    checker = RealTimeChecker(analyzer)
    bindings = loop.bindings()

    print("=" * 70)
    print("Per-round constraints: causal (R1(U,L)) + deadline")
    print("=" * 70)
    for deadline, label in ((25.0, "generous deadline"),
                            (5.0, "tight deadline")):
        print(f"\n-- {label}: sample -> apply within {deadline} time units --")
        constraints = {
            f"round{p}": TimedConstraint(
                name=f"round{p}",
                source=f"sample{p}",
                target=f"apply{p}",
                causal=f"R1(U,L)(sample{p}, apply{p})",
                max_latency=deadline,
                anchor=("end", "end"),
            )
            for p in range(loop.periods)
        }
        for name, report in checker.check_all(constraints, bindings).items():
            print(f"  {report}")

    print()
    print("=" * 70)
    print("Sampling-period jitter")
    print("=" * 70)
    stats = periodic_jitter(list(loop.samples))
    print(f"periods: {[f'{p:.1f}' for p in stats.periods]}")
    print(f"mean {stats.mean:.2f}, stdev {stats.stdev:.2f}, "
          f"peak-to-peak jitter {stats.jitter:.2f}")


if __name__ == "__main__":
    main()
