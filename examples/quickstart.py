#!/usr/bin/env python
"""Quickstart: record an execution, define nonatomic events, test relations.

This walks the library's core loop end to end:

1. record a small distributed execution (two processes, one message);
2. group events into nonatomic (poset) events X and Y;
3. ask which synchronization relations hold — one relation, all 32,
   and the strongest ones;
4. peek under the hood: the four cuts of X and the comparison counts
   that make the linear evaluation cheap.

Run:  python examples/quickstart.py
"""

from repro import (
    ComparisonCounter,
    SynchronizationAnalyzer,
    TraceBuilder,
    cuts_of,
)
from repro.core import LinearEvaluator
from repro.viz import render, render_cut_table


def main() -> None:
    # 1. Record an execution ------------------------------------------------
    # P0:  x1 --- x2(send) ------------ a3
    # P1:  y1 ---------- y2(recv) ----- y3
    b = TraceBuilder(2)
    x1 = b.internal(0, label="x")
    m = b.send(0, label="x")
    y1 = b.internal(1)
    y2 = b.recv(1, m, label="y")
    b.internal(0)
    y3 = b.internal(1, label="y")
    execution = b.execute()

    print("The execution:")
    print(render(execution))

    # 2. Nonatomic events ---------------------------------------------------
    analyzer = SynchronizationAnalyzer(execution)
    X = analyzer.interval([x1, m.send], name="X")
    Y = analyzer.interval([y2, y3], name="Y")
    print(f"\nX = {sorted(X.ids)}   (spans nodes {list(X.node_set)})")
    print(f"Y = {sorted(Y.ids)}   (spans nodes {list(Y.node_set)})")

    # 3. Relations ----------------------------------------------------------
    r2p = "R2'"
    print(f"\nR1(X, Y)      = {analyzer.holds('R1', X, Y)}"
          "   (everything in X precedes everything in Y)")
    print(f"R1(Y, X)      = {analyzer.holds('R1', Y, X)}")
    print(f"R2'(X, Y)     = {analyzer.holds(r2p, X, Y)}"
          "   (some y follows all of X)")
    print(f"R1(U,L)(X, Y) = {analyzer.holds('R1(U,L)', X, Y)}"
          "   (the end of X precedes the beginning of Y)")

    print("\nAll 32 relations that hold:")
    holding = [str(s) for s, v in analyzer.all_relations(X, Y).items() if v]
    print("  " + ", ".join(holding))

    print("\nStrongest relations (maximal under implication):")
    print("  " + ", ".join(str(s) for s in analyzer.strongest(X, Y)))

    # 4. Under the hood -----------------------------------------------------
    q = cuts_of(X)
    print("\nThe four cuts of X (Table 2), as timestamp vectors:")
    print(render_cut_table({
        "C1 = ∩⇓X": q.c1,
        "C2 = ∪⇓X": q.c2,
        "C3 = ∩⇑X": q.c3,
        "C4 = ∪⇑X": q.c4,
    }))

    counter = ComparisonCounter()
    engine = LinearEvaluator(execution, counter=counter)
    for relation in ("R1", "R2", "R4"):
        before = counter.total
        from repro.core import parse_spec

        engine.evaluate(parse_spec(relation), X, Y)
        print(f"evaluating {relation}(X, Y) took "
              f"{counter.total - before} integer comparison(s)")


if __name__ == "__main__":
    main()
