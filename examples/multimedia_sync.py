#!/usr/bin/env python
"""Distributed multimedia synchronization checking.

A source streams video units to three sinks.  Each unit's delivery
(one receive per sink) is a nonatomic event; intra-stream order is the
relation condition ``R2(unit_k, unit_{k+1})`` — every delivery of unit
k causally precedes a delivery of unit k+1 (i.e. each sink plays in
order).  The demo runs an in-order network, then a reordering network,
and finally shows how relaxing the constraint to a lag of 3 units
tolerates the observed disorder.

Run:  python examples/multimedia_sync.py
"""

from repro.apps.multimedia import StreamSyncChecker, stream_trace


def check(disorder: int, lag: int = 1) -> None:
    execution, units = stream_trace(
        num_sinks=3, units=8, disorder=disorder, seed=11
    )
    checker = StreamSyncChecker(execution)
    violations = checker.check_intra_stream(units, "video", lag=lag)
    print(f"disorder window = {disorder}, lag tolerance = {lag}: "
          f"{len(violations)} violation(s)")
    for v in violations:
        print(f"    {v}")


def main() -> None:
    print("=" * 70)
    print("Intra-stream delivery order (video -> 3 sinks, 8 units)")
    print("=" * 70)
    check(disorder=0)
    check(disorder=2)
    check(disorder=2, lag=3)

    print()
    print("=" * 70)
    print("Inter-stream lip-sync (audio leads video)")
    print("=" * 70)
    execution, units = stream_trace(
        num_sinks=2, units=6, streams=("audio", "video"), disorder=0, seed=4
    )
    checker = StreamSyncChecker(execution)
    violations = checker.check_inter_stream(units, "audio", "video")
    print(f"audio-before-video coupling: {len(violations)} violation(s)")

    print()
    print("Strongest relations between consecutive video units:")
    from repro.core import SynchronizationAnalyzer

    analyzer = SynchronizationAnalyzer(execution)
    a, b = units["video:0"], units["video:1"]
    for spec in analyzer.strongest(a, b):
        print(f"    {spec}(video:0, video:1)")


if __name__ == "__main__":
    main()
