#!/usr/bin/env python
"""Air-defence coordination — the real-time use case of [11].

Simulates radars jointly tracking a target, a fusion centre confirming
it, and interceptor batteries launching on command, then checks the
safety-critical synchronization conditions with the relation family:

* confirmation begins only after some radar plot  (R3');
* every launch follows the entire confirmation    (R1(U,L));
* no launch event precedes any detection          (not R4 reversed).

A second run injects a premature launch (a battery firing on a stale
cue before the fusion centre commands it) and shows the checker
pinpointing the violated condition.

Run:  python examples/air_defense.py
"""

from repro.apps.airdefense import air_defense_scenario


def report(scenario, title: str) -> None:
    print("=" * 70)
    print(title)
    print("=" * 70)
    ex = scenario.execution
    print(f"execution: {ex.num_nodes} nodes, {ex.trace.total_events} events, "
          f"{len(ex.trace.messages)} messages")
    print(f"detection interval:    {len(scenario.detection)} events on "
          f"nodes {list(scenario.detection.node_set)}")
    print(f"confirmation interval: {len(scenario.confirmation)} events on "
          f"nodes {list(scenario.confirmation.node_set)}")
    for i, launch in enumerate(scenario.launches):
        print(f"launch{i} interval:      {len(launch)} events on "
              f"nodes {list(launch.node_set)}")
    print()
    for name, rep in scenario.check().items():
        status = "PASS" if rep.passed else "FAIL"
        print(f"  [{status}] {name}: {rep.condition}")
        if not rep.passed:
            for atom in rep.failing_atoms:
                print(f"          failing atom: {atom.atom}")
    verdict = "SAFE" if scenario.all_safe() else "UNSAFE"
    print(f"\n  engagement verdict: {verdict}\n")


def main() -> None:
    report(
        air_defense_scenario(num_radars=3, num_batteries=2, plots_per_radar=2),
        "Nominal engagement (quorum of 3 radar reports before launch)",
    )
    report(
        air_defense_scenario(
            num_radars=3, num_batteries=2, plots_per_radar=2,
            premature_battery=1,
        ),
        "Faulty engagement (battery 1 fires on a stale cue at t=0.1)",
    )


if __name__ == "__main__":
    main()
