#!/usr/bin/env python
"""Reproduce the paper's complexity results as printed tables.

Prints, without needing pytest:

1. the Theorem 20 comparison-count table (paper claim vs this
   reproduction's amended bound vs measured worst case);
2. the headline scaling series — naive vs polynomial vs linear
   comparison counts as the node count grows — with fitted exponents;
3. the setup-amortization figures behind §2.3's "negligible overhead"
   remark.

Run:  python examples/complexity_reproduction.py
"""

import time

import numpy as np

from repro.analysis.complexity import (
    fit_power_law,
    measure_comparisons,
    predicted_comparisons,
)
from repro.core import LinearEvaluator, NaiveEvaluator, PolynomialEvaluator
from repro.core.cuts import cuts_of
from repro.core.relations import BASE_RELATIONS
from repro.events.poset import Execution
from repro.nonatomic.selection import by_label, random_disjoint_pair
from repro.simulation.workloads import barrier_trace, random_execution

PAPER_CLAIM = {
    "R1": "min(|N_X|,|N_Y|)", "R1'": "min(|N_X|,|N_Y|)",
    "R2": "|N_X|", "R2'": "min(|N_X|,|N_Y|)",
    "R3": "min(|N_X|,|N_Y|)", "R3'": "|N_Y|",
    "R4": "min(|N_X|,|N_Y|)", "R4'": "min(|N_X|,|N_Y|)",
}
THIS_REPRO = {
    "R1": "min(|N_X|,|N_Y|)", "R1'": "min(|N_X|,|N_Y|)",
    "R2": "|N_X|", "R2'": "|N_Y|",
    "R3": "|N_X|", "R3'": "|N_Y|",
    "R4": "min(|N_X|,|N_Y|)", "R4'": "min(|N_X|,|N_Y|)",
}


def theorem20_table(n_x: int = 4, n_y: int = 8) -> None:
    print("=" * 72)
    print(f"Theorem 20 — comparison counts (|N_X|={n_x}, |N_Y|={n_y})")
    print("=" * 72)
    ex = random_execution(12, events_per_node=8, msg_prob=0.3, seed=3)
    rng = np.random.default_rng(9)
    pairs = [
        p for p in (
            random_disjoint_pair(ex, rng, num_nodes_x=n_x, num_nodes_y=n_y)
            for _ in range(30)
        )
        if p[0].width == n_x and p[1].width == n_y
    ]
    counts = measure_comparisons(
        lambda e, c: LinearEvaluator(e, counter=c), ex, pairs
    )
    print(f"{'rel':5} {'paper claim':20} {'this repro':18} "
          f"{'bound':>6} {'max measured':>13}")
    for rel in BASE_RELATIONS:
        bound = predicted_comparisons(rel, n_x, n_y)
        print(f"{rel.display:5} {PAPER_CLAIM[rel.display]:20} "
              f"{THIS_REPRO[rel.display]:18} {bound:6d} "
              f"{max(counts[rel]):13d}")
    print("\n(R2'/R3 deviate from the paper's min() claim — see DESIGN.md "
          "and tests/test_theorem20_deviation.py)\n")


def headline_scaling() -> None:
    print("=" * 72)
    print("Headline scaling — total comparisons for all 8 relations")
    print("(barrier phases as X/Y so universal relations cannot "
          "short-circuit)")
    print("=" * 72)
    sizes = [2, 4, 8, 16, 32, 64]
    series = {"naive": [], "polynomial": [], "linear": []}
    engines = {
        "naive": NaiveEvaluator,
        "polynomial": PolynomialEvaluator,
        "linear": LinearEvaluator,
    }
    for P in sizes:
        ex = Execution(barrier_trace(P, phases=2, work_per_phase=2))
        x = by_label(ex, "phase0")
        y = by_label(ex, "phase1")
        for name, cls in engines.items():
            counts = measure_comparisons(
                lambda e, c, cls=cls: cls(e, counter=c), ex, [(x, y)]
            )
            series[name].append(sum(v[0] for v in counts.values()))
    print(f"{'P':>4} {'naive':>10} {'polynomial':>11} {'linear':>8}")
    for i, P in enumerate(sizes):
        print(f"{P:4d} {series['naive'][i]:10d} "
              f"{series['polynomial'][i]:11d} {series['linear'][i]:8d}")
    for name, values in series.items():
        b, _ = fit_power_law(sizes, values)
        print(f"fitted exponent ({name}): {b:.2f}")
    print()


def setup_amortization() -> None:
    print("=" * 72)
    print("Setup amortization — §2.3's 'negligible overhead' claim")
    print("=" * 72)
    from repro.simulation.workloads import random_trace
    from repro.nonatomic.event import NonatomicEvent

    trace = random_trace(16, events_per_node=12, msg_prob=0.3, seed=21)
    t0 = time.perf_counter()
    ex = Execution(trace)
    clock_ms = (time.perf_counter() - t0) * 1e3

    rng = np.random.default_rng(1)
    x, y = random_disjoint_pair(ex, rng)
    t0 = time.perf_counter()
    for _ in range(200):
        fresh = NonatomicEvent(ex, x.ids)
        cuts_of(fresh)
    cut_us = (time.perf_counter() - t0) / 200 * 1e6

    engine = LinearEvaluator(ex)
    cuts_of(x), cuts_of(y)
    t0 = time.perf_counter()
    reps = 3000
    for _ in range(reps):
        for rel in BASE_RELATIONS:
            engine.evaluate(rel, x, y)
    query_us = (time.perf_counter() - t0) / (reps * 8) * 1e6

    print(f"clock structures (whole {trace.total_events}-event trace): "
          f"{clock_ms:8.2f} ms   (once per execution)")
    print(f"cut timestamps (per interval):                    "
          f"{cut_us:8.1f} us   (once per interval)")
    print(f"one relation query (warm cuts):                   "
          f"{query_us:8.2f} us")
    print(f"-> cut setup amortized after ~{cut_us / query_us:.0f} queries\n")


if __name__ == "__main__":
    theorem20_table(4, 8)
    theorem20_table(8, 4)
    headline_scaling()
    setup_amortization()
