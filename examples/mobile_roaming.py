#!/usr/bin/env python
"""Mobile-computing handoff coordination with explainable verdicts.

A mobile host roams across base stations; handoffs, home-agent
reroutes and per-residency data epochs are nonatomic events, and
roaming correctness is a set of relation conditions.  The demo runs a
clean trace, then injects a premature-data fault and uses the
``explain()`` API to show *which node and which timestamp comparison*
convicts the violation.

Run:  python examples/mobile_roaming.py
"""

from repro.apps.mobile import roaming_scenario
from repro.core.explain import explain


def report(scenario, title):
    print("=" * 70)
    print(title)
    print("=" * 70)
    ex = scenario.execution
    print(f"execution: {ex.num_nodes} nodes "
          f"(0 = home agent, 1.. = stations), "
          f"{ex.trace.total_events} events")
    for name, rep in scenario.check().items():
        status = "PASS" if rep.passed else "FAIL"
        print(f"  [{status}] {name}")
    print(f"  roaming verdict: "
          f"{'CORRECT' if scenario.all_safe() else 'VIOLATED'}\n")


def main() -> None:
    report(roaming_scenario(num_stations=3), "Nominal roaming (3 stations)")

    bad = roaming_scenario(num_stations=3, premature_data=True)
    report(bad, "Faulty roaming (station serves data before the reroute)")

    # Drill into the failed condition with the explain API.
    failing = [
        (name, rep) for name, rep in bad.check().items() if not rep.passed
    ]
    name, rep = failing[0]
    print(f"why did {name!r} fail?")
    k = int(name.split("reroute")[1])
    reroute = bad.reroutes[k]
    epoch = bad.epochs[k + 1]
    explanation = explain("R1(U,L)", reroute, epoch)
    print(explanation)
    print("\nreading: the epoch's first delivery on that node has a local "
          "index below the\nreroute's causal reach there — it was served "
          "before the home agent rerouted.")


if __name__ == "__main__":
    main()
