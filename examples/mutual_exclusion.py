#!/usr/bin/env python
"""Verifying distributed mutual exclusion with the relation family.

Each occupancy of a replicated critical section is a nonatomic event
(lock-hold events on the holder plus replica nodes).  Safety is the
pairwise condition ``R1(U,L)(A, B) or R1(U,L)(B, A)`` — one occupancy's
*end proxy* wholly precedes the other's *begin proxy*.

The demo verifies a correct token-passing run, then injects a race
(the last occupancy starts without waiting for the token) and shows
the violation report.

Run:  python examples/mutual_exclusion.py
"""

from repro.apps.mutex import MutualExclusionChecker, token_mutex_trace


def run(violate: bool) -> None:
    title = "racy run (last holder skips the token)" if violate else \
        "correct token-passing run"
    print("=" * 70)
    print(f"Mutual exclusion over a replicated resource — {title}")
    print("=" * 70)
    execution, occupancies = token_mutex_trace(
        num_nodes=4, occupancies=5, replicas=2, violate=violate, seed=8
    )
    print(f"execution: {execution.trace.total_events} events, "
          f"{len(execution.trace.messages)} messages")
    for name in sorted(occupancies):
        occ = occupancies[name]
        print(f"  {name}: {len(occ)} lock-hold events on nodes "
              f"{list(occ.node_set)}")

    checker = MutualExclusionChecker(execution)
    violations = checker.check()
    if not violations:
        print("\nall occupancy pairs serialised — exclusion HOLDS\n")
    else:
        print(f"\nexclusion VIOLATED ({len(violations)} interleaved pairs):")
        for v in violations:
            print(f"  {v}")
        print()


def main() -> None:
    run(violate=False)
    run(violate=True)


if __name__ == "__main__":
    main()
