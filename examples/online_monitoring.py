#!/usr/bin/env python
"""Online monitoring: detecting synchronization conditions in a stream.

A real-time monitor cannot wait for the execution to finish (the
reverse timestamp structure needs the whole trace), so the online
monitor evaluates the relations through equivalent *past-only*
conditions on forward vector clocks, the moment the intervals close.

The demo streams a two-phase control handshake, registers watch
conditions up front, and shows them firing as soon as they become
decidable — then cross-checks against the offline engine.

Run:  python examples/online_monitoring.py
"""

from repro.core import SynchronizationAnalyzer
from repro.monitor import OnlineMonitor
from repro.nonatomic.event import NonatomicEvent


def main() -> None:
    om = OnlineMonitor(num_nodes=3)

    # Watches registered before any event arrives.
    om.watch("cmd-after-prep", "R1(prep, cmd)")
    om.watch("ack-covers-cmd", "R2(cmd, ack) and not R4(ack, prep)")

    print("streaming events...")
    # phase 1: nodes 0 and 1 prepare
    om.internal(0, label="prep", interval="prep")
    om.internal(1, label="prep", interval="prep")
    h0 = om.send(0)
    h1 = om.send(1)
    # node 2 gathers both preparations, then commands
    om.recv(2, h0)
    om.recv(2, h1)
    fired = om.close("prep")
    print(f"  closed 'prep' -> {len(fired)} watch(es) fired")

    c0 = om.send(2, label="cmd", interval="cmd")
    c1 = om.send(2, label="cmd", interval="cmd")
    fired = om.close("cmd")
    print(f"  closed 'cmd'  -> {[n.name for n in fired]} fired: "
          f"{[n.passed for n in fired]}")

    # acknowledgements
    om.recv(0, c0, label="ack", interval="ack")
    om.recv(1, c1, label="ack", interval="ack")
    fired = om.close("ack")
    for note in fired:
        print(f"  closed 'ack'  -> watch {note.name!r}: "
              f"{'PASS' if note.passed else 'FAIL'}")

    # Direct online queries between closed intervals
    print("\nonline relation queries (past-only evaluation):")
    for spec in ("R1", "R2'", "R4", "R1(U,L)"):
        print(f"  {spec}(prep, ack) = {om.holds(spec, 'prep', 'ack')}")

    # Cross-check against the offline engines on the finalised trace
    execution = om.to_execution()
    analyzer = SynchronizationAnalyzer(execution)
    prep = NonatomicEvent(execution, [(0, 1), (1, 1)], name="prep")
    ack = NonatomicEvent(execution, [(0, 3), (1, 3)], name="ack")
    agree = all(
        om.holds(spec, "prep", "ack") == analyzer.holds(spec, prep, ack)
        for spec in ("R1", "R2'", "R4", "R1(U,L)")
    )
    print(f"\noffline cross-check agrees: {agree}")


if __name__ == "__main__":
    main()
