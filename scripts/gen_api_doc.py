#!/usr/bin/env python
"""Regenerate docs/API.md from the packages' ``__all__`` metadata.

One entry per public name; the summary is the first docstring line.
Run from the repository root:  python scripts/gen_api_doc.py
"""

import importlib
import inspect
import io
from pathlib import Path

MODULES = [
    "repro.events", "repro.events.event", "repro.events.trace",
    "repro.events.builder", "repro.events.clocks", "repro.events.lamport",
    "repro.events.poset", "repro.events.serialization",
    "repro.simulation", "repro.simulation.engine", "repro.simulation.process",
    "repro.simulation.network", "repro.simulation.workloads",
    "repro.simulation.scenarios",
    "repro.nonatomic", "repro.nonatomic.event", "repro.nonatomic.proxies",
    "repro.nonatomic.selection",
    "repro.backends", "repro.backends.base", "repro.backends.stats",
    "repro.backends.vector", "repro.backends.reachability",
    "repro.backends.reduction",
    "repro.core", "repro.core.context", "repro.core.cuts",
    "repro.core.relations", "repro.core.family",
    "repro.core.naive", "repro.core.polynomial", "repro.core.linear",
    "repro.core.evaluator", "repro.core.explain", "repro.core.counting",
    "repro.core.hierarchy", "repro.core.axioms", "repro.core.pairwise",
    "repro.core.parallel", "repro.core.idioms",
    "repro.monitor", "repro.monitor.predicates", "repro.monitor.checker",
    "repro.monitor.online",
    "repro.service", "repro.service.protocol", "repro.service.log",
    "repro.service.core", "repro.service.server", "repro.service.client",
    "repro.lint", "repro.lint.engine", "repro.lint.project",
    "repro.lint.baseline", "repro.lint.cli",
    "repro.globalstates", "repro.globalstates.lattice",
    "repro.globalstates.detection", "repro.globalstates.observations",
    "repro.realtime", "repro.realtime.timing", "repro.realtime.constraints",
    "repro.apps", "repro.apps.mutex", "repro.apps.multimedia",
    "repro.apps.airdefense", "repro.apps.process_control", "repro.apps.mobile",
    "repro.analysis", "repro.analysis.complexity", "repro.analysis.metrics",
    "repro.analysis.intervalgraph",
    "repro.viz", "repro.viz.spacetime",
    "repro.cli",
]


def generate() -> str:
    out = io.StringIO()
    out.write("# API Reference\n\n")
    out.write(
        "One entry per public name, grouped by module; the summary is the\n"
        "first line of the item's docstring.  Regenerate with\n"
        "`python scripts/gen_api_doc.py`.\n"
    )
    for modname in MODULES:
        mod = importlib.import_module(modname)
        names = getattr(mod, "__all__", None)
        if not names:
            continue
        first = (inspect.getdoc(mod) or "").splitlines()
        summary = first[0] if first else ""
        out.write(f"\n## `{modname}`\n\n{summary}\n\n")
        if hasattr(mod, "__path__") and modname != "repro":
            out.write(
                "Re-exports: "
                + ", ".join(f"`{n}`" for n in sorted(names))
                + "\n"
            )
            continue
        for name in names:
            obj = getattr(mod, name)
            doc = (inspect.getdoc(obj) or "").splitlines()
            item_summary = doc[0] if doc else ""
            kind = (
                "class"
                if inspect.isclass(obj)
                else ("function" if callable(obj) else "data")
            )
            out.write(f"* **`{name}`** ({kind}) — {item_summary}\n")
    return out.getvalue()


if __name__ == "__main__":
    target = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    target.write_text(generate(), encoding="utf-8")
    print(f"wrote {target}")
