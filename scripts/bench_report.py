"""Machine-readable performance report for the analysis substrate.

Measures the headline numbers on the current host and writes them as
JSON (default ``BENCH_PR8.json``):

* clock substrate construction throughput (events/sec) for the
  forward + reverse columnar tables;
* the columnar batch cut fill vs per-interval folds (speedup at
  k = 256 intervals, interval construction excluded from both sides);
* serial planner vs :class:`~repro.core.parallel.ParallelBatchExecutor`
  queries/sec on a >= 10k-query batch — recorded as a serial fallback
  (no pool numbers) when the clamped worker count is 1;
* ``online_ingest``: streaming events/sec through
  :class:`~repro.monitor.online.OnlineMonitor` (ingest + per-close
  verdicts + zero-copy finalisation) vs the rebuild-per-close baseline,
  with the clock-pass counters recorded;
* ``family_query``: whole-family (40-spec) verdicts/sec through the
  shared ``≪``-subtest verdict cache vs the per-spec scalar loop, plus
  the batched ``(pairs, 24)`` kernel answering every queried pair in
  one vectorized fill, with the measured ``≪``-evaluation reduction;
  a second ``family_query_<backend>`` section repeats the workload on
  the non-default backend, and when a size-matched ``BENCH_PR4.json``
  is present its cached rate is embedded as the before/after anchor;
* ``backend_sparse`` / ``backend_dense``: the vector-clock backend vs
  the breakpoint-compressed reachability backend on its favourable and
  unfavourable regimes — sparse communication with few queries (where
  reachability skips the dense reverse pass) and dense communication
  with a query-heavy batch (where the columnar fills win);
* ``service_ingest``: sustained events/sec through the live networked
  monitoring service over loopback TCP with concurrent sharded
  clients (sockets + framing + asyncio sessions + core + streaming
  clock table), clock-pass counters recorded and required zero.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--out BENCH_PR8.json]
        [--jobs 4] [--quick] [--backend reachability]
        [--baseline BENCH_PR4.json]

``--backend`` pins the causality backend answering the standard
sections (via the ``best_of`` environment knob); every section records
the host metadata (cpu count, numpy version, backend) it ran under.

``--quick`` shrinks every workload (CI smoke sizes).  Speedups are
reported as measured — single-core hosts record the serial fallback for
the parallel section and that is the honest number.

``--baseline PRIOR.json`` additionally diffs the current gated rates
(``clock_build``, ``cut_fill``, ``backend_*``, ``family_query``)
against a prior report and exits nonzero on a >25% regression (sections
whose workload sizes differ are skipped with a note, so quick runs are
only compared against quick baselines).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

import numpy as np  # noqa: E402

from repro.backends.base import BACKEND_ENV, default_backend_name  # noqa: E402
from repro.core.context import AnalysisContext  # noqa: E402
from repro.core.cuts import cut_stats, cuts_of  # noqa: E402
from repro.core.evaluator import SynchronizationAnalyzer  # noqa: E402
from repro.core.hierarchy import evaluate_all_pruned, maximal_true  # noqa: E402
from repro.core.linear import LinearEvaluator  # noqa: E402
from repro.core.parallel import ParallelBatchExecutor  # noqa: E402
from repro.core.relations import BASE_RELATIONS, FAMILY32, parse_spec  # noqa: E402
from repro.events.clocks import (  # noqa: E402
    clock_pass_counts,
    reset_clock_pass_counts,
)
from repro.events.poset import Execution  # noqa: E402
from repro.nonatomic.event import NonatomicEvent  # noqa: E402
from repro.simulation.workloads import random_trace  # noqa: E402

from benchmarks.bench_service_ingest import run_service_ingest  # noqa: E402
from benchmarks.common import (  # noqa: E402
    best_of,
    disjoint_intervals,
    family_pairs,
    stream_online,
    stream_rebuild_baseline,
)


def _host_meta(backend: str) -> dict:
    """Host metadata stamped into every report section."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "numpy": np.__version__,
        "backend": backend,
    }


def bench_clock_build(nodes: int, events: int, reps: int) -> dict:
    trace = random_trace(nodes, events_per_node=events, msg_prob=0.3, seed=21)
    total = trace.total_events

    def build():
        ex = Execution(trace)
        ex.forward_table, ex.reverse_table
        return ex

    t, _ = best_of(build, reps=reps)
    return {
        "nodes": nodes,
        "events": total,
        "build_ms": t * 1e3,
        "events_per_sec": total / t,
    }


def bench_cut_fill(nodes: int, events: int, k: int, reps: int) -> dict:
    ex = Execution(random_trace(nodes, events_per_node=events, seed=9))
    base = disjoint_intervals(ex, k)
    ex.forward_table, ex.reverse_table  # warm clocks for both paths

    fold_sets = [
        [NonatomicEvent(ex, iv.ids) for iv in base] for _ in range(reps)
    ]
    fold_t = float("inf")
    for ivs in fold_sets:
        t0 = time.perf_counter()
        for iv in ivs:
            cuts_of(iv)
        fold_t = min(fold_t, time.perf_counter() - t0)
    columnar_t, _ = best_of(lambda: cut_stats(ex, base), reps=reps)
    return {
        "intervals": k,
        "fold_ms": fold_t * 1e3,
        "columnar_ms": columnar_t * 1e3,
        "speedup": fold_t / columnar_t,
    }


def bench_parallel(
    nodes: int, events: int, k: int, jobs: int, reps: int
) -> dict:
    ex = Execution(random_trace(nodes, events_per_node=events, seed=11))
    intervals = disjoint_intervals(ex, k)
    spec = parse_spec("R1(U,L)")
    queries = [
        (spec, x, y) for x in intervals for y in intervals if x is not y
    ]
    an = SynchronizationAnalyzer(ex, check_disjoint=False)
    an.batch_holds(queries)  # warm the serial planner's caches

    serial_t, serial = best_of(lambda: an.batch_holds(queries), reps=reps)
    n = len(queries)
    out = {
        "queries": n,
        "jobs_requested": jobs,
        "cores": os.cpu_count() or 1,
        "serial_ms": serial_t * 1e3,
        "serial_queries_per_sec": n / serial_t,
    }
    with ParallelBatchExecutor(ex, jobs=jobs, min_parallel=1) as px:
        out["jobs"] = px.jobs
        if px.jobs <= 1:
            # clamped to a single worker: a pool would only add overhead,
            # so the executor takes its serial path — record that rather
            # than a meaningless "parallel" number.
            out["mode"] = "serial-fallback"
            return out
        out["mode"] = "parallel"
        px.execute(queries[:64])  # pool + shared-memory startup
        parallel_t, parallel = best_of(lambda: px.execute(queries), reps=reps)
    assert parallel == serial, "parallel executor disagrees with planner"
    out.update({
        "parallel_ms": parallel_t * 1e3,
        "parallel_queries_per_sec": n / parallel_t,
        "speedup": serial_t / parallel_t,
    })
    return out


def bench_online_ingest(
    nodes: int, events: int, chunk: int, reps: int
) -> dict:
    trace = random_trace(nodes, events_per_node=events, msg_prob=0.3, seed=31)
    total = trace.total_events

    reset_clock_pass_counts()
    online_t, (online_v, ex) = best_of(
        lambda: stream_online(trace, chunk), reps=reps
    )
    passes = clock_pass_counts()
    rebuild_t, (rebuild_v, _) = best_of(
        lambda: stream_rebuild_baseline(trace, chunk), reps=reps
    )
    assert online_v == rebuild_v, "online verdicts diverge from offline"
    return {
        "nodes": nodes,
        "events": total,
        "chunk": chunk,
        "closes": sum(
            -(-trace.num_real(n) // chunk) for n in range(nodes)
        ),
        "online_ms": online_t * 1e3,
        "rebuild_ms": rebuild_t * 1e3,
        "online_events_per_sec": total / online_t,
        "rebuild_events_per_sec": total / rebuild_t,
        "speedup": rebuild_t / online_t,
        "clock_passes": passes,  # streaming runs: all zero
    }


def bench_family_query(
    nodes: int, events: int, pairs: int, reps: int,
    backend: "str | None" = None,
) -> dict:
    ex, pair_list = family_pairs(nodes, events, pairs)
    specs = list(FAMILY32) + list(BASE_RELATIONS)

    # The whole-family query surface per pair: all 32 family specs, all
    # 8 base relations, and the strongest-relations query (a pruned pass
    # + maximality filter over the family).  Three strategies answer it:
    # the per-spec scalar loop (each spec from scratch through the
    # engine), the cached per-pair surface (each pair's 24-subtest
    # verdict row filled on first touch), and the batched kernel (all
    # pairs × all 24 subtests in one vectorized pass).
    def per_spec_loop():
        eng = LinearEvaluator(AnalysisContext(ex))  # private context: cold
        for x, y in pair_list:
            for spec in FAMILY32:
                eng.evaluate_spec(spec, x, y)
            for rel in BASE_RELATIONS:
                eng.evaluate(rel, x, y)
            results, _ = evaluate_all_pruned(
                lambda spec: eng.evaluate_spec(spec, x, y), FAMILY32
            )
            maximal_true(results)
        return eng

    def cached_family():
        an = SynchronizationAnalyzer(AnalysisContext(ex))
        for x, y in pair_list:
            an.all_relations(x, y)
            an.base_relations(x, y)
            an.strongest(x, y)
        return an

    def batched_family():
        an = SynchronizationAnalyzer(AnalysisContext(ex))
        an.all_relations_batch(pair_list)
        an.base_relations_batch(pair_list)
        an.strongest_batch(pair_list)
        return an

    loop_t, eng = best_of(per_spec_loop, reps=reps, backend=backend)
    cached_t, an = best_of(cached_family, reps=reps, backend=backend)
    batched_t, ban = best_of(batched_family, reps=reps, backend=backend)
    vc = an.verdict_cache
    bvc = ban.verdict_cache
    # verdict identity against the per-spec scalar loop, for both the
    # per-pair cached surface and the batched kernel
    ref = LinearEvaluator(AnalysisContext(ex))
    ref_an = SynchronizationAnalyzer(AnalysisContext(ex))
    batch_results = ref_an.all_relations_batch(pair_list)
    for (x, y), batched in zip(pair_list, batch_results):
        fam = ref_an.all_relations(x, y)
        for spec in FAMILY32:
            scalar = ref.evaluate_spec(spec, x, y)
            assert fam[spec] == scalar, (
                "cached family verdict diverges from the scalar loop"
            )
            assert batched[spec] == scalar, (
                "batched family verdict diverges from the scalar loop"
            )
        ref_results, _ = evaluate_all_pruned(
            lambda spec: ref.evaluate_spec(spec, x, y), FAMILY32
        )
        assert ref_an.strongest(x, y) == maximal_true(ref_results), (
            "cached strongest diverges from the scalar loop"
        )
    # verdicts surfaced per pair: the 40 specs + the 32-entry family map
    # behind the strongest query (identical on all sides)
    verdicts = (len(specs) + len(FAMILY32)) * len(pair_list)
    return {
        "nodes": nodes,
        "pairs": pairs,
        "specs": len(specs),
        "per_spec_ms": loop_t * 1e3,
        "cached_ms": cached_t * 1e3,
        "batched_ms": batched_t * 1e3,
        "per_spec_verdicts_per_sec": verdicts / loop_t,
        "cached_verdicts_per_sec": verdicts / cached_t,
        "batched_verdicts_per_sec": verdicts / batched_t,
        "speedup": loop_t / cached_t,
        "batched_speedup": loop_t / batched_t,
        "ll_evals_per_spec_loop": eng.ll_tests,
        "ll_evals_cached": vc.evals,
        "ll_evals_batched": bvc.evals,
        "cut_pair_evals_cached": vc.cut_pair_evals,
        "kernel_fills_batched": bvc.fills,
        "ll_eval_reduction": eng.ll_tests / max(vc.evals, 1),
    }


def bench_backends(
    regime: str,
    nodes: int,
    events: int,
    msg_prob: float,
    k: int,
    query_reps: int,
    reps: int,
) -> dict:
    """Vector vs reachability on one communication/query regime.

    Per backend and rep: a fresh :class:`Execution` (the shared eager
    forward pass is excluded), then *build* forces the backend's
    derived structures — the dense reverse table for vector, both
    sparse closures for reachability — and *query* runs ``query_reps``
    batched cut-stat fills over ``k`` disjoint intervals.  The sparse
    regime (wide, few messages, one fill) rewards skipping the dense
    reverse pass; the dense query-heavy regime rewards the columnar
    gather/reduceat fills.  Both backends' stats are asserted equal.
    """
    trace = random_trace(nodes, events_per_node=events,
                         msg_prob=msg_prob, seed=17)
    out: dict = {
        "regime": regime,
        "nodes": nodes,
        "events": trace.total_events,
        "messages": len(trace.messages),
        "intervals": k,
        "query_reps": query_reps,
    }
    stats = {}
    for name in ("vector", "reachability"):
        best = {"build_ms": None, "query_ms": None,
                "total_ms": float("inf")}

        def run():
            ex = Execution(trace)
            ctx = AnalysisContext(ex)  # backend pinned via best_of
            backend = ctx.backend
            intervals = disjoint_intervals(ex, k)
            probe = [sorted(ex.iter_ids())[0]]
            t0 = time.perf_counter()
            backend.forward_rows(probe)
            backend.reverse_rows(probe)
            t1 = time.perf_counter()
            st = None
            for _ in range(query_reps):
                st = backend.cut_stats(intervals)
            t2 = time.perf_counter()
            return t1 - t0, t2 - t1, st

        for _ in range(reps):
            _, (build, query, st) = best_of(run, reps=1, backend=name)
            if (build + query) * 1e3 < best["total_ms"]:
                best = {"build_ms": build * 1e3, "query_ms": query * 1e3,
                        "total_ms": (build + query) * 1e3}
            stats[name] = st
        out[name] = best
    for field in ("c1", "c2", "c3", "c4", "first", "last"):
        assert np.array_equal(
            getattr(stats["vector"], field),
            getattr(stats["reachability"], field),
        ), f"backends disagree on {field} ({regime})"
    v, r = out["vector"]["total_ms"], out["reachability"]["total_ms"]
    out["winner"] = "vector" if v <= r else "reachability"
    out["speedup"] = max(v, r) / min(v, r)
    return out


# ----------------------------------------------------------------------
# baseline comparison (--baseline)
# ----------------------------------------------------------------------

#: sections gated on regression: (section, size keys, rate extractor)
_GATED = (
    ("clock_build", ("nodes", "events"),
     lambda s: s["events_per_sec"]),
    ("cut_fill", ("intervals",),
     lambda s: s["intervals"] / s["columnar_ms"]),
    ("backend_sparse", ("nodes", "events", "intervals", "query_reps"),
     lambda s: s["events"] / s[s["winner"]]["total_ms"]),
    ("backend_dense", ("nodes", "events", "intervals", "query_reps"),
     lambda s: s["events"] / s[s["winner"]]["total_ms"]),
    # gate on the cached rate: it is the key comparable with pre-batch
    # baselines (BENCH_PR4 has no batched numbers), and the batched
    # kernel backs both surfaces — a kernel regression drags it down too
    ("family_query", ("nodes", "pairs", "specs"),
     lambda s: s["cached_verdicts_per_sec"]),
    ("service_ingest", ("nodes", "events", "clients"),
     lambda s: s["events_per_sec"]),
)


def compare_baseline(report: dict, baseline: dict, threshold: float) -> list:
    """Diff gated sections against a prior report.

    Returns a list of ``(section, status, detail)`` rows; status is
    ``"ok"``, ``"regression"`` or ``"skipped"``.  Only size-matched
    sections are compared — a quick run diffed against a full baseline
    is skipped, not failed.
    """
    rows = []
    for section, size_keys, rate in _GATED:
        cur = report.get(section)
        base = baseline.get(section)
        if not isinstance(base, dict) or not isinstance(cur, dict):
            rows.append((section, "skipped", "section missing from baseline"))
            continue
        mismatched = [
            k for k in size_keys if cur.get(k) != base.get(k)
        ]
        if mismatched:
            rows.append((
                section, "skipped",
                "workload size differs from baseline "
                f"({', '.join(f'{k}: {base.get(k)} -> {cur.get(k)}' for k in mismatched)})",
            ))
            continue
        cur_rate, base_rate = rate(cur), rate(base)
        change = cur_rate / base_rate - 1.0
        detail = f"rate {base_rate:,.1f} -> {cur_rate:,.1f} ({change:+.1%})"
        if cur_rate < base_rate * (1.0 - threshold):
            rows.append((section, "regression", detail))
        else:
            rows.append((section, "ok", detail))
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_PR8.json")
    ap.add_argument("--jobs", type=int, default=4,
                    help="worker processes for the parallel benchmark "
                         "(clamped to the core count)")
    ap.add_argument("--backend", default=None,
                    choices=["vector", "reachability"],
                    help="causality backend for the standard sections "
                         "(default: $REPRO_BACKEND or vector); the "
                         "backend_* sections always compare both")
    ap.add_argument("--quick", action="store_true",
                    help="reduced workload sizes (CI smoke)")
    ap.add_argument("--baseline", default=None, metavar="PRIOR.json",
                    help="prior report to diff against; exits nonzero on "
                         "a regression past the threshold")
    ap.add_argument("--regression-threshold", type=float, default=0.25,
                    help="allowed fractional rate drop vs baseline "
                         "(default 0.25)")
    args = ap.parse_args(argv)

    if args.backend is not None:
        # pin the process default so every context built by the
        # standard sections (inside or outside best_of) answers
        # through the requested backend
        os.environ[BACKEND_ENV] = args.backend
    backend = default_backend_name()

    if args.quick:
        sizes = dict(nodes=8, events=16, fill_k=32, par_k=32, reps=2,
                     stream_nodes=8, stream_events=60, chunk=20,
                     fam_nodes=12, fam_events=8, fam_pairs=4,
                     sp_nodes=16, sp_events=40, sp_k=8,
                     dn_nodes=4, dn_events=40, dn_k=24, dn_reps=12,
                     svc_nodes=4, svc_events=40, svc_clients=2,
                     svc_chunk=20, svc_reps=1)
    else:
        sizes = dict(nodes=16, events=64, fill_k=256, par_k=128, reps=5,
                     stream_nodes=8, stream_events=1250, chunk=125,
                     fam_nodes=12, fam_events=8, fam_pairs=16,
                     sp_nodes=48, sp_events=150, sp_k=16,
                     dn_nodes=4, dn_events=120, dn_k=64, dn_reps=50,
                     svc_nodes=8, svc_events=1250, svc_clients=4,
                     svc_chunk=125, svc_reps=3)

    report = {
        "host": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
            "machine": platform.machine(),
            "numpy": np.__version__,
            "backend": backend,
        },
        "quick": args.quick,
        "clock_build": bench_clock_build(
            sizes["nodes"], sizes["events"], sizes["reps"]
        ),
        "cut_fill": bench_cut_fill(
            sizes["nodes"], sizes["events"], sizes["fill_k"], sizes["reps"]
        ),
        "parallel_batch": bench_parallel(
            sizes["nodes"], sizes["events"], sizes["par_k"],
            args.jobs, sizes["reps"],
        ),
        "online_ingest": bench_online_ingest(
            sizes["stream_nodes"], sizes["stream_events"], sizes["chunk"],
            sizes["reps"],
        ),
        "family_query": bench_family_query(
            sizes["fam_nodes"], sizes["fam_events"], sizes["fam_pairs"],
            sizes["reps"],
        ),
        "backend_sparse": bench_backends(
            "sparse", sizes["sp_nodes"], sizes["sp_events"], 0.02,
            sizes["sp_k"], 1, sizes["reps"],
        ),
        "backend_dense": bench_backends(
            "dense", sizes["dn_nodes"], sizes["dn_events"], 0.6,
            sizes["dn_k"], sizes["dn_reps"], sizes["reps"],
        ),
        "service_ingest": run_service_ingest(
            sizes["svc_nodes"], sizes["svc_events"], sizes["svc_clients"],
            sizes["svc_chunk"], sizes["svc_reps"],
        ),
    }
    # the same family workload through the non-default backend, so the
    # before/after record covers both cut_stats implementations
    other = "reachability" if backend == "vector" else "vector"
    report[f"family_query_{other}"] = bench_family_query(
        sizes["fam_nodes"], sizes["fam_events"], sizes["fam_pairs"],
        sizes["reps"], backend=other,
    )
    # before/after anchor: embed the pre-batch cached rate from the PR4
    # record when its workload matches the current (full-size) one
    pr4_path = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_PR4.json"
    )
    if os.path.exists(pr4_path):
        with open(pr4_path) as fh:
            pr4 = json.load(fh).get("family_query")
        fq = report["family_query"]
        if isinstance(pr4, dict) and all(
            pr4.get(k) == fq[k] for k in ("nodes", "pairs", "specs")
        ):
            for section in (fq, report[f"family_query_{other}"]):
                section["pr4_cached_verdicts_per_sec"] = (
                    pr4["cached_verdicts_per_sec"]
                )
                section["speedup_vs_pr4_cached"] = (
                    section["batched_verdicts_per_sec"]
                    / pr4["cached_verdicts_per_sec"]
                )
    for name, section in report.items():
        if isinstance(section, dict) and name != "host":
            if name.startswith("backend_"):
                stamp = "both"
            elif name == f"family_query_{other}":
                stamp = other
            else:
                stamp = backend
            section["host"] = _host_meta(stamp)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    cb, cf, pb = (
        report["clock_build"], report["cut_fill"], report["parallel_batch"]
    )
    oi = report["online_ingest"]
    print(f"wrote {args.out}")
    print(f"  clock build:    {cb['events_per_sec']:,.0f} events/sec "
          f"({cb['events']} events in {cb['build_ms']:.2f} ms)")
    print(f"  cut fill:       {cf['speedup']:.1f}x columnar vs folds "
          f"({cf['intervals']} intervals)")
    if pb["mode"] == "serial-fallback":
        print(f"  parallel batch: serial fallback (1 effective worker on "
              f"{pb['cores']} core(s); "
              f"{pb['serial_queries_per_sec']:,.0f} queries/sec)")
    else:
        print(f"  parallel batch: {pb['speedup']:.2f}x vs serial planner "
              f"({pb['queries']} queries, jobs={pb['jobs']}, "
              f"{pb['cores']} cores; "
              f"{pb['parallel_queries_per_sec']:,.0f} queries/sec)")
    print(f"  online ingest:  {oi['online_events_per_sec']:,.0f} events/sec "
          f"streaming, {oi['speedup']:.1f}x vs rebuild-per-close "
          f"({oi['events']} events, {oi['closes']} closes; "
          f"clock passes {oi['clock_passes']})")
    si = report["service_ingest"]
    print(f"  service ingest: {si['events_per_sec']:,.0f} events/sec over "
          f"loopback ({si['clients']} clients, {si['events']} events, "
          f"{si['closes']} closes, {si['throttles']} throttles; "
          f"clock passes {si['clock_passes']})")
    for fq_name in ("family_query", f"family_query_{other}"):
        fq = report[fq_name]
        vs_pr4 = (
            f", {fq['speedup_vs_pr4_cached']:.1f}x vs PR4 cached"
            if "speedup_vs_pr4_cached" in fq else ""
        )
        print(f"  family query:   {fq['batched_verdicts_per_sec']:,.0f} "
              f"verdicts/sec batched vs "
              f"{fq['cached_verdicts_per_sec']:,.0f} cached vs "
              f"{fq['per_spec_verdicts_per_sec']:,.0f} per-spec "
              f"[{fq['host']['backend']}] "
              f"({fq['batched_speedup']:.1f}x batched{vs_pr4}; ≪ evals "
              f"{fq['ll_evals_per_spec_loop']} -> {fq['ll_evals_batched']} "
              f"in {fq['kernel_fills_batched']} fill(s), "
              f"{fq['ll_eval_reduction']:.1f}x fewer)")
    for key in ("backend_sparse", "backend_dense"):
        bs = report[key]
        print(f"  {bs['regime']:<7} regime: {bs['winner']} wins "
              f"{bs['speedup']:.1f}x "
              f"(vector {bs['vector']['total_ms']:.2f} ms vs "
              f"reachability {bs['reachability']['total_ms']:.2f} ms; "
              f"{bs['events']} events, {bs['messages']} messages, "
              f"{bs['intervals']} intervals x {bs['query_reps']} fills)")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        rows = compare_baseline(report, baseline,
                                args.regression_threshold)
        failed = False
        print(f"baseline comparison vs {args.baseline} "
              f"(threshold {args.regression_threshold:.0%}):")
        for section, status, detail in rows:
            print(f"  {section:<12} {status:<10} {detail}")
            failed = failed or status == "regression"
        if failed:
            print("FAIL: performance regression past threshold")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
