"""Machine-readable performance report for the columnar/parallel substrate.

Measures the PR-2 headline numbers on the current host and writes them
as JSON (default ``BENCH_PR2.json``):

* clock substrate construction throughput (events/sec) for the
  forward + reverse columnar tables;
* the columnar batch cut fill vs per-interval folds (speedup at
  k = 256 intervals, interval construction excluded from both sides);
* serial planner vs :class:`~repro.core.parallel.ParallelBatchExecutor`
  queries/sec and speedup on a >= 10k-query batch.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--out BENCH_PR2.json]
        [--jobs 4] [--quick]

``--quick`` shrinks every workload (CI smoke sizes).  Speedups are
reported as measured — on single-core hosts the parallel figure will be
below 1x and that is the honest number.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.core.cuts import cut_stats, cuts_of  # noqa: E402
from repro.core.evaluator import SynchronizationAnalyzer  # noqa: E402
from repro.core.parallel import ParallelBatchExecutor  # noqa: E402
from repro.core.relations import parse_spec  # noqa: E402
from repro.events.poset import Execution  # noqa: E402
from repro.nonatomic.event import NonatomicEvent  # noqa: E402
from repro.simulation.workloads import random_trace  # noqa: E402

from benchmarks.common import best_of, disjoint_intervals  # noqa: E402


def bench_clock_build(nodes: int, events: int, reps: int) -> dict:
    trace = random_trace(nodes, events_per_node=events, msg_prob=0.3, seed=21)
    total = trace.total_events

    def build():
        ex = Execution(trace)
        ex.forward_table, ex.reverse_table
        return ex

    t, _ = best_of(build, reps=reps)
    return {
        "nodes": nodes,
        "events": total,
        "build_ms": t * 1e3,
        "events_per_sec": total / t,
    }


def bench_cut_fill(nodes: int, events: int, k: int, reps: int) -> dict:
    ex = Execution(random_trace(nodes, events_per_node=events, seed=9))
    base = disjoint_intervals(ex, k)
    ex.forward_table, ex.reverse_table  # warm clocks for both paths

    fold_sets = [
        [NonatomicEvent(ex, iv.ids) for iv in base] for _ in range(reps)
    ]
    fold_t = float("inf")
    for ivs in fold_sets:
        t0 = time.perf_counter()
        for iv in ivs:
            cuts_of(iv)
        fold_t = min(fold_t, time.perf_counter() - t0)
    columnar_t, _ = best_of(lambda: cut_stats(ex, base), reps=reps)
    return {
        "intervals": k,
        "fold_ms": fold_t * 1e3,
        "columnar_ms": columnar_t * 1e3,
        "speedup": fold_t / columnar_t,
    }


def bench_parallel(
    nodes: int, events: int, k: int, jobs: int, reps: int
) -> dict:
    ex = Execution(random_trace(nodes, events_per_node=events, seed=11))
    intervals = disjoint_intervals(ex, k)
    spec = parse_spec("R1(U,L)")
    queries = [
        (spec, x, y) for x in intervals for y in intervals if x is not y
    ]
    an = SynchronizationAnalyzer(ex, check_disjoint=False)
    an.batch_holds(queries)  # warm the serial planner's caches

    serial_t, serial = best_of(lambda: an.batch_holds(queries), reps=reps)
    with ParallelBatchExecutor(ex, jobs=jobs, min_parallel=1) as px:
        px.execute(queries[:64])  # pool + shared-memory startup
        parallel_t, parallel = best_of(lambda: px.execute(queries), reps=reps)
    assert parallel == serial, "parallel executor disagrees with planner"
    n = len(queries)
    return {
        "queries": n,
        "jobs": jobs,
        "cores": os.cpu_count() or 1,
        "serial_ms": serial_t * 1e3,
        "parallel_ms": parallel_t * 1e3,
        "serial_queries_per_sec": n / serial_t,
        "parallel_queries_per_sec": n / parallel_t,
        "speedup": serial_t / parallel_t,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_PR2.json")
    ap.add_argument("--jobs", type=int, default=4,
                    help="worker processes for the parallel benchmark")
    ap.add_argument("--quick", action="store_true",
                    help="reduced workload sizes (CI smoke)")
    args = ap.parse_args(argv)

    if args.quick:
        sizes = dict(nodes=8, events=16, fill_k=32, par_k=32, reps=2)
    else:
        sizes = dict(nodes=16, events=64, fill_k=256, par_k=128, reps=5)

    report = {
        "host": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
            "machine": platform.machine(),
        },
        "quick": args.quick,
        "clock_build": bench_clock_build(
            sizes["nodes"], sizes["events"], sizes["reps"]
        ),
        "cut_fill": bench_cut_fill(
            sizes["nodes"], sizes["events"], sizes["fill_k"], sizes["reps"]
        ),
        "parallel_batch": bench_parallel(
            sizes["nodes"], sizes["events"], sizes["par_k"],
            args.jobs, sizes["reps"],
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    cb, cf, pb = (
        report["clock_build"], report["cut_fill"], report["parallel_batch"]
    )
    print(f"wrote {args.out}")
    print(f"  clock build:    {cb['events_per_sec']:,.0f} events/sec "
          f"({cb['events']} events in {cb['build_ms']:.2f} ms)")
    print(f"  cut fill:       {cf['speedup']:.1f}x columnar vs folds "
          f"({cf['intervals']} intervals)")
    print(f"  parallel batch: {pb['speedup']:.2f}x vs serial planner "
          f"({pb['queries']} queries, jobs={pb['jobs']}, "
          f"{pb['cores']} cores; "
          f"{pb['parallel_queries_per_sec']:,.0f} queries/sec)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
