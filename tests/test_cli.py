"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def barrier_trace_file(tmp_path):
    path = tmp_path / "barrier.json"
    code = main([
        "generate", "barrier", "--nodes", "3", "--rounds", "2",
        "--out", str(path),
    ])
    assert code == 0
    return str(path)


class TestGenerate:
    @pytest.mark.parametrize(
        "kind",
        ["random", "ring", "pipeline", "broadcast", "client-server",
         "barrier", "layered"],
    )
    def test_all_kinds(self, tmp_path, kind, capsys):
        path = tmp_path / f"{kind}.json"
        assert main(["generate", kind, "--nodes", "4", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        data = json.loads(path.read_text())
        assert data["version"] == 1

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["generate", "random", "--seed", "5", "--out", str(a)])
        main(["generate", "random", "--seed", "5", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestInfo:
    def test_summary(self, barrier_trace_file, capsys):
        assert main(["info", barrier_trace_file]) == 0
        out = capsys.readouterr().out
        assert "3 nodes" in out
        assert "labels:" in out and "phase0" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestRender:
    def test_plain(self, barrier_trace_file, capsys):
        assert main(["render", barrier_trace_file, "--no-messages"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[1].startswith("P0")

    def test_with_interval(self, barrier_trace_file, capsys):
        assert main([
            "render", barrier_trace_file, "--interval", "phase0",
            "--no-messages",
        ]) == 0
        assert "P" in capsys.readouterr().out

    def test_unknown_label(self, barrier_trace_file, capsys):
        assert main(["render", barrier_trace_file, "--interval", "zzz"]) == 2


class TestRelations:
    def test_all_relations(self, barrier_trace_file, capsys):
        assert main([
            "relations", barrier_trace_file, "--x", "phase0", "--y", "phase1",
        ]) == 0
        out = capsys.readouterr().out
        assert "holding (32/32)" in out  # barrier: everything holds
        assert "strongest: R1'(U,L), R1(U,L)" in out

    def test_single_spec(self, barrier_trace_file, capsys):
        assert main([
            "relations", barrier_trace_file, "--x", "phase1",
            "--y", "phase0", "--spec", "R4",
        ]) == 0
        assert "R4(X, Y) = False" in capsys.readouterr().out

    def test_engine_choice(self, barrier_trace_file, capsys):
        assert main([
            "relations", barrier_trace_file, "--x", "phase0",
            "--y", "phase1", "--engine", "naive", "--spec", "R1",
        ]) == 0
        assert "True" in capsys.readouterr().out


class TestCheck:
    def test_passing(self, barrier_trace_file, capsys):
        code = main([
            "check", barrier_trace_file,
            "--spec", "R1(U,L)(a, b) and not R4(b, a)",
            "--bind", "a=phase0", "--bind", "b=phase1",
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_failing_exit_code(self, barrier_trace_file, capsys):
        code = main([
            "check", barrier_trace_file, "--spec", "R1(b, a)",
            "--bind", "a=phase0", "--bind", "b=phase1",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bad_binding_syntax(self, barrier_trace_file, capsys):
        assert main([
            "check", barrier_trace_file, "--spec", "R1(a, b)",
            "--bind", "nonsense",
        ]) == 2

    def test_unbound_name(self, barrier_trace_file):
        assert main([
            "check", barrier_trace_file, "--spec", "R1(a, b)",
            "--bind", "a=phase0",
        ]) == 2


class TestFigures:
    def test_prints_figure2(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "C1" in out and "X" in out


class TestParser:
    def test_build_parser_structure(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["relations", "t.json", "--x", "a", "--y", "b", "--spec", "R1"]
        )
        assert args.command == "relations"
        assert args.spec == "R1"

    def test_generate_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["generate", "random", "--out", "x.json"]
        )
        assert args.nodes == 4
        assert args.seed == 0

    def test_unknown_command_rejected(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestVersion:
    def test_version_string(self):
        import repro

        assert repro.__version__ == "1.0.0"
