"""Unit tests for the Event value type."""

import pytest

from repro.events.event import Event, EventKind, bottom_id, is_real_id


class TestEventKind:
    def test_dummy_kinds(self):
        assert EventKind.BOTTOM.is_dummy
        assert EventKind.TOP.is_dummy

    def test_real_kinds(self):
        assert not EventKind.INTERNAL.is_dummy
        assert not EventKind.SEND.is_dummy
        assert not EventKind.RECV.is_dummy

    def test_round_trip_values(self):
        for kind in EventKind:
            assert EventKind(kind.value) is kind


class TestEvent:
    def test_eid(self):
        ev = Event(node=2, index=5)
        assert ev.eid == (2, 5)

    def test_defaults(self):
        ev = Event(node=0, index=1)
        assert ev.kind is EventKind.INTERNAL
        assert ev.label is None
        assert ev.time is None
        assert ev.payload is None

    def test_is_real_and_dummy(self):
        assert Event(0, 1).is_real
        assert not Event(0, 1).is_dummy
        assert Event(0, 0, kind=EventKind.BOTTOM).is_dummy
        assert not Event(0, 0, kind=EventKind.BOTTOM).is_real

    def test_frozen(self):
        ev = Event(0, 1)
        with pytest.raises(AttributeError):
            ev.node = 3  # type: ignore[misc]

    def test_equality_ignores_payload(self):
        a = Event(0, 1, payload={"x": 1})
        b = Event(0, 1, payload={"x": 2})
        assert a == b

    def test_equality_respects_label(self):
        assert Event(0, 1, label="a") != Event(0, 1, label="b")

    def test_str_contains_coordinates(self):
        assert "e(1,2)" in str(Event(1, 2))
        assert ":cs" in str(Event(1, 2, label="cs"))


class TestIdHelpers:
    def test_bottom_id(self):
        assert bottom_id(3) == (3, 0)

    @pytest.mark.parametrize(
        "eid,k,expected",
        [((0, 0), 5, False), ((0, 1), 5, True), ((0, 5), 5, True),
         ((0, 6), 5, False)],
    )
    def test_is_real_id(self, eid, k, expected):
        assert is_real_id(eid, k) is expected
