"""Tests for the application layers (mutex, multimedia, air defence,
process control)."""

import pytest

from repro.apps.airdefense import air_defense_scenario
from repro.apps.multimedia import StreamSyncChecker, stream_trace
from repro.apps.mutex import MutualExclusionChecker, token_mutex_trace
from repro.apps.process_control import control_loop


class TestMutex:
    def test_correct_run_is_serialised(self):
        ex, occs = token_mutex_trace(4, occupancies=5, replicas=2, seed=3)
        assert len(occs) == 5
        assert MutualExclusionChecker(ex).check() == []

    def test_violation_detected(self):
        ex, _ = token_mutex_trace(4, occupancies=4, replicas=2,
                                  violate=True, seed=3)
        violations = MutualExclusionChecker(ex).check()
        assert violations
        names = {v.first.name for v in violations} | {
            v.second.name for v in violations
        }
        assert "cs:3" in names  # the raced occupancy is implicated

    def test_engines_agree_on_verdict(self):
        for violate in (False, True):
            ex, _ = token_mutex_trace(3, occupancies=3, violate=violate, seed=1)
            verdicts = {
                engine: bool(MutualExclusionChecker(ex, engine=engine).check())
                for engine in ("naive", "polynomial", "linear")
            }
            assert len(set(verdicts.values())) == 1

    def test_replicated_occupancies_span_nodes(self):
        ex, occs = token_mutex_trace(4, occupancies=3, replicas=3, seed=0)
        assert all(occ.width >= 2 for occ in occs.values())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            token_mutex_trace(1)
        with pytest.raises(ValueError):
            token_mutex_trace(3, replicas=5)

    def test_deterministic(self):
        a = token_mutex_trace(4, occupancies=4, seed=9)[0].trace
        b = token_mutex_trace(4, occupancies=4, seed=9)[0].trace
        assert a == b


class TestMultimedia:
    def test_in_order_stream_passes(self):
        ex, units = stream_trace(3, units=6, disorder=0, seed=2)
        assert StreamSyncChecker(ex).check_intra_stream(units, "video") == []

    def test_disorder_violates(self):
        ex, units = stream_trace(3, units=8, disorder=3, seed=2)
        violations = StreamSyncChecker(ex).check_intra_stream(units, "video")
        assert violations

    def test_larger_lag_tolerates_disorder(self):
        ex, units = stream_trace(3, units=8, disorder=1, seed=4)
        ck = StreamSyncChecker(ex)
        lag1 = ck.check_intra_stream(units, "video", lag=1)
        lag4 = ck.check_intra_stream(units, "video", lag=4)
        assert len(lag4) <= len(lag1)
        assert lag4 == []

    def test_units_span_all_sinks(self):
        _ex, units = stream_trace(4, units=3, seed=0)
        assert all(u.width == 4 for u in units.values())

    def test_inter_stream_sync(self):
        ex, units = stream_trace(2, units=4, streams=("audio", "video"),
                                 disorder=0, seed=1)
        ck = StreamSyncChecker(ex)
        assert ck.check_inter_stream(units, "audio", "video") == []

    def test_lag_validation(self):
        ex, units = stream_trace(2, units=2, seed=0)
        with pytest.raises(ValueError):
            StreamSyncChecker(ex).check_intra_stream(units, "video", lag=0)


class TestAirDefense:
    def test_nominal_run_safe(self):
        sc = air_defense_scenario()
        assert sc.all_safe()

    def test_reports_cover_all_conditions(self):
        sc = air_defense_scenario(num_batteries=2)
        reports = sc.check()
        assert len(reports) == 1 + 2 * 2  # detection + 2 per battery

    def test_premature_launch_detected(self):
        sc = air_defense_scenario(premature_battery=0)
        reports = sc.check()
        assert not reports["launch0-after-confirmation"].passed
        assert reports["launch1-after-confirmation"].passed

    def test_intervals_structure(self):
        sc = air_defense_scenario(num_radars=3, plots_per_radar=2)
        assert sc.detection.width == 3
        assert len(sc.detection) == 6
        assert sc.confirmation.width == 1

    def test_quorum_parameter(self):
        sc = air_defense_scenario(num_radars=4, quorum=2)
        assert sc.all_safe()

    def test_validation(self):
        with pytest.raises(ValueError):
            air_defense_scenario(num_radars=0)

    def test_unreachable_quorum_rejected(self):
        with pytest.raises(ValueError, match="never be reached"):
            air_defense_scenario(num_radars=2, plots_per_radar=1, quorum=5)


class TestProcessControl:
    def test_nominal_loop_safe(self):
        assert control_loop(periods=3).all_safe()

    def test_conditions_enumerated(self):
        loop = control_loop(periods=3)
        conds = loop.conditions()
        assert len(conds) == 3 + 2 * 2

    def test_bindings_complete(self):
        loop = control_loop(periods=2)
        names = set(loop.bindings())
        assert names == {"sample0", "sample1", "apply0", "apply1"}

    def test_interval_widths(self):
        loop = control_loop(num_sensors=3, num_actuators=2, periods=2)
        assert all(s.width == 3 for s in loop.samples)
        assert all(a.width == 2 for a in loop.applies)

    def test_engines_agree(self):
        loop = control_loop(periods=2)
        assert loop.all_safe("naive") == loop.all_safe("linear")
