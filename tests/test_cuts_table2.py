"""Experiment E-T2: cuts, Table 2 timestamps, Lemmas 11/12/16.

Validates that the condensed (timestamp-based) cut constructions equal
the literal set definitions on every generated instance:

* ``↓e`` / ``e↑`` against reference pairwise-precedence constructions;
* C1–C4 against explicit unions/intersections of the ``↓x`` / ``x↑``
  families (Definition 10 / Lemma 16);
* Lemma 12's knowledge-theoretic surface properties;
* downward-closure facts stated after Lemma 11.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.cuts import (
    Cut,
    cut_C1,
    cut_C2,
    cut_C3,
    cut_C4,
    cut_from_event_set,
    cut_intersection,
    cut_union,
    cuts_of,
    future_cut,
    past_cut,
    reference_future_cut_set,
    reference_past_set,
)
from repro.nonatomic.event import NonatomicEvent

from .strategies import execution_with_pair, executions


class TestCutBasics:
    def test_vector_validation(self, message_exec):
        Cut(message_exec, [0, 0])
        Cut(message_exec, [4, 4])  # ⊤ positions
        with pytest.raises(ValueError, match="out of range"):
            Cut(message_exec, [5, 0])
        with pytest.raises(ValueError, match="out of range"):
            Cut(message_exec, [-1, 0])
        with pytest.raises(ValueError, match="length"):
            Cut(message_exec, [1])

    def test_contains(self, message_exec):
        c = Cut(message_exec, [2, 0])
        assert c.contains((0, 0))  # ⊥ always in
        assert c.contains((0, 2))
        assert not c.contains((0, 3))
        assert c.contains((1, 0))
        assert not c.contains((1, 1))

    def test_surfaces(self, message_exec):
        c = Cut(message_exec, [2, 0])
        assert c.surface_ids() == ((0, 2), (1, 0))
        assert c.real_surface_ids() == ((0, 2),)
        c_top = Cut(message_exec, [4, 1])
        assert c_top.real_surface_ids() == ((1, 1),)

    def test_support_and_node_set(self, message_exec):
        c = Cut(message_exec, [2, 0])
        assert c.support == (0,)
        assert c.node_set == (0,)
        assert Cut(message_exec, [0, 0]).is_bottom()
        assert not c.is_bottom()

    def test_event_ids(self, message_exec):
        c = Cut(message_exec, [2, 1])
        assert c.event_ids() == {(0, 1), (0, 2), (1, 1)}
        # ⊤ prefix yields all real events of the node
        c_top = Cut(message_exec, [4, 0])
        assert c_top.event_ids() == {(0, 1), (0, 2), (0, 3)}

    def test_lattice_ops(self, message_exec):
        a = Cut(message_exec, [2, 1])
        b = Cut(message_exec, [1, 3])
        assert list(a.union(b).vector) == [2, 3]
        assert list(a.intersection(b).vector) == [1, 1]
        assert a.intersection(b).issubset(a)
        assert a.issubset(a.union(b))

    def test_cross_execution_ops_rejected(self, message_exec, chain_exec):
        a = Cut(message_exec, [1, 1])
        b = Cut(chain_exec, [1])
        with pytest.raises(ValueError):
            a.union(b)  # type: ignore[arg-type]

    def test_equality_hash(self, message_exec):
        assert Cut(message_exec, [1, 2]) == Cut(message_exec, [1, 2])
        assert hash(Cut(message_exec, [1, 2])) == hash(Cut(message_exec, [1, 2]))
        assert Cut(message_exec, [1, 2]) != Cut(message_exec, [2, 2])

    def test_fold_helpers(self, message_exec):
        cs = [Cut(message_exec, [2, 1]), Cut(message_exec, [1, 3])]
        assert list(cut_union(cs).vector) == [2, 3]
        assert list(cut_intersection(cs).vector) == [1, 1]
        with pytest.raises(ValueError):
            cut_union([])
        with pytest.raises(ValueError):
            cut_intersection([])

    def test_cut_from_event_set(self, message_exec):
        c = cut_from_event_set(message_exec, {(0, 1), (0, 2), (1, 1)})
        assert list(c.vector) == [2, 1]
        with pytest.raises(ValueError, match="prefix-closed"):
            cut_from_event_set(message_exec, {(0, 2)})


class TestSpecialCuts:
    def test_past_cut_is_clock(self, message_exec):
        assert list(past_cut(message_exec, (1, 2)).vector) == [2, 2]

    def test_future_cut_values(self, message_exec):
        # (0,2)↑: node 0 earliest ≽ is itself; node 1 earliest ≽ is (1,2)
        assert list(future_cut(message_exec, (0, 2)).vector) == [2, 2]
        # (1,3)↑: nothing on node 0 follows it -> ⊤ position 4
        assert list(future_cut(message_exec, (1, 3)).vector) == [4, 3]

    @settings(max_examples=50, deadline=None)
    @given(ex=executions())
    def test_past_cut_matches_reference(self, ex):
        for eid in ex.iter_ids():
            assert past_cut(ex, eid).event_ids() == reference_past_set(ex, eid)

    @settings(max_examples=50, deadline=None)
    @given(ex=executions())
    def test_future_cut_matches_reference(self, ex):
        for eid in ex.iter_ids():
            got = future_cut(ex, eid).event_ids()
            assert got == reference_future_cut_set(ex, eid)

    @settings(max_examples=30, deadline=None)
    @given(ex=executions())
    def test_past_downward_closed_future_not_required(self, ex):
        """↓e is downward-closed in (E, ≺); e↑ need not be."""
        for eid in ex.iter_ids():
            assert past_cut(ex, eid).is_downward_closed()

    def test_future_cut_can_be_inconsistent(self, message_exec):
        # (1,1)↑ includes (1,1) but not its concurrent predecessor-free
        # region on node 0 beyond ⊥ — and crucially e↑ of a *receive*
        # excludes the send's later local events while including the
        # receive itself.
        c = future_cut(message_exec, (1, 2))
        assert not c.is_downward_closed()


class TestTable2Cuts:
    def _reference_quadruple(self, ex, x):
        pasts = [cut_from_event_set(ex, reference_past_set(ex, e)) for e in x.ids]
        futs = []
        for e in x.ids:
            # reference future cut may include ⊤ positions; build vector
            ids = reference_future_cut_set(ex, e)
            vec = np.zeros(ex.num_nodes, dtype=np.int64)
            for i in range(ex.num_nodes):
                members = [j for (n, j) in ids if n == i]
                k = ex.num_real(i)
                count = len(members)
                # prefix property: earliest event ≽ e included; if the
                # whole node is below e↑ surface the cut reaches ⊤.
                has_future = any(ex.leq(e, (i, j)) for j in range(1, k + 1))
                vec[i] = count if has_future else k + 1
            futs.append(Cut(ex, vec))
        return (
            cut_intersection(pasts),
            cut_union(pasts),
            cut_intersection(futs),
            cut_union(futs),
        )

    @settings(max_examples=40, deadline=None)
    @given(pair=execution_with_pair())
    def test_c1_to_c4_match_definition_10(self, pair):
        ex, x, _y = pair
        ref1, ref2, ref3, ref4 = self._reference_quadruple(ex, x)
        assert cut_C1(x) == ref1
        assert cut_C2(x) == ref2
        assert cut_C3(x) == ref3
        assert cut_C4(x) == ref4

    @settings(max_examples=40, deadline=None)
    @given(pair=execution_with_pair())
    def test_containments(self, pair):
        _ex, x, _y = pair
        q = cuts_of(x)
        assert q.c1.issubset(q.c2)
        assert q.c3.issubset(q.c4)

    @settings(max_examples=40, deadline=None)
    @given(pair=execution_with_pair())
    def test_past_cuts_downward_closed(self, pair):
        """∩⇓X and ∪⇓X are downward-closed (noted after Lemma 12)."""
        _ex, x, _y = pair
        assert cut_C1(x).is_downward_closed()
        assert cut_C2(x).is_downward_closed()

    def test_cuts_cached(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (1, 2)])
        assert cut_C1(x) is cut_C1(x)
        assert cuts_of(x).c3 is cuts_of(x).c3


class TestLemma12:
    @settings(max_examples=40, deadline=None)
    @given(pair=execution_with_pair())
    def test_surface_properties(self, pair):
        ex, x, _y = pair
        # 12.1: every real surface event of ∩⇓X precedes-or-equals every x
        for e in cut_C1(x).real_surface_ids():
            assert all(ex.leq(e, xx) for xx in x.ids)
        # 12.2: every real surface event of ∪⇓X ≼ some x
        for e in cut_C2(x).real_surface_ids():
            assert any(ex.leq(e, xx) for xx in x.ids)
        # 12.3: every real surface event of ∩⇑X ≽ some x
        for e in cut_C3(x).real_surface_ids():
            assert any(ex.leq(xx, e) for xx in x.ids)
        # 12.4: every real surface event of ∪⇑X ≽ every x
        for e in cut_C4(x).real_surface_ids():
            assert all(ex.leq(xx, e) for xx in x.ids)

    @settings(max_examples=40, deadline=None)
    @given(pair=execution_with_pair())
    def test_surfaces_are_extremal(self, pair):
        """C1's surface is the *latest* common-knowledge prefix and C3's
        the *earliest* affected events: one step further violates the
        property."""
        ex, x, _y = pair
        v1 = cut_C1(x).vector
        for i in range(ex.num_nodes):
            nxt = int(v1[i]) + 1
            if nxt <= ex.num_real(i):
                assert not all(ex.leq((i, nxt), xx) for xx in x.ids)
        v3 = cut_C3(x).vector
        for i in range(ex.num_nodes):
            prev = int(v3[i]) - 1
            if 1 <= prev <= ex.num_real(i):
                assert not any(ex.leq(xx, (i, prev)) for xx in x.ids)
