"""Tests for NonatomicEvent (node sets, extrema, validation)."""

import pytest
from hypothesis import given, settings

from repro.nonatomic.event import NonatomicEvent

from .strategies import execution_with_pair


class TestConstruction:
    def test_empty_rejected(self, message_exec):
        with pytest.raises(ValueError, match="at least one"):
            NonatomicEvent(message_exec, [])

    def test_dummy_rejected(self, message_exec):
        with pytest.raises(ValueError, match="not a real event"):
            NonatomicEvent(message_exec, [(0, 0)])
        with pytest.raises(ValueError, match="not a real event"):
            NonatomicEvent(message_exec, [(0, 4)])

    def test_out_of_range_rejected(self, message_exec):
        with pytest.raises(ValueError):
            NonatomicEvent(message_exec, [(7, 1)])

    def test_duplicates_collapse(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 1)])
        assert len(x) == 1

    def test_name(self, message_exec):
        assert NonatomicEvent(message_exec, [(0, 1)], name="X").name == "X"


class TestNodeSet:
    def test_definition_1(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 3), (1, 2)])
        assert x.node_set == (0, 1)
        assert x.width == 2

    def test_single_node(self, message_exec):
        x = NonatomicEvent(message_exec, [(1, 2)])
        assert x.node_set == (1,)

    @settings(max_examples=30, deadline=None)
    @given(pair=execution_with_pair())
    def test_node_set_matches_components(self, pair):
        _ex, x, _y = pair
        assert set(x.node_set) == {n for n, _ in x.ids}


class TestExtrema:
    def test_first_last(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 3), (1, 2)])
        assert x.first_at(0) == 1
        assert x.last_at(0) == 3
        assert x.first_at(1) == x.last_at(1) == 2

    def test_first_last_ids(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 3), (1, 2)])
        assert x.first_ids() == ((0, 1), (1, 2))
        assert x.last_ids() == ((0, 3), (1, 2))

    def test_missing_node_raises(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1)])
        with pytest.raises(KeyError):
            x.first_at(1)

    @settings(max_examples=30, deadline=None)
    @given(pair=execution_with_pair())
    def test_extrema_bound_components(self, pair):
        _ex, x, _y = pair
        for node, idx in x.ids:
            assert x.first_at(node) <= idx <= x.last_at(node)


class TestSetBehaviour:
    def test_contains_iter_len(self, message_exec):
        x = NonatomicEvent(message_exec, [(1, 2), (0, 1)])
        assert (0, 1) in x
        assert (0, 2) not in x
        assert list(x) == [(0, 1), (1, 2)]
        assert len(x) == 2

    def test_restrict(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 3), (1, 2)])
        assert x.restrict(0) == ((0, 1), (0, 3))
        assert x.restrict(1) == ((1, 2),)

    def test_disjoint(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1)])
        y = NonatomicEvent(message_exec, [(0, 2)])
        z = NonatomicEvent(message_exec, [(0, 1), (1, 1)])
        assert x.is_disjoint(y)
        assert not x.is_disjoint(z)

    def test_equality_same_execution(self, message_exec):
        a = NonatomicEvent(message_exec, [(0, 1), (1, 2)])
        b = NonatomicEvent(message_exec, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_across_executions(self, message_exec, chain_exec):
        a = NonatomicEvent(message_exec, [(0, 1)])
        b = NonatomicEvent(chain_exec, [(0, 1)])
        assert a != b

    def test_cache_is_per_instance(self, message_exec):
        a = NonatomicEvent(message_exec, [(0, 1)])
        b = NonatomicEvent(message_exec, [(0, 1)])
        a.cache["k"] = 1
        assert "k" not in b.cache
