"""Tests for forward and reverse vector clocks (Definitions 13 and 14).

The ground truth is the transitive closure of the covering digraph
(networkx): ``T(e)[i]`` must equal the number of node-``i`` events
``≼ e``, and ``T^R(e)[i]`` the number ``≽ e`` — checked exhaustively on
fixed posets and property-based on random ones.
"""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.events.builder import TraceBuilder
from repro.events.clocks import (
    CyclicTraceError,
    compute_forward_clocks,
    compute_reverse_clocks,
)
from repro.events.event import Event, EventKind
from repro.events.poset import Execution
from repro.events.trace import Message, Trace

from .strategies import executions


def closure_counts(ex: Execution):
    """Oracle: per-event (T, T^R) via explicit transitive closure."""
    g = ex.to_networkx()
    tc = nx.transitive_closure_dag(g)
    fwd, rev = {}, {}
    ids = list(ex.iter_ids())
    for e in ids:
        below = {e} | set(tc.predecessors(e))
        above = {e} | set(tc.successors(e))
        fwd[e] = [
            sum(1 for (n, _j) in below if n == i) for i in range(ex.num_nodes)
        ]
        rev[e] = [
            sum(1 for (n, _j) in above if n == i) for i in range(ex.num_nodes)
        ]
    return fwd, rev


class TestForwardClocks:
    def test_single_chain(self, chain_exec):
        for j in range(1, 4):
            assert list(chain_exec.clock((0, j))) == [j]

    def test_message_exec(self, message_exec):
        # b2 = (1,2) receives from a2 = (0,2)
        assert list(message_exec.clock((1, 2))) == [2, 2]
        assert list(message_exec.clock((1, 1))) == [0, 1]
        assert list(message_exec.clock((0, 3))) == [3, 0]

    def test_diamond(self, diamond_exec):
        # (3,2) has everything except (3,3) in its past
        assert list(diamond_exec.clock((3, 2))) == [2, 2, 2, 2]
        # (3,1) received from (1,2), whose past on node 0 is only (0,1)
        assert list(diamond_exec.clock((3, 1))) == [1, 2, 0, 1]

    def test_matrices_read_only(self, message_exec):
        with pytest.raises(ValueError):
            message_exec.clock_matrix(0)[0, 0] = 99

    @settings(max_examples=60, deadline=None)
    @given(ex=executions())
    def test_matches_transitive_closure(self, ex):
        fwd, _rev = closure_counts(ex)
        for eid in ex.iter_ids():
            assert list(ex.clock(eid)) == fwd[eid], eid


class TestReverseClocks:
    def test_single_chain(self, chain_exec):
        assert list(chain_exec.rclock((0, 1))) == [3]
        assert list(chain_exec.rclock((0, 3))) == [1]

    def test_message_exec(self, message_exec):
        # a2 = (0,2): future on node 1 is b2, b3
        assert list(message_exec.rclock((0, 2))) == [2, 2]
        # b3 = (1,3): nothing after it except itself
        assert list(message_exec.rclock((1, 3))) == [0, 1]

    @settings(max_examples=60, deadline=None)
    @given(ex=executions())
    def test_matches_transitive_closure(self, ex):
        _fwd, rev = closure_counts(ex)
        for eid in ex.iter_ids():
            assert list(ex.rclock(eid)) == rev[eid], eid

    @settings(max_examples=40, deadline=None)
    @given(ex=executions())
    def test_duality_with_forward(self, ex):
        """e ≼ e'  ⟺  e' counts in T^R(e) at its node."""
        ids = list(ex.iter_ids())
        for a in ids:
            for b in ids:
                fwd_says = bool(ex.clock(b)[a[0]] >= a[1])
                k = ex.num_real(b[0])
                rev_says = bool(k - ex.rclock(a)[b[0]] < b[1])
                assert fwd_says == rev_says, (a, b)


class TestCycleDetection:
    def test_two_message_cycle(self):
        # (0,1) sends to (1,1); (1,... ) — build a crossing that cycles:
        # recv on node 0 of a message sent by node 1 *after* node 1
        # received from node 0's later send.
        events = [
            [Event(0, 1, kind=EventKind.RECV), Event(0, 2, kind=EventKind.SEND)],
            [Event(1, 1, kind=EventKind.RECV), Event(1, 2, kind=EventKind.SEND)],
        ]
        msgs = [Message((0, 2), (1, 1)), Message((1, 2), (0, 1))]
        trace = Trace(events, msgs)
        with pytest.raises(CyclicTraceError):
            Execution(trace)

    def test_error_mentions_stuck_events(self):
        events = [
            [Event(0, 1, kind=EventKind.RECV), Event(0, 2, kind=EventKind.SEND)],
            [Event(1, 1, kind=EventKind.RECV), Event(1, 2, kind=EventKind.SEND)],
        ]
        msgs = [Message((0, 2), (1, 1)), Message((1, 2), (0, 1))]
        with pytest.raises(CyclicTraceError, match="stuck"):
            compute_forward_clocks(Trace(events, msgs))


class TestClockFunctions:
    def test_forward_shapes(self, message_exec):
        mats = compute_forward_clocks(message_exec.trace)
        assert [m.shape for m in mats] == [(3, 2), (3, 2)]

    def test_reverse_shapes(self, message_exec):
        mats = compute_reverse_clocks(message_exec.trace)
        assert [m.shape for m in mats] == [(3, 2), (3, 2)]

    def test_empty_node_ok(self):
        b = TraceBuilder(3)
        b.internal(0)
        ex = b.execute()
        assert list(ex.clock((0, 1))) == [1, 0, 0]
        assert ex.num_real(1) == 0

    def test_own_component_is_index(self, medium_exec):
        for eid in medium_exec.iter_ids():
            assert medium_exec.clock(eid)[eid[0]] == eid[1]
            # reverse: own component counts self + local successors
            k = medium_exec.num_real(eid[0])
            assert medium_exec.rclock(eid)[eid[0]] == k - eid[1] + 1
