"""Shared hypothesis strategies and deterministic helpers for the suite.

The central strategy builds random—but always valid—distributed traces
by drawing a sequence of per-node operations (internal / send /
deliver-oldest), which guarantees acyclicity by construction (a receive
is only appended after its send).  Interval strategies then draw
disjoint nonatomic event pairs from the resulting execution.
"""

from __future__ import annotations


from hypothesis import strategies as st

from repro.events.builder import TraceBuilder
from repro.events.poset import Execution
from repro.events.trace import Trace
from repro.nonatomic.event import NonatomicEvent

__all__ = [
    "traces",
    "executions",
    "execution_with_pair",
    "execution_with_intervals",
    "build_trace_from_ops",
]


def build_trace_from_ops(
    num_nodes: int, ops: list[tuple[int, int, int]]
) -> Trace:
    """Deterministically build a trace from drawn operations.

    Each op is ``(node, action, aux)``:

    * ``action == 0`` — internal event on ``node``;
    * ``action == 1`` — send from ``node`` to node ``aux % num_nodes``
      (skipped if it would self-address);
    * ``action == 2`` — deliver the oldest in-flight message addressed
      to ``node`` (internal event if none).
    """
    b = TraceBuilder(num_nodes)
    in_flight: list[list] = [[] for _ in range(num_nodes)]
    t = 0.0
    for node, action, aux in ops:
        node %= num_nodes
        t += 1.0
        if action == 1 and num_nodes > 1:
            dst = aux % num_nodes
            if dst == node:
                dst = (dst + 1) % num_nodes
            in_flight[dst].append(b.send(node, time=t))
        elif action == 2 and in_flight[node]:
            b.recv(node, in_flight[node].pop(0), time=t)
        else:
            b.internal(node, time=t)
    # guarantee every node has at least one event
    for i in range(num_nodes):
        if b.count(i) == 0:
            t += 1.0
            b.internal(i, time=t)
    return b.build()


@st.composite
def traces(draw, max_nodes: int = 5, max_ops: int = 40) -> Trace:
    """A random valid trace (>= 1 event per node)."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1),
                st.integers(0, 2),
                st.integers(0, max(num_nodes - 1, 0)),
            ),
            min_size=num_nodes,
            max_size=max_ops,
        )
    )
    return build_trace_from_ops(num_nodes, ops)


@st.composite
def executions(draw, max_nodes: int = 5, max_ops: int = 40) -> Execution:
    """A random analysed execution."""
    return Execution(draw(traces(max_nodes=max_nodes, max_ops=max_ops)))


def _draw_interval(
    draw, ex: Execution, exclude: set, name: str
) -> NonatomicEvent | None:
    pool = [eid for eid in ex.iter_ids() if eid not in exclude]
    if not pool:
        return None
    pool.sort()
    size = draw(st.integers(min_value=1, max_value=min(len(pool), 8)))
    picks = draw(
        st.lists(
            st.integers(0, len(pool) - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    ids = [pool[i] for i in picks]
    return NonatomicEvent(ex, ids, name=name)


@st.composite
def execution_with_pair(
    draw, max_nodes: int = 5, max_ops: int = 40
) -> tuple[Execution, NonatomicEvent, NonatomicEvent]:
    """An execution with two disjoint nonatomic events X and Y.

    Executions are drawn with at least two events so disjoint non-empty
    X and Y always exist.
    """
    ex = draw(executions(max_nodes=max_nodes, max_ops=max_ops))
    ids = sorted(ex.iter_ids())
    if len(ids) < 2:
        # force a second event: rebuild with one extra internal
        b = TraceBuilder(ex.num_nodes)
        for ev in ex.trace.iter_events():
            b.internal(ev.node)
        b.internal(0)
        ex = b.execute()
    x = _draw_interval(draw, ex, set(), "X")
    y = _draw_interval(draw, ex, set(x.ids), "Y")
    if y is None:
        # X ate everything; re-split deterministically
        all_ids = sorted(ex.iter_ids())
        half = max(1, len(all_ids) // 2)
        x = NonatomicEvent(ex, all_ids[:half], name="X")
        y = NonatomicEvent(ex, all_ids[half:], name="Y")
    return ex, x, y


@st.composite
def execution_with_intervals(
    draw, k: int = 3, max_nodes: int = 5, max_ops: int = 40
) -> tuple[Execution, list[NonatomicEvent]]:
    """An execution with ``k`` (possibly overlapping) intervals."""
    ex = draw(executions(max_nodes=max_nodes, max_ops=max_ops))
    out = []
    for i in range(k):
        iv = _draw_interval(draw, ex, set(), f"I{i}")
        assert iv is not None
        out.append(iv)
    return ex, out
