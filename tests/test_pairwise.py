"""Tests for the vectorised all-pairs relation matrices."""

import pytest
from hypothesis import given, settings

from repro.core.linear import LinearEvaluator
from repro.core.pairwise import IntervalSetMatrices, relation_matrix
from repro.core.relations import BASE_RELATIONS, FAMILY32, Relation
from repro.nonatomic.event import NonatomicEvent

from .strategies import execution_with_intervals


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IntervalSetMatrices([])

    def test_cross_execution_rejected(self, message_exec, chain_exec):
        a = NonatomicEvent(message_exec, [(0, 1)])
        b = NonatomicEvent(chain_exec, [(0, 1)])
        with pytest.raises(ValueError, match="different executions"):
            IntervalSetMatrices([a, b])

    def test_shapes(self, message_exec):
        ivs = [
            NonatomicEvent(message_exec, [(0, 1)]),
            NonatomicEvent(message_exec, [(1, 2), (0, 3)]),
        ]
        mats = IntervalSetMatrices(ivs)
        assert mats.c1.shape == (2, 2)
        assert len(mats) == 2

    def test_node_set_encoding(self, message_exec):
        iv = NonatomicEvent(message_exec, [(1, 2)])
        mats = IntervalSetMatrices([iv])
        assert mats.first[0, 0] == 0  # node 0 not in N_X
        assert mats.first[0, 1] == 2
        assert mats.last[0, 1] == 2


class TestAgainstScalarEngine:
    @settings(max_examples=60, deadline=None)
    @given(data=execution_with_intervals(k=4))
    def test_base_matrix_matches_loop(self, data):
        ex, ivs = data
        mats = IntervalSetMatrices(ivs)
        lin = LinearEvaluator(ex)
        for rel in BASE_RELATIONS:
            m = mats.relation_matrix(rel, mask_diagonal=False)
            for i, x in enumerate(ivs):
                for j, y in enumerate(ivs):
                    if i == j:
                        continue
                    assert bool(m[i, j]) == lin.evaluate(rel, x, y), (
                        rel, i, j,
                    )

    @settings(max_examples=25, deadline=None)
    @given(data=execution_with_intervals(k=3))
    def test_spec_matrix_matches_loop(self, data):
        ex, ivs = data
        mats = IntervalSetMatrices(ivs)
        lin = LinearEvaluator(ex)
        for spec in FAMILY32[::5]:  # a representative slice
            m = mats.spec_matrix(spec, mask_diagonal=False)
            for i, x in enumerate(ivs):
                for j, y in enumerate(ivs):
                    if i == j:
                        continue
                    assert bool(m[i, j]) == lin.evaluate_spec(spec, x, y), (
                        spec, i, j,
                    )

    def test_diagonal_masked_by_default(self, message_exec):
        ivs = [
            NonatomicEvent(message_exec, [(0, 1)]),
            NonatomicEvent(message_exec, [(1, 2)]),
        ]
        m = relation_matrix(ivs, Relation.R4)
        assert not m[0, 0] and not m[1, 1]

    def test_known_ordering(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1)])
        y = NonatomicEvent(message_exec, [(1, 2)])
        m = relation_matrix([x, y], Relation.R1)
        assert bool(m[0, 1]) is True
        assert bool(m[1, 0]) is False

    def test_asymmetric_matrix(self, medium_exec, rng):
        from repro.nonatomic.selection import random_interval

        ivs = [random_interval(medium_exec, rng) for _ in range(6)]
        m = relation_matrix(ivs, Relation.R1, mask_diagonal=False)
        # R1 is asymmetric off the diagonal for disjoint pairs; since
        # intervals may overlap here, just check the matrix is boolean
        # and consistent with the scalar engine on disjoint pairs.
        lin = LinearEvaluator(medium_exec)
        for i, x in enumerate(ivs):
            for j, y in enumerate(ivs):
                if i != j and x.is_disjoint(y):
                    assert bool(m[i, j]) == lin.evaluate(Relation.R1, x, y)
