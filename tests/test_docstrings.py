"""Doctests embedded in documentation-bearing docstrings must stay true."""

import doctest

import repro
import repro.core.evaluator


class TestDoctests:
    def test_package_quickstart(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.attempted >= 1
        assert results.failed == 0

    def test_evaluator_example(self):
        results = doctest.testmod(repro.core.evaluator, verbose=False)
        assert results.attempted >= 1
        assert results.failed == 0
