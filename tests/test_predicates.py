"""Tests for the condition AST and parser."""

import pytest

from repro.core.relations import Relation, RelationSpec
from repro.monitor.predicates import (
    And,
    Atom,
    Implies,
    Not,
    Or,
    ParseError,
    parse_condition,
)
from repro.nonatomic.proxies import Proxy


class TestParserAtoms:
    def test_base_atom(self):
        c = parse_condition("R1(X, Y)")
        assert isinstance(c, Atom)
        assert c.spec is Relation.R1
        assert (c.left, c.right) == ("X", "Y")

    def test_primed_atom(self):
        c = parse_condition("R2'(track, launch)")
        assert c.spec is Relation.R2P

    def test_proxy_atom(self):
        c = parse_condition("R1(U,L)(confirm, fire)")
        assert c.spec == RelationSpec(Relation.R1, Proxy.U, Proxy.L)
        assert (c.left, c.right) == ("confirm", "fire")

    def test_intervals_named_L_U(self):
        """Interval names L and U must not be mistaken for a proxy clause."""
        c = parse_condition("R1(L, U)")
        assert isinstance(c, Atom)
        assert c.spec is Relation.R1
        assert (c.left, c.right) == ("L", "U")

    def test_proxy_clause_with_LU_intervals(self):
        c = parse_condition("R1(L,U)(L, U)")
        assert c.spec == RelationSpec(Relation.R1, Proxy.L, Proxy.U)
        assert (c.left, c.right) == ("L", "U")


class TestParserCombinators:
    def test_not(self):
        c = parse_condition("not R4(a, b)")
        assert isinstance(c, Not)

    def test_and_or_precedence(self):
        c = parse_condition("R1(a,b) or R2(a,b) and R3(a,b)")
        assert isinstance(c, Or)
        assert isinstance(c.operands[1], And)

    def test_parentheses(self):
        c = parse_condition("(R1(a,b) or R2(a,b)) and R3(a,b)")
        assert isinstance(c, And)
        assert isinstance(c.operands[0], Or)

    def test_implies(self):
        c = parse_condition("R1(a,b) -> R2(a,b)")
        assert isinstance(c, Implies)

    def test_nested_not(self):
        c = parse_condition("not not R4(a,b)")
        assert isinstance(c, Not) and isinstance(c.operand, Not)

    def test_names_collected(self):
        c = parse_condition("R1(a,b) and not R2(c,d) -> R3(a,d)")
        assert c.names() == {"a", "b", "c", "d"}


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "R1",
            "R1(a)",
            "R1(a, b) garbage",
            "and R1(a,b)",
            "R1(a,b) and",
            "(R1(a,b)",
            "R1(a,b) @",
            "R7(a,b)",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_condition(text)


class TestEvaluation:
    @staticmethod
    def make_eval(true_atoms):
        def atom_eval(atom):
            return str(atom) in true_atoms

        return atom_eval

    def test_boolean_semantics(self):
        c = parse_condition("R1(a,b) and (R2(a,b) or not R3(a,b))")
        ev = self.make_eval({"R1(a,b)", "R3(a,b)"})
        assert not c.evaluate(ev)
        ev2 = self.make_eval({"R1(a,b)", "R2(a,b)"})
        assert c.evaluate(ev2)

    def test_implies_semantics(self):
        c = parse_condition("R1(a,b) -> R2(a,b)")
        assert c.evaluate(self.make_eval(set()))  # F -> F = T
        assert c.evaluate(self.make_eval({"R1(a,b)", "R2(a,b)"}))
        assert not c.evaluate(self.make_eval({"R1(a,b)"}))

    def test_operator_overloads(self):
        a = Atom(Relation.R1, "x", "y")
        b = Atom(Relation.R2, "x", "y")
        both = a & b
        either = a | b
        neg = ~a
        t = self.make_eval({"R1(x,y)"})
        assert not both.evaluate(t)
        assert either.evaluate(t)
        assert not neg.evaluate(t)

    def test_str_round_trip(self):
        text = "(R1(U,L)(a,b) and not R4(b,a))"
        c = parse_condition(text)
        again = parse_condition(str(c))
        assert str(again) == str(c)
