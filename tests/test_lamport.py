"""Tests for scalar Lamport clocks (soundness, incompleteness)."""

import pytest
from hypothesis import given, settings

from repro.events.clocks import CyclicTraceError
from repro.events.lamport import (
    compute_lamport_clocks,
    lamport_order_violations,
)

from .strategies import executions


class TestComputation:
    def test_chain_is_sequential(self, chain_exec):
        clocks = compute_lamport_clocks(chain_exec.trace)
        assert [clocks[(0, j)] for j in (1, 2, 3)] == [1, 2, 3]

    def test_receive_jumps(self, message_exec):
        clocks = compute_lamport_clocks(message_exec.trace)
        # recv (1,2) must exceed send (0,2)
        assert clocks[(1, 2)] > clocks[(0, 2)]
        assert clocks[(1, 2)] == max(clocks[(1, 1)], clocks[(0, 2)]) + 1

    def test_cycle_detected(self):
        from repro.events.event import Event, EventKind
        from repro.events.trace import Message, Trace

        events = [
            [Event(0, 1, kind=EventKind.RECV), Event(0, 2, kind=EventKind.SEND)],
            [Event(1, 1, kind=EventKind.RECV), Event(1, 2, kind=EventKind.SEND)],
        ]
        msgs = [Message((0, 2), (1, 1)), Message((1, 2), (0, 1))]
        with pytest.raises(CyclicTraceError):
            compute_lamport_clocks(Trace(events, msgs))


class TestSoundness:
    @settings(max_examples=60, deadline=None)
    @given(ex=executions())
    def test_precedence_implies_smaller_scalar(self, ex):
        clocks = compute_lamport_clocks(ex.trace)
        ids = sorted(clocks)
        for a in ids:
            for b in ids:
                if ex.precedes(a, b):
                    assert clocks[a] < clocks[b], (a, b)


class TestIncompleteness:
    def test_concurrent_events_can_be_ordered(self, message_exec):
        """The scalar order lies on this trace — the reason relation
        evaluation needs vectors."""
        violations, checked = lamport_order_violations(message_exec.trace)
        assert checked > 0
        assert violations > 0

    def test_no_lies_when_totally_ordered(self, chain_exec):
        violations, _ = lamport_order_violations(chain_exec.trace)
        assert violations == 0

    def test_sampling(self, medium_exec):
        v_s, n_s = lamport_order_violations(
            medium_exec.trace, sample=500, seed=3
        )
        assert n_s == 500
        assert v_s > 0  # random workloads always have concurrency
