"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.builder import TraceBuilder
from repro.events.poset import Execution
from repro.simulation.workloads import random_execution


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests that sample."""
    return np.random.default_rng(12345)


@pytest.fixture
def chain_exec() -> Execution:
    """Three totally ordered events on one node: a1 < a2 < a3."""
    b = TraceBuilder(1)
    for _ in range(3):
        b.internal(0)
    return b.execute()


@pytest.fixture
def concurrent_exec() -> Execution:
    """Two nodes, two events each, no messages — all cross pairs concurrent."""
    b = TraceBuilder(2)
    b.internal(0)
    b.internal(0)
    b.internal(1)
    b.internal(1)
    return b.execute()


@pytest.fixture
def message_exec() -> Execution:
    """Classic two-node execution::

        P0:  a1   a2(send)   a3
        P1:  b1   b2(recv)   b3

    with the message a2 -> b2, so a1,a2 precede b2,b3 and everything
    else cross-node is concurrent.
    """
    b = TraceBuilder(2)
    b.internal(0)  # (0,1)
    m = b.send(0)  # (0,2)
    b.internal(1)  # (1,1)
    b.recv(1, m)   # (1,2)
    b.internal(0)  # (0,3)
    b.internal(1)  # (1,3)
    return b.execute()


@pytest.fixture
def diamond_exec() -> Execution:
    """Four nodes: 0 fans out to 1 and 2, which both fan in to 3."""
    b = TraceBuilder(4)
    m1 = b.send(0)   # (0,1) -> 1
    m2 = b.send(0)   # (0,2) -> 2
    b.recv(1, m1)    # (1,1)
    b.recv(2, m2)    # (2,1)
    m3 = b.send(1)   # (1,2) -> 3
    m4 = b.send(2)   # (2,2) -> 3
    b.recv(3, m3)    # (3,1)
    b.recv(3, m4)    # (3,2)
    b.internal(3)    # (3,3)
    return b.execute()


@pytest.fixture
def medium_exec() -> Execution:
    """A 6-node, ~120-event random execution for integration tests."""
    return random_execution(6, events_per_node=20, msg_prob=0.35, seed=99)
