"""Tests for the discrete-event simulator."""

import pytest

from repro.events.event import EventKind
from repro.simulation.engine import Simulator, simulate
from repro.simulation.network import ConstantLatency, Network, UniformLatency
from repro.simulation.process import FunctionProcess, Process


class PingPong(Process):
    def __init__(self, limit=4):
        self.limit = limit

    def on_start(self, ctx):
        if ctx.node == 0:
            ctx.send(1, payload=0, label="ping")

    def on_message(self, ctx, payload, label, src):
        if payload + 1 < self.limit:
            ctx.send(src, payload=payload + 1, label="pong")


class TestBasicRuns:
    def test_quiescence(self):
        res = simulate([PingPong(), PingPong()])
        assert res.messages_sent == 4
        assert res.messages_delivered == 4
        assert res.trace.total_events == 8

    def test_empty_processes_rejected(self):
        with pytest.raises(ValueError):
            Simulator([])

    def test_determinism(self):
        a = simulate([PingPong(), PingPong()],
                     network=Network(UniformLatency(0.5, 2.0)), seed=7)
        b = simulate([PingPong(), PingPong()],
                     network=Network(UniformLatency(0.5, 2.0)), seed=7)
        assert a.trace == b.trace
        assert a.end_time == b.end_time

    def test_different_seed_differs(self):
        mk = lambda s: simulate(
            [PingPong(8), PingPong(8)],
            network=Network(UniformLatency(0.1, 5.0), fifo=False), seed=s,
        )
        assert mk(1).end_time != mk(2).end_time

    def test_event_times_recorded(self):
        res = simulate([PingPong(), PingPong()], network=Network(ConstantLatency(2.0)))
        recvs = [ev for ev in res.trace.iter_events() if ev.kind is EventKind.RECV]
        assert all(ev.time is not None and ev.time > 0 for ev in recvs)

    def test_causally_valid_trace(self):
        res = simulate([PingPong(10), PingPong(10)],
                       network=Network(UniformLatency(0.2, 3.0), fifo=False),
                       seed=11)
        res.execute()  # would raise on a cyclic trace


class TestTimers:
    def test_timer_fires_in_order(self):
        fired = []

        def on_start(ctx):
            ctx.set_timer(2.0, tag="late")
            ctx.set_timer(1.0, tag="early")

        def on_timer(ctx, tag):
            fired.append((ctx.now, tag))
            ctx.internal(label=str(tag))

        res = simulate([FunctionProcess(on_start=on_start, on_timer=on_timer)])
        assert fired == [(1.0, "early"), (2.0, "late")]
        assert res.timers_fired == 2

    def test_negative_delay_rejected(self):
        def on_start(ctx):
            with pytest.raises(ValueError):
                ctx.set_timer(-1.0)

        simulate([FunctionProcess(on_start=on_start)])


class TestLimitsAndFaults:
    def test_max_time_stops(self):
        class Endless(Process):
            def on_start(self, ctx):
                ctx.set_timer(1.0, tag=0)

            def on_timer(self, ctx, tag):
                ctx.internal()
                ctx.set_timer(1.0, tag=tag + 1)

        res = simulate([Endless()], max_time=10.5)
        assert res.trace.total_events == 10

    def test_max_events_guard(self):
        class Bomb(Process):
            def on_start(self, ctx):
                while True:
                    ctx.internal()

        with pytest.raises(RuntimeError, match="max_events"):
            simulate([Bomb()], max_events=100)

    def test_stop_request(self):
        class Stopper(Process):
            def on_start(self, ctx):
                ctx.internal()
                ctx.stop()

        res = simulate([Stopper(), PingPong()])
        assert res.trace.total_events == 1

    def test_dropped_messages_recorded(self):
        res = simulate(
            [PingPong(20), PingPong(20)],
            network=Network(drop_prob=0.8),
            seed=5,
        )
        assert res.messages_dropped >= 1
        assert res.messages_sent == res.messages_delivered + res.messages_dropped

    def test_send_to_unknown_node(self):
        def on_start(ctx):
            with pytest.raises(ValueError, match="unknown node"):
                ctx.send(9)

        simulate([FunctionProcess(on_start=on_start)])


class TestContext:
    def test_broadcast(self):
        class Root(Process):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ids = ctx.broadcast(label="hello")
                    assert len(ids) == 2

        res = simulate([Root(), Root(), Root()])
        assert res.messages_sent == 2
        assert res.messages_delivered == 2

    def test_context_properties(self):
        seen = {}

        def on_start(ctx):
            seen["nodes"] = ctx.num_nodes
            seen["now"] = ctx.now
            seen["rng"] = ctx.rng is not None

        simulate([FunctionProcess(on_start=on_start), FunctionProcess()])
        assert seen == {"nodes": 2, "now": 0.0, "rng": True}

    def test_fifo_delivery_order(self):
        order = []

        class Sender(Process):
            def on_start(self, ctx):
                if ctx.node == 0:
                    for k in range(5):
                        ctx.send(1, payload=k)

        class Receiver(Sender):
            def on_message(self, ctx, payload, label, src):
                order.append(payload)

        simulate([Sender(), Receiver()],
                 network=Network(UniformLatency(0.1, 5.0), fifo=True), seed=3)
        assert order == [0, 1, 2, 3, 4]
