"""Tests for the physical-time layer (spans, latency, jitter, checker)."""

import pytest

from repro.core.evaluator import SynchronizationAnalyzer
from repro.events.builder import TraceBuilder
from repro.events.poset import Execution
from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.selection import by_label
from repro.realtime.constraints import RealTimeChecker, TimedConstraint
from repro.realtime.timing import (
    UntimedEventError,
    interval_span,
    latency,
    periodic_jitter,
)
from repro.simulation.workloads import layered_trace


@pytest.fixture
def timed_exec():
    b = TraceBuilder(2)
    b.internal(0, label="x", time=1.0)
    m = b.send(0, label="x", time=2.0)
    b.recv(1, m, label="y", time=5.0)
    b.internal(1, label="y", time=7.0)
    return b.execute()


class TestIntervalSpan:
    def test_span(self, timed_exec):
        x = by_label(timed_exec, "x")
        span = interval_span(x)
        assert span.start == 1.0
        assert span.end == 2.0
        assert span.duration == 1.0

    def test_instantaneous(self, timed_exec):
        x = NonatomicEvent(timed_exec, [(0, 1)])
        assert interval_span(x).duration == 0.0

    def test_untimed_raises(self):
        b = TraceBuilder(1)
        b.internal(0)
        ex = b.execute()
        with pytest.raises(UntimedEventError):
            interval_span(NonatomicEvent(ex, [(0, 1)]))


class TestLatency:
    def test_default_anchor(self, timed_exec):
        x, y = by_label(timed_exec, "x"), by_label(timed_exec, "y")
        assert latency(x, y) == 3.0  # end(x)=2 -> start(y)=5

    def test_other_anchors(self, timed_exec):
        x, y = by_label(timed_exec, "x"), by_label(timed_exec, "y")
        assert latency(x, y, anchor=("start", "start")) == 4.0
        assert latency(x, y, anchor=("end", "end")) == 5.0
        assert latency(x, y, anchor=("start", "end")) == 6.0

    def test_negative_when_overlapping(self, timed_exec):
        x, y = by_label(timed_exec, "x"), by_label(timed_exec, "y")
        assert latency(y, x) < 0

    def test_bad_anchor(self, timed_exec):
        x, y = by_label(timed_exec, "x"), by_label(timed_exec, "y")
        with pytest.raises(ValueError, match="anchors"):
            latency(x, y, anchor=("middle", "start"))


class TestJitter:
    def test_periodic_family(self):
        ex = Execution(layered_trace(2, 1, periods=4))
        samples = [by_label(ex, f"sample{p}") for p in range(4)]
        stats = periodic_jitter(samples)
        assert len(stats.periods) == 3
        assert stats.min <= stats.mean <= stats.max
        assert stats.jitter == stats.max - stats.min

    def test_constant_period(self):
        b = TraceBuilder(1)
        for k in range(4):
            b.internal(0, label=f"tick{k}", time=10.0 * k)
        ex = b.execute()
        ticks = [by_label(ex, f"tick{k}") for k in range(4)]
        stats = periodic_jitter(ticks)
        assert stats.mean == 10.0
        assert stats.jitter == 0.0
        assert stats.stdev == 0.0

    def test_needs_two(self, timed_exec):
        with pytest.raises(ValueError):
            periodic_jitter([by_label(timed_exec, "x")])


class TestRealTimeChecker:
    @pytest.fixture
    def env(self, timed_exec):
        analyzer = SynchronizationAnalyzer(timed_exec)
        checker = RealTimeChecker(analyzer)
        bindings = {
            "x": by_label(timed_exec, "x"),
            "y": by_label(timed_exec, "y"),
        }
        return checker, bindings

    def test_both_halves_pass(self, env):
        checker, bindings = env
        report = checker.check(
            TimedConstraint(
                name="deadline", source="x", target="y",
                causal="R1(x, y)", max_latency=4.0,
            ),
            bindings,
        )
        assert report.passed
        assert report.measured_latency == 3.0

    def test_temporal_failure_isolated(self, env):
        checker, bindings = env
        report = checker.check(
            TimedConstraint(
                name="tight", source="x", target="y",
                causal="R1(x, y)", max_latency=1.0,
            ),
            bindings,
        )
        assert report.causal_ok and not report.temporal_ok
        assert not report.passed

    def test_causal_failure_isolated(self, env):
        checker, bindings = env
        report = checker.check(
            TimedConstraint(
                name="reverse", source="x", target="y",
                causal="R1(y, x)", max_latency=10.0,
            ),
            bindings,
        )
        assert not report.causal_ok and report.temporal_ok

    def test_min_latency(self, env):
        checker, bindings = env
        report = checker.check(
            TimedConstraint(
                name="separation", source="x", target="y",
                min_latency=2.0,
            ),
            bindings,
        )
        assert report.passed

    def test_purely_temporal(self, env):
        checker, bindings = env
        report = checker.check(
            TimedConstraint(name="t", source="x", target="y",
                            max_latency=0.5),
            bindings,
        )
        assert report.causal_ok  # vacuous
        assert not report.temporal_ok

    def test_purely_causal(self, env):
        checker, bindings = env
        report = checker.check(
            TimedConstraint(name="c", source="x", target="y",
                            causal="R4(x, y)"),
            bindings,
        )
        assert report.passed
        assert report.measured_latency is None

    def test_check_all(self, env):
        checker, bindings = env
        reports = checker.check_all(
            {
                "a": TimedConstraint(name="a", source="x", target="y",
                                     causal="R1(x, y)"),
                "b": TimedConstraint(name="b", source="x", target="y",
                                     max_latency=0.1),
            },
            bindings,
        )
        assert reports["a"].passed and not reports["b"].passed

    def test_report_str(self, env):
        checker, bindings = env
        report = checker.check(
            TimedConstraint(name="deadline", source="x", target="y",
                            causal="R1(x, y)", max_latency=4.0),
            bindings,
        )
        text = str(report)
        assert "PASS" in text and "deadline" in text
