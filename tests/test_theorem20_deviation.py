"""Reproduction finding: Theorem 20's min() claim fails for R2' and R3.

The paper places R2' and R3 in the ``min(|N_X|, |N_Y|)`` class, with
the restricted ``≪̸`` scan justified by Key Idea 2.  This reproduction
found concrete counterexamples: the scan is only sound on the side
whose cut surface is *anchored* at that side's own component events
(see ``repro.core.linear``'s module docstring for the anchoring rule).

* For **R3** (test ``≪̸(∩⇓Y, ∩⇑X)``), the intersection past cut
  ``∩⇓Y`` can be ``0`` at every node of ``N_Y`` (no common past there),
  while the only violation witness sits at a node of ``N_X`` — so the
  ``N_Y`` scan misses it.  This module pins the concrete regression
  trace where that happens.
* For **R2'** (test ``≪̸(∪⇓Y, ∪⇑X)``), dually, the union future cut
  ``∪⇑X`` is unanchored at ``N_X``.

The tests below (a) fix the concrete counterexample, (b) fuzz for the
existence of mismatches on the *wrong* side (asserting our implementation
does not rely on it), and (c) verify the sound sides always agree with
the naive semantics.
"""

import numpy as np
import pytest

from repro.core.cuts import cut_C1, cut_C2, cut_C3, cut_C4
from repro.core.linear import LinearEvaluator, not_ll_restricted
from repro.core.naive import NaiveEvaluator
from repro.core.relations import Relation
from repro.events.builder import TraceBuilder
from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.selection import random_disjoint_pair
from repro.simulation.workloads import random_execution


@pytest.fixture(scope="module")
def counterexample():
    """Minimal hand-built instance where R3's N_Y-restricted scan fails.

    Nodes 0, 1 host Y; node 2 hosts the single x.  A message from x
    reaches both y's, so ``x ≺ y`` for every y (R3 holds), but the two
    y's have *no common past* on nodes 0 and 1 (their mutual pasts are
    empty there), so ``T(∩⇓Y)`` is zero at every node of N_Y and the
    only ``≪̸`` witness lives at node 2 ∈ N_X.
    """
    b = TraceBuilder(3)
    m1 = b.send(2)          # (2,1) -> node 0
    m2 = b.send(2)          # (2,2) -> node 1
    y0 = b.recv(0, m1)      # (0,1)
    y1 = b.recv(1, m2)      # (1,1)
    ex = b.execute()
    x = NonatomicEvent(ex, [(2, 1)], name="X")
    y = NonatomicEvent(ex, [y0, y1], name="Y")
    return ex, x, y


class TestR3Counterexample:
    def test_r3_holds(self, counterexample):
        ex, x, y = counterexample
        assert NaiveEvaluator(ex).evaluate(Relation.R3, x, y)

    def test_intersection_past_vanishes_on_ny(self, counterexample):
        ex, x, y = counterexample
        v = cut_C1(y).vector
        assert all(v[i] == 0 for i in y.node_set)

    def test_ny_scan_misses_witness(self, counterexample):
        """The literal Theorem-19 scan over N_Y answers False — wrong."""
        ex, x, y = counterexample
        past, fut = cut_C1(y), cut_C3(x)
        assert not not_ll_restricted(past, fut, y.node_set)

    def test_nx_scan_finds_witness(self, counterexample):
        ex, x, y = counterexample
        past, fut = cut_C1(y), cut_C3(x)
        assert not_ll_restricted(past, fut, x.node_set)

    def test_linear_engine_answers_correctly(self, counterexample):
        ex, x, y = counterexample
        assert LinearEvaluator(ex).evaluate(Relation.R3, x, y)


class TestR2PrimeDual:
    @pytest.fixture(scope="class")
    def dual(self):
        """Mirror instance: X spans nodes 0, 1; the single y at node 2
        follows both x's, but ∪⇑X is unanchored at N_X."""
        b = TraceBuilder(3)
        x0 = b.internal(0)      # (0,1)
        m1 = b.send(0)          # (0,2) -> node 2
        x1 = b.internal(1)      # (1,1)
        m2 = b.send(1)          # (1,2) -> node 2
        b.recv(2, m1)           # (2,1)
        b.recv(2, m2)           # (2,2)
        y0 = b.internal(2)      # (2,3)
        ex = b.execute()
        x = NonatomicEvent(ex, [x0, x1], name="X")
        y = NonatomicEvent(ex, [y0], name="Y")
        return ex, x, y

    def test_r2p_holds(self, dual):
        ex, x, y = dual
        assert NaiveEvaluator(ex).evaluate(Relation.R2P, x, y)

    def test_nx_scan_misses_witness(self, dual):
        ex, x, y = dual
        past, fut = cut_C2(y), cut_C4(x)
        assert not not_ll_restricted(past, fut, x.node_set)

    def test_ny_scan_finds_witness(self, dual):
        ex, x, y = dual
        past, fut = cut_C2(y), cut_C4(x)
        assert not_ll_restricted(past, fut, y.node_set)

    def test_linear_engine_answers_correctly(self, dual):
        ex, x, y = dual
        assert LinearEvaluator(ex).evaluate(Relation.R2P, x, y)


class TestSoundSidesAlwaysAgree:
    """Fuzz confirmation of the anchoring rule across many executions."""

    def test_fuzz_sound_scans(self):
        rng = np.random.default_rng(2024)
        for _rep in range(40):
            ex = random_execution(
                int(rng.integers(2, 6)),
                events_per_node=int(rng.integers(3, 12)),
                msg_prob=0.4,
                seed=int(rng.integers(0, 10_000)),
            )
            naive = NaiveEvaluator(ex)
            for _ in range(10):
                try:
                    x, y = random_disjoint_pair(ex, rng, events_per_node=3)
                except ValueError:
                    continue  # X consumed every event of a tiny execution
                # R3 via N_X, R2' via N_Y, R4 via either
                assert not_ll_restricted(
                    cut_C1(y), cut_C3(x), x.node_set
                ) == naive.evaluate(Relation.R3, x, y)
                assert not_ll_restricted(
                    cut_C2(y), cut_C4(x), y.node_set
                ) == naive.evaluate(Relation.R2P, x, y)
                r4 = naive.evaluate(Relation.R4, x, y)
                assert not_ll_restricted(cut_C2(y), cut_C3(x), x.node_set) == r4
                assert not_ll_restricted(cut_C2(y), cut_C3(x), y.node_set) == r4
