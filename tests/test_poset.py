"""Tests for the Execution poset: precedence, dummies, past/future sets."""

import pytest
from hypothesis import given, settings

from repro.events.builder import TraceBuilder
from repro.events.poset import Ordering

from .strategies import executions


class TestPrecedence:
    def test_local_order(self, chain_exec):
        assert chain_exec.precedes((0, 1), (0, 2))
        assert chain_exec.precedes((0, 1), (0, 3))
        assert not chain_exec.precedes((0, 2), (0, 1))

    def test_irreflexive(self, chain_exec):
        assert not chain_exec.precedes((0, 2), (0, 2))
        assert chain_exec.leq((0, 2), (0, 2))

    def test_cross_node_via_message(self, message_exec):
        assert message_exec.precedes((0, 2), (1, 2))
        assert message_exec.precedes((0, 1), (1, 3))
        assert not message_exec.precedes((1, 2), (0, 2))

    def test_concurrency(self, message_exec):
        assert message_exec.concurrent((0, 3), (1, 1))
        assert message_exec.concurrent((0, 1), (1, 1))
        assert not message_exec.concurrent((0, 1), (0, 2))

    def test_compare(self, message_exec):
        assert message_exec.compare((0, 1), (1, 2)) == Ordering.BEFORE
        assert message_exec.compare((1, 2), (0, 1)) == Ordering.AFTER
        assert message_exec.compare((0, 1), (0, 1)) == Ordering.EQUAL
        assert message_exec.compare((0, 3), (1, 3)) == Ordering.CONCURRENT

    @settings(max_examples=40, deadline=None)
    @given(ex=executions(max_nodes=4, max_ops=25))
    def test_partial_order_axioms(self, ex):
        ids = sorted(ex.iter_ids())
        for a in ids:
            assert ex.leq(a, a)
            for b in ids:
                if ex.leq(a, b) and ex.leq(b, a):
                    assert a == b  # antisymmetry
                for c in ids:
                    if ex.leq(a, b) and ex.leq(b, c):
                        assert ex.leq(a, c)  # transitivity


class TestDummyEvents:
    def test_bottom_precedes_real(self, message_exec):
        assert message_exec.precedes((0, 0), (0, 1))
        assert message_exec.precedes((0, 0), (1, 3))
        assert message_exec.precedes((1, 0), (0, 1))

    def test_real_precedes_top(self, message_exec):
        top0 = (0, message_exec.top_index(0))
        assert message_exec.precedes((1, 1), top0)
        assert message_exec.precedes((0, 3), top0)

    def test_bottom_precedes_top(self, message_exec):
        assert message_exec.precedes((0, 0), (1, message_exec.top_index(1)))

    def test_bottoms_incomparable(self, message_exec):
        assert not message_exec.precedes((0, 0), (1, 0))
        assert not message_exec.precedes((1, 0), (0, 0))
        assert message_exec.leq((0, 0), (0, 0))

    def test_tops_incomparable(self, message_exec):
        t0 = (0, message_exec.top_index(0))
        t1 = (1, message_exec.top_index(1))
        assert not message_exec.precedes(t0, t1)
        assert not message_exec.precedes(t1, t0)

    def test_nothing_precedes_bottom(self, message_exec):
        assert not message_exec.precedes((0, 1), (0, 0))

    def test_top_precedes_nothing(self, message_exec):
        t0 = (0, message_exec.top_index(0))
        assert not message_exec.precedes(t0, (0, 1))


class TestPastFutureSets:
    def test_past_of_receive(self, message_exec):
        assert message_exec.causal_past_ids((1, 2)) == {
            (0, 1), (0, 2), (1, 1), (1, 2),
        }

    def test_future_of_send(self, message_exec):
        assert message_exec.causal_future_ids((0, 2)) == {
            (0, 2), (0, 3), (1, 2), (1, 3),
        }

    @settings(max_examples=30, deadline=None)
    @given(ex=executions(max_nodes=4, max_ops=20))
    def test_past_future_duality(self, ex):
        ids = sorted(ex.iter_ids())
        for e in ids:
            past = ex.causal_past_ids(e)
            for other in ids:
                assert (other in past) == ex.leq(other, e)
            future = ex.causal_future_ids(e)
            for other in ids:
                assert (other in future) == ex.leq(e, other)


class TestStructure:
    def test_check_id(self, message_exec):
        message_exec.check_id((0, 1))
        message_exec.check_id((0, 0), allow_dummy=True)
        message_exec.check_id((0, 4), allow_dummy=True)
        with pytest.raises(KeyError):
            message_exec.check_id((0, 0))
        with pytest.raises(KeyError):
            message_exec.check_id((0, 4))
        with pytest.raises(KeyError):
            message_exec.check_id((9, 1))

    def test_is_real_is_bottom_is_top(self, message_exec):
        assert message_exec.is_real((0, 1))
        assert not message_exec.is_real((0, 0))
        assert message_exec.is_bottom((0, 0))
        assert message_exec.is_top((0, 4))
        assert not message_exec.is_top((0, 3))

    def test_lengths_and_tops(self, message_exec):
        assert message_exec.lengths == (3, 3)
        assert message_exec.top_index(1) == 4

    def test_networkx_roundtrip(self, diamond_exec):
        g = diamond_exec.to_networkx()
        assert g.number_of_nodes() == 9
        # local edges + 4 message edges
        assert g.has_edge((0, 1), (0, 2))
        assert g.has_edge((1, 2), (3, 1))

    def test_empty_node_has_no_reals(self):
        b = TraceBuilder(2)
        b.internal(0)
        ex = b.execute()
        assert ex.num_real(1) == 0
        assert ex.top_index(1) == 1
        assert ex.is_top((1, 1))
