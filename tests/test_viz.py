"""Tests for the ASCII space-time renderer."""

import pytest

from repro.core.cuts import Cut
from repro.nonatomic.event import NonatomicEvent
from repro.simulation.scenarios import figure2
from repro.viz.spacetime import render, render_cut_table


class TestRender:
    def test_basic_rows(self, message_exec):
        out = render(message_exec)
        lines = out.splitlines()
        assert any(line.startswith("P0") for line in lines)
        assert any(line.startswith("P1") for line in lines)

    def test_event_kind_glyphs(self, message_exec):
        out = render(message_exec, show_messages=False)
        p0 = next(l for l in out.splitlines() if l.startswith("P0"))
        assert "s" in p0  # the send event
        p1 = next(l for l in out.splitlines() if l.startswith("P1"))
        assert "r" in p1

    def test_interval_markers(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1)], name="alpha")
        out = render(message_exec, intervals={"alpha": x}, show_messages=False)
        p0 = next(l for l in out.splitlines() if l.startswith("P0"))
        assert "A" in p0

    def test_cut_annotation_rows(self, message_exec):
        cut = Cut(message_exec, [2, 1])
        out = render(message_exec, cuts={"C": cut}, show_messages=False)
        c_rows = [l for l in out.splitlines() if l.startswith("C")]
        assert len(c_rows) == 2  # one per node
        assert all("|" in row for row in c_rows)

    def test_messages_section(self, message_exec):
        out = render(message_exec, show_messages=True)
        assert "messages:" in out
        assert "(0, 2) -> (1, 2)" in out

    def test_cell_width_validation(self, message_exec):
        with pytest.raises(ValueError):
            render(message_exec, cell_width=1)

    def test_figure2_renders_with_all_cuts(self):
        fig = figure2()
        q = fig.cuts
        out = render(
            fig.execution,
            intervals={"X": fig.x},
            cuts={"C1": q.c1, "C2": q.c2, "C3": q.c3, "C4": q.c4},
        )
        # 4 node rows + 4 cut rows per node
        assert sum(1 for l in out.splitlines() if l.startswith("C1")) == 4
        assert out.count("X") == 8  # the 8 component events

    def test_deterministic(self, message_exec):
        assert render(message_exec) == render(message_exec)


class TestRenderCutTable:
    def test_empty(self):
        assert render_cut_table({}) == "(no cuts)"

    def test_rows(self, message_exec):
        table = render_cut_table(
            {"C1": Cut(message_exec, [1, 0]), "C2": Cut(message_exec, [2, 3])}
        )
        lines = table.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("C1")
        assert "[" in lines[0] and "]" in lines[0]
