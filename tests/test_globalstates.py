"""Tests for the consistent-global-state lattice and predicate detection."""

import itertools

import pytest
from hypothesis import given, settings

from repro.globalstates.detection import (
    definitely,
    possibly,
    possibly_conjunctive,
)
from repro.globalstates.lattice import GlobalStateLattice

from .strategies import executions


def brute_force_states(ex):
    """All consistent states by filtering the full product (oracle)."""
    lattice = GlobalStateLattice(ex)
    ranges = [range(k + 1) for k in ex.lengths]
    return {
        state
        for state in itertools.product(*ranges)
        if lattice.is_consistent(state)
    }


class TestLattice:
    def test_bottom_top(self, message_exec):
        lat = GlobalStateLattice(message_exec)
        assert lat.bottom == (0, 0)
        assert lat.top == (3, 3)
        assert lat.is_consistent(lat.bottom)
        assert lat.is_consistent(lat.top)

    def test_orphan_receive_inconsistent(self, message_exec):
        lat = GlobalStateLattice(message_exec)
        # (1,2) receives from (0,2): state (1, 2) would orphan it
        assert not lat.is_consistent((1, 2))
        assert lat.is_consistent((2, 2))

    def test_out_of_range_inconsistent(self, message_exec):
        lat = GlobalStateLattice(message_exec)
        assert not lat.is_consistent((4, 0))
        assert not lat.is_consistent((-1, 0))

    def test_enabled_advances(self, message_exec):
        lat = GlobalStateLattice(message_exec)
        # from (1, 1): node 0 can advance; node 1's next is the receive
        # of (0,2) which has not been sent yet
        assert lat.enabled_advances((1, 1)) == [0]
        assert set(lat.enabled_advances((2, 1))) == {0, 1}

    def test_successors(self, message_exec):
        lat = GlobalStateLattice(message_exec)
        succs = lat.successors((2, 1))
        assert set(succs) == {(3, 1), (2, 2)}

    @settings(max_examples=40, deadline=None)
    @given(ex=executions(max_nodes=3, max_ops=12))
    def test_enumeration_matches_brute_force(self, ex):
        lat = GlobalStateLattice(ex)
        assert set(lat.iter_states()) == brute_force_states(ex)

    @settings(max_examples=40, deadline=None)
    @given(ex=executions(max_nodes=3, max_ops=12))
    def test_meet_join_closed(self, ex):
        lat = GlobalStateLattice(ex)
        states = sorted(lat.iter_states())
        sample = states[:: max(1, len(states) // 8)]
        for a in sample:
            for b in sample:
                assert lat.is_consistent(lat.meet(a, b)), (a, b)
                assert lat.is_consistent(lat.join(a, b)), (a, b)

    def test_count_independent_chains(self, concurrent_exec):
        # two independent 2-event chains: (2+1)^2 states
        assert GlobalStateLattice(concurrent_exec).count() == 9

    def test_count_totally_ordered(self, chain_exec):
        assert GlobalStateLattice(chain_exec).count() == 4

    def test_limit_guard(self, medium_exec):
        lat = GlobalStateLattice(medium_exec, limit=50)
        with pytest.raises(RuntimeError, match="limit"):
            lat.count()

    def test_to_cut(self, message_exec):
        lat = GlobalStateLattice(message_exec)
        cut = lat.to_cut((2, 1))
        assert cut.is_downward_closed()


class TestPossiblyDefinitely:
    def test_possibly_trivial(self, message_exec):
        assert possibly(message_exec, lambda s: s == (0, 0)) == (0, 0)

    def test_possibly_finds_least_level(self, message_exec):
        hit = possibly(message_exec, lambda s: s[0] >= 1 and s[1] >= 1)
        assert hit == (1, 1)

    def test_possibly_none(self, message_exec):
        # node 1 at event 2 requires node 0 past 2: (0, 2) impossible
        assert possibly(message_exec, lambda s: s == (0, 2)) is None

    def test_definitely_unavoidable_state(self, chain_exec):
        # every observation of a single chain passes through (2,)
        assert definitely(chain_exec, lambda s: s == (2,))

    def test_definitely_avoidable(self, concurrent_exec):
        # (1, 0) can be bypassed by advancing node 1 first
        assert not definitely(concurrent_exec, lambda s: s == (1, 0))

    def test_definitely_synchronisation_point(self, message_exec):
        # after the receive, node 1's count >= 2 forces node 0's >= 2
        assert definitely(
            message_exec, lambda s: s[1] >= 2 and s[0] >= 2 or s[1] < 2
        )

    @settings(max_examples=30, deadline=None)
    @given(ex=executions(max_nodes=3, max_ops=10))
    def test_definitely_implies_possibly(self, ex):
        # pick a simple predicate family: node 0 executed >= t events
        for t in range(ex.num_real(0) + 1):
            pred = lambda s, t=t: s[0] >= t
            if definitely(ex, pred):
                assert possibly(ex, pred) is not None


class TestConjunctiveFastPath:
    @staticmethod
    def _conj_predicate(locals_):
        def phi(state):
            return all(p(n, state[n]) for n, p in locals_.items())

        return phi

    def test_simple_rendezvous(self, message_exec):
        locals_ = {
            0: lambda n, i: i >= 2,
            1: lambda n, i: i >= 2,
        }
        least = possibly_conjunctive(message_exec, locals_)
        assert least == (2, 2)

    def test_unsatisfiable(self, message_exec):
        locals_ = {0: lambda n, i: False}
        assert possibly_conjunctive(message_exec, locals_) is None

    def test_empty_constraint(self, message_exec):
        assert possibly_conjunctive(message_exec, {}) == (0, 0)

    def test_unconstrained_nodes_minimised(self, diamond_exec):
        # require node 3 past its first receive; nodes 0-2 free
        least = possibly_conjunctive(diamond_exec, {3: lambda n, i: i >= 1})
        assert least is not None
        assert least[3] == 1
        # the receive (3,1) needs (1,2)'s past: node0 >= 1, node1 >= 2
        assert least[1] == 2 and least[0] == 1 and least[2] == 0

    @settings(max_examples=50, deadline=None)
    @given(ex=executions(max_nodes=3, max_ops=12))
    def test_matches_lattice_sweep(self, ex):
        """GW fast path == Cooper–Marzullo sweep on threshold locals."""
        locals_ = {
            n: (lambda n_, i, t=max(1, ex.num_real(n) // 2): i >= t)
            for n in range(ex.num_nodes)
            if ex.num_real(n) > 0
        }
        fast = possibly_conjunctive(ex, locals_)
        slow = possibly(ex, self._conj_predicate(locals_))
        assert fast == slow
