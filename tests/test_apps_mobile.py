"""Tests for the mobile-computing handoff application."""

import pytest

from repro.apps.mobile import roaming_scenario
from repro.core.evaluator import SynchronizationAnalyzer


class TestNominalRoaming:
    def test_safe(self):
        assert roaming_scenario().all_safe()

    def test_interval_structure(self):
        sc = roaming_scenario(num_stations=4)
        assert len(sc.handoffs) == 3
        assert len(sc.reroutes) == 3
        assert len(sc.epochs) == 4
        # each handoff spans old station + new station
        for k, h in enumerate(sc.handoffs):
            assert set(h.node_set) == {k + 1, k + 2}
        # reroutes live on the home agent
        for r in sc.reroutes:
            assert r.node_set == (0,)

    def test_conditions_enumerated(self):
        sc = roaming_scenario(num_stations=3)
        conds = sc.conditions()
        # 1 serialisation + 2 reroute-gates + 3 setup-gates
        assert len(conds) == 1 + 2 + 3

    def test_more_data_still_safe(self):
        assert roaming_scenario(num_stations=4, data_per_epoch=4).all_safe()

    def test_engines_agree(self):
        sc = roaming_scenario()
        assert sc.all_safe("naive") == sc.all_safe("linear") is True

    def test_validation(self):
        with pytest.raises(ValueError):
            roaming_scenario(num_stations=1)


class TestPrematureDataFault:
    def test_detected(self):
        sc = roaming_scenario(premature_data=True)
        assert not sc.all_safe()

    def test_only_last_reroute_gate_fails(self):
        sc = roaming_scenario(num_stations=3, premature_data=True)
        reports = sc.check()
        failing = [n for n, r in reports.items() if not r.passed]
        assert failing == ["epoch2-after-reroute1"]

    def test_serialisation_unaffected(self):
        sc = roaming_scenario(num_stations=4, premature_data=True)
        reports = sc.check()
        for name, rep in reports.items():
            if "serialised" in name:
                assert rep.passed, name

    def test_setup_continuity_unaffected(self):
        sc = roaming_scenario(premature_data=True)
        reports = sc.check()
        for name, rep in reports.items():
            if "after-setup" in name:
                assert rep.passed, name


class TestStrongestRelations:
    def test_consecutive_handoffs_fully_ordered(self):
        sc = roaming_scenario(num_stations=3)
        an = SynchronizationAnalyzer(sc.execution)
        top = an.strongest(sc.handoffs[0], sc.handoffs[1])
        assert any(str(s) == "R1(U,L)" for s in top)
