"""Tests for complexity accounting and scaling fits."""

import pytest

from repro.analysis.complexity import (
    fit_power_law,
    measure_comparisons,
    predicted_comparisons,
    worst_case_comparisons,
)
from repro.core.linear import LinearEvaluator
from repro.core.polynomial import PolynomialEvaluator
from repro.core.relations import BASE_RELATIONS, Relation
from repro.nonatomic.selection import random_disjoint_pair
from repro.simulation.workloads import random_execution


class TestPredictedComparisons:
    def test_linear_table(self):
        assert predicted_comparisons(Relation.R1, 3, 5) == 3
        assert predicted_comparisons(Relation.R2, 3, 5) == 3
        assert predicted_comparisons(Relation.R2P, 3, 5) == 5
        assert predicted_comparisons(Relation.R3, 3, 5) == 3
        assert predicted_comparisons(Relation.R3P, 3, 5) == 5
        assert predicted_comparisons(Relation.R4, 3, 5) == 3

    def test_polynomial_table(self):
        for rel in BASE_RELATIONS:
            assert predicted_comparisons(rel, 3, 5, "polynomial") == 15

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            predicted_comparisons(Relation.R1, 2, 2, "naive")

    def test_worst_case_table(self):
        table = worst_case_comparisons(4, 2)
        assert table[Relation.R1] == 2
        assert table[Relation.R3] == 4
        assert len(table) == 8


class TestMeasureComparisons:
    def test_counts_collected(self, rng):
        ex = random_execution(5, events_per_node=10, msg_prob=0.3, seed=0)
        pairs = [random_disjoint_pair(ex, rng) for _ in range(5)]
        counts = measure_comparisons(
            lambda e, c: LinearEvaluator(e, counter=c), ex, pairs
        )
        assert set(counts) == set(BASE_RELATIONS)
        assert all(len(v) == 5 for v in counts.values())
        assert all(c >= 1 for v in counts.values() for c in v)

    def test_linear_within_predicted(self, rng):
        ex = random_execution(6, events_per_node=8, msg_prob=0.3, seed=1)
        pairs = [random_disjoint_pair(ex, rng) for _ in range(8)]
        counts = measure_comparisons(
            lambda e, c: LinearEvaluator(e, counter=c), ex, pairs
        )
        for rel, values in counts.items():
            for (x, y), v in zip(pairs, values, strict=True):
                assert v <= predicted_comparisons(rel, x.width, y.width)

    def test_polynomial_within_budget(self, rng):
        ex = random_execution(5, events_per_node=8, msg_prob=0.3, seed=2)
        pairs = [random_disjoint_pair(ex, rng) for _ in range(5)]
        counts = measure_comparisons(
            lambda e, c: PolynomialEvaluator(e, counter=c), ex, pairs
        )
        for _rel, values in counts.items():
            for (x, y), v in zip(pairs, values, strict=True):
                assert v <= x.width * y.width


class TestFitPowerLaw:
    def test_linear_data(self):
        ns = [2, 4, 8, 16, 32]
        b, a = fit_power_law(ns, [3 * n for n in ns])
        assert b == pytest.approx(1.0, abs=0.01)
        assert a == pytest.approx(3.0, rel=0.05)

    def test_quadratic_data(self):
        ns = [2, 4, 8, 16, 32]
        b, _a = fit_power_law(ns, [n * n for n in ns])
        assert b == pytest.approx(2.0, abs=0.01)

    def test_constant_data(self):
        b, _ = fit_power_law([1, 2, 4, 8], [5, 5, 5, 5])
        assert b == pytest.approx(0.0, abs=0.01)

    def test_zero_counts_clamped(self):
        b, _ = fit_power_law([1, 2, 4], [0, 0, 0])
        assert b == pytest.approx(0.0, abs=0.01)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
