"""Tests for the scatter-gather and primary-backup workloads."""

import pytest

from repro.core.evaluator import SynchronizationAnalyzer
from repro.events.poset import Execution
from repro.nonatomic.selection import by_label
from repro.simulation.workloads import (
    primary_backup_trace,
    scatter_gather_trace,
)


class TestScatterGather:
    def test_shape(self):
        tr = scatter_gather_trace(3, jobs=2, work_per_task=2)
        ex = Execution(tr)
        assert ex.num_nodes == 4
        maps = by_label(ex, "map0")
        assert maps.width == 3  # all workers mapped

    def test_job_closure_after_maps(self):
        ex = Execution(scatter_gather_trace(3, jobs=2))
        an = SynchronizationAnalyzer(ex)
        assert an.holds("R1", by_label(ex, "map0"), by_label(ex, "done0"))

    def test_jobs_serialised(self):
        ex = Execution(scatter_gather_trace(3, jobs=3))
        an = SynchronizationAnalyzer(ex)
        # job 0's maps all precede job 1's maps (gather + next scatter)
        assert an.holds(
            "R1(U,L)", by_label(ex, "map0"), by_label(ex, "map1")
        )

    def test_straggler_changes_size_not_shape(self):
        base = Execution(scatter_gather_trace(3, jobs=1, work_per_task=2))
        slow = Execution(
            scatter_gather_trace(3, jobs=1, work_per_task=2, straggler=1)
        )
        assert slow.trace.total_events > base.trace.total_events
        an = SynchronizationAnalyzer(slow)
        assert an.holds("R1", by_label(slow, "map0"), by_label(slow, "done0"))

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_gather_trace(0)


class TestPrimaryBackup:
    def test_sync_updates_fully_ordered(self):
        ex = Execution(primary_backup_trace(2, updates=3, sync=True))
        an = SynchronizationAnalyzer(ex)
        r0 = by_label(ex, "repl0")
        r1 = by_label(ex, "repl1")
        assert an.holds("R1(U,L)", r0, r1)

    def test_async_loses_r1_keeps_r2(self):
        ex = Execution(primary_backup_trace(2, updates=3, sync=False))
        an = SynchronizationAnalyzer(ex)
        r0 = by_label(ex, "repl0")
        r1 = by_label(ex, "repl1")
        assert not an.holds("R1(U,L)", r0, r1)
        assert an.holds("R2", r0, r1)  # per-backup FIFO order survives

    def test_apply_before_replication(self):
        ex = Execution(primary_backup_trace(3, updates=2))
        an = SynchronizationAnalyzer(ex)
        assert an.holds("R1", by_label(ex, "apply0"), by_label(ex, "repl0"))

    def test_replica_span(self):
        ex = Execution(primary_backup_trace(3, updates=1))
        repl = by_label(ex, "repl0")
        # send event on the primary + receives on every backup
        assert repl.width == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            primary_backup_trace(0)
