"""Experiment E-20: per-relation comparison counts.

Asserts the linear engine's measured integer-comparison counts against
the amended Theorem-20 table (see ``repro.core.linear``): never more
than the bound, and exactly the bound whenever the evaluation cannot
short-circuit (universal relations that hold; existential relations
that fail).  Also confirms the polynomial engine's ``|N_X| · |N_Y|``
budget, completing the abstract's comparison.
"""

from hypothesis import given, settings

from repro.analysis.complexity import predicted_comparisons
from repro.core.counting import ComparisonCounter
from repro.core.linear import LinearEvaluator
from repro.core.polynomial import PolynomialEvaluator
from repro.core.relations import BASE_RELATIONS, FAMILY32, Relation
from repro.core.cuts import cuts_of

from .strategies import execution_with_pair

_UNIVERSAL = {Relation.R1, Relation.R1P, Relation.R2, Relation.R3P}


def _measured(engine_cls, ex, x, y, relation, **kwargs):
    counter = ComparisonCounter()
    engine = engine_cls(ex, counter=counter, **kwargs)
    cuts_of(x), cuts_of(y)  # pre-warm so only query comparisons count
    result = engine.evaluate(relation, x, y)
    return result, counter.total


class TestLinearCounts:
    @settings(max_examples=100, deadline=None)
    @given(pair=execution_with_pair())
    def test_never_exceeds_bound(self, pair):
        ex, x, y = pair
        for rel in BASE_RELATIONS:
            _result, count = _measured(LinearEvaluator, ex, x, y, rel)
            bound = predicted_comparisons(rel, x.width, y.width)
            assert count <= bound, (rel, count, bound)

    @settings(max_examples=100, deadline=None)
    @given(pair=execution_with_pair())
    def test_exact_bound_without_short_circuit(self, pair):
        ex, x, y = pair
        for rel in BASE_RELATIONS:
            result, count = _measured(LinearEvaluator, ex, x, y, rel)
            bound = predicted_comparisons(rel, x.width, y.width)
            no_short_circuit = (rel in _UNIVERSAL) == result
            if no_short_circuit:
                assert count == bound, (rel, count, bound)

    @settings(max_examples=50, deadline=None)
    @given(pair=execution_with_pair())
    def test_family32_bounds(self, pair):
        """32-family queries obey the same bounds with proxy node sets
        (equal to N_X / N_Y under Definition 2)."""
        ex, x, y = pair
        counter = ComparisonCounter()
        engine = LinearEvaluator(ex, counter=counter)
        for spec in FAMILY32:
            # warm proxy cuts so only the query comparisons are counted
            from repro.nonatomic.proxies import proxy_of

            cuts_of(proxy_of(x, spec.proxy_x))
            cuts_of(proxy_of(y, spec.proxy_y))
            before = counter.total
            engine.evaluate_spec(spec, x, y)
            used = counter.total - before
            bound = predicted_comparisons(spec.relation, x.width, y.width)
            assert used <= bound, (spec, used, bound)


class TestPolynomialCounts:
    @settings(max_examples=60, deadline=None)
    @given(pair=execution_with_pair())
    def test_nx_times_ny_budget(self, pair):
        ex, x, y = pair
        for rel in BASE_RELATIONS:
            _result, count = _measured(PolynomialEvaluator, ex, x, y, rel)
            assert count <= x.width * y.width, rel

    @settings(max_examples=60, deadline=None)
    @given(pair=execution_with_pair())
    def test_exact_quadratic_for_failed_r1(self, pair):
        """R1 without short-circuit (i.e. when it holds) costs exactly
        |N_X| · |N_Y| checks in the polynomial engine."""
        ex, x, y = pair
        result, count = _measured(PolynomialEvaluator, ex, x, y, Relation.R1)
        if result:
            assert count == x.width * y.width


class TestLinearBeatsPolynomial:
    @settings(max_examples=60, deadline=None)
    @given(pair=execution_with_pair())
    def test_headline_inequality(self, pair):
        """The abstract's claim: linear bounds never exceed the
        polynomial |N_X| · |N_Y| budget."""
        _ex, x, y = pair
        for rel in BASE_RELATIONS:
            lin = predicted_comparisons(rel, x.width, y.width)
            poly = predicted_comparisons(rel, x.width, y.width, "polynomial")
            assert lin <= poly
