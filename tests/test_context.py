"""Shared analysis context: lazy clocks, memoized cuts, batch planner.

Property tests for the amortization layer:

* the lazy reverse-clock substrate returns exactly the eager pass'
  timestamps, and is only built when a future-side consumer asks;
* :class:`~repro.core.context.CutCache` results are identical to
  uncached folds, and repeated queries over one interval pair pay the
  fold exactly once;
* :meth:`Execution.extend` + cache invalidation never serves stale
  vectors — post-growth cuts equal a from-scratch analysis;
* :meth:`SynchronizationAnalyzer.batch_holds` agrees with the scalar
  :meth:`holds` path on every query;
* :class:`~repro.monitor.online.OnlineMonitor` ingestion plus
  finalisation performs zero offline clock passes.
"""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.context import AnalysisContext, CutCache
from repro.core.cuts import cut_C1, cut_C2, cut_C3, cut_C4
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.relations import Relation, parse_spec
from repro.events.builder import TraceBuilder
from repro.events.clocks import (
    clock_pass_counts,
    compute_forward_clocks,
    compute_reverse_clocks,
    reset_clock_pass_counts,
)
from repro.events.poset import Execution
from repro.events.trace import Trace, TraceError
from repro.monitor.online import OnlineMonitor
from repro.nonatomic.event import NonatomicEvent

from .strategies import executions, execution_with_pair, traces

_CUT_FNS = {"C1": cut_C1, "C2": cut_C2, "C3": cut_C3, "C4": cut_C4}


def _clone(x: NonatomicEvent) -> NonatomicEvent:
    """A fresh interval object (empty per-instance cache, same identity)."""
    return NonatomicEvent(x.execution, x.ids, name=x.name)


def _replay(num_nodes: int, ops: list[tuple[int, int, int]]) -> Trace:
    """Deterministically replay ops into a trace (one internal per node
    first, so every prefix of ``ops`` yields a valid trace that the
    full replay extends append-only)."""
    b = TraceBuilder(num_nodes)
    in_flight: list[list] = [[] for _ in range(num_nodes)]
    t = 0.0
    for node in range(num_nodes):
        t += 1.0
        b.internal(node, time=t)
    for node, action, aux in ops:
        node %= num_nodes
        t = float(num_nodes + len(in_flight)) + t  # monotone, deterministic
        if action == 1 and num_nodes > 1:
            dst = aux % num_nodes
            if dst == node:
                dst = (dst + 1) % num_nodes
            in_flight[dst].append(b.send(node, time=t))
        elif action == 2 and in_flight[node]:
            b.recv(node, in_flight[node].pop(0), time=t)
        else:
            b.internal(node, time=t)
    return b.build()


_ops = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 2), st.integers(0, 4)),
    min_size=0,
    max_size=30,
)


class TestLazyReverseClocks:
    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_lazy_reverse_matches_eager(self, trace):
        ex = Execution(trace)
        assert not ex.reverse_ready
        # forward-only consumers never build the reverse structure
        for eid in ex.iter_ids():
            ex.clock(eid)
        assert not ex.reverse_ready
        expected = compute_reverse_clocks(trace)
        for node in range(ex.num_nodes):
            assert np.array_equal(ex.rclock_matrix(node), expected[node])
        assert ex.reverse_ready

    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_construction_runs_no_reverse_pass(self, trace):
        reset_clock_pass_counts()
        ex = Execution(trace)
        for eid in ex.iter_ids():
            ex.clock(eid)
        counts = clock_pass_counts()
        assert counts["forward"] == 1
        assert counts["reverse"] == 0
        ex.rclock_matrix(0)
        assert clock_pass_counts()["reverse"] == 1


class TestCutCache:
    @given(execution_with_pair())
    @settings(max_examples=50, deadline=None)
    def test_cached_cuts_match_uncached(self, exy):
        ex, x, y = exy
        ctx = AnalysisContext.of(ex)
        for iv in (x, y):
            for which, fn in _CUT_FNS.items():
                cached = ctx.cut(iv, which)
                direct = fn(_clone(iv))
                assert np.array_equal(cached.vector, direct.vector)

    @given(execution_with_pair())
    @settings(max_examples=30, deadline=None)
    def test_repeat_queries_fold_once(self, exy):
        ex, x, y = exy
        ctx = AnalysisContext.of(ex)
        an = SynchronizationAnalyzer(ctx, engine="linear", check_disjoint=False)
        an.all_relations(x, y)
        an.holds(Relation.R2, x, y)
        misses_after_first = ctx.cache_misses
        assert misses_after_first > 0
        # repeat with *fresh* interval objects of the same identity:
        # every cut request must now be a hit
        an.all_relations(_clone(x), _clone(y))
        an.holds(Relation.R2, _clone(x), _clone(y))
        assert ctx.cache_misses == misses_after_first
        assert ctx.cache_hits > 0

    def test_interval_of_foreign_execution_rejected(self):
        b = TraceBuilder(2)
        b.internal(0)
        b.internal(1)
        ex = b.execute()
        b2 = TraceBuilder(2)
        f0 = b2.internal(0)
        b2.internal(1)
        other = b2.execute()
        cache = CutCache(ex)
        with pytest.raises(ValueError):
            cache.cut(NonatomicEvent(other, [f0]), "C1")


class TestExtendInvalidation:
    @given(st.integers(2, 4), _ops, _ops)
    @settings(max_examples=50, deadline=None)
    def test_no_stale_vectors_after_extend(self, num_nodes, head, tail):
        prefix = _replay(num_nodes, head)
        full = _replay(num_nodes, head + tail)
        ex = Execution(prefix)
        ctx = AnalysisContext.of(ex)
        # pick a real interval in the prefix and pay its folds
        ids = sorted(ex.iter_ids())[: max(1, num_nodes)]
        x = ctx.interval(ids, name="X")
        before = ctx.cuts(x)
        version_before = ex.version
        ctx.extend(full)
        assert ex.version == version_before + 1
        assert not ex.reverse_ready
        # cached vectors must match a from-scratch analysis of the
        # extended trace (future cuts C3/C4 change when the future grows)
        fresh = Execution(full)
        fresh_x = NonatomicEvent(fresh, ids, name="X")
        after = ctx.cuts(ctx.interval(ids, name="X"))
        for name, fn in _CUT_FNS.items():
            expect = fn(fresh_x)
            got = getattr(after, name.lower())
            assert np.array_equal(got.vector, expect.vector), name
        del before  # pre-growth quadruple: only referenced, never served

    @given(st.integers(2, 4), _ops, _ops)
    @settings(max_examples=50, deadline=None)
    def test_incremental_forward_clocks_match_scratch(
        self, num_nodes, head, tail
    ):
        prefix = _replay(num_nodes, head)
        full = _replay(num_nodes, head + tail)
        ex = Execution(prefix).extend(full)
        expected = compute_forward_clocks(full)
        for node in range(num_nodes):
            assert np.array_equal(ex.clock_matrix(node), expected[node])

    def test_non_prefix_extension_rejected(self):
        b = TraceBuilder(2)
        b.internal(0, label="a")
        b.internal(1)
        ex = Execution(b.build())
        b2 = TraceBuilder(2)
        b2.internal(0, label="different")
        b2.internal(1)
        b2.internal(0)
        with pytest.raises(TraceError):
            ex.extend(b2.build())


class TestBatchPlanner:
    @given(executions(max_nodes=4, max_ops=30))
    @settings(max_examples=40, deadline=None)
    def test_batch_holds_matches_scalar(self, ex):
        ids = sorted(ex.iter_ids())
        assume(len(ids) >= 4)
        # four disjoint contiguous chunks -> every ordered pair is a
        # valid disjoint query
        chunks = np.array_split(np.arange(len(ids)), 4)
        intervals = [
            NonatomicEvent(ex, [ids[i] for i in chunk], name=f"I{n}")
            for n, chunk in enumerate(chunks)
        ]
        specs = [
            Relation.R1,
            Relation.R2,
            Relation.R3,
            Relation.R4,
            parse_spec("R2'(U,L)"),
            parse_spec("R3'(L,U)"),
        ]
        an = SynchronizationAnalyzer(ex, engine="linear")
        queries = [
            (spec, x, y)
            for spec in specs
            for x in intervals
            for y in intervals
            if x is not y
        ]
        batched = an.batch_holds(queries)  # 12 per spec -> vectorised
        for (spec, x, y), got in zip(queries, batched, strict=True):
            assert got == an.holds(spec, x, y), (spec, x.name, y.name)

    def test_small_groups_fall_back_to_scalar(self):
        b = TraceBuilder(2)
        a0 = b.internal(0)
        m = b.send(0)
        r = b.recv(1, m)
        y1 = b.internal(1)
        ex = b.execute()
        an = SynchronizationAnalyzer(ex)
        x = an.interval([a0], name="X")
        y = an.interval([r, y1], name="Y")
        assert an.batch_holds([(Relation.R1, x, y)]) == [
            an.holds(Relation.R1, x, y)
        ]
        assert an.batch_holds([]) == []


class TestOnlineZeroPasses:
    def _feed(self, monitor: OnlineMonitor) -> None:
        h = monitor.send(0, label="m0")
        monitor.internal(1, label="w")
        monitor.recv(1, h, label="m0")
        h2 = monitor.send(1, label="m1")
        monitor.recv(2, h2, label="m1")
        monitor.internal(2, label="z")

    def test_ingest_and_finalise_run_zero_passes(self):
        reset_clock_pass_counts()
        monitor = OnlineMonitor(3)
        self._feed(monitor)
        ex = monitor.to_execution()
        counts = clock_pass_counts()
        assert counts == {"forward": 0, "reverse": 0, "extend": 0}
        assert not ex.reverse_ready

    def test_adopted_clocks_match_offline_pass(self):
        monitor = OnlineMonitor(3)
        self._feed(monitor)
        ex = monitor.to_execution()
        expected = compute_forward_clocks(ex.trace)
        for node in range(3):
            assert np.array_equal(ex.clock_matrix(node), expected[node])

    def test_to_context_shares_the_execution_cache(self):
        monitor = OnlineMonitor(2)
        monitor.internal(0, label="a")
        monitor.internal(1, label="b")
        ctx = monitor.to_context()
        assert AnalysisContext.of(ctx.execution) is ctx
