"""Tests for the live networked monitoring service.

Layers covered bottom-up: the wire protocol (framing, size limits),
the append-only event log (torn tails, sequence continuity), the
transport-agnostic :class:`~repro.service.core.MonitorCore` (causal
parking, deferred closes, exactly-once verdicts, record replay), the
asyncio service end-to-end over loopback (sharded multi-client ingest,
verdict pushes, backpressure), and warm-standby failover.

The headline property mirrors the repo's online/offline agreement
suite: N concurrent clients streaming a labelled trace through the
live service produce exactly the watch verdicts the offline
:class:`~repro.core.evaluator.SynchronizationAnalyzer` computes from
the recorded trace — on both causality backends — with zero offline
clock passes during ingest.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import AnalysisContext
from repro.core.evaluator import SynchronizationAnalyzer
from repro.events.poset import Execution
from repro.events.serialization import loads, save
from repro.events.trace import Trace, causal_schedule
from repro.monitor.checker import ConditionChecker
from repro.nonatomic.selection import by_label
from repro.service import (
    EventLog,
    FrameDecoder,
    FrameTooLargeError,
    LogError,
    MonitorClient,
    MonitorCore,
    MonitorService,
    ProtocolError,
    ServiceError,
    ServiceHandle,
    encode_frame,
    plan_replay,
    read_records,
)
from repro.service.client import replay_trace
from repro.simulation.workloads import barrier_trace
from tests.strategies import traces


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        frame = {"type": "event", "node": 3, "kind": "send", "label": "x"}
        dec = FrameDecoder()
        assert dec.feed(encode_frame(frame)) == [frame]

    def test_incremental_feed(self):
        frames = [{"type": "event", "node": i} for i in range(5)]
        blob = b"".join(encode_frame(f) for f in frames)
        dec = FrameDecoder()
        got = []
        for i in range(0, len(blob), 3):  # drip 3 bytes at a time
            got.extend(dec.feed(blob[i : i + 3]))
        assert got == frames

    def test_multiple_frames_one_chunk(self):
        frames = [{"type": "a"}, {"type": "b"}, {"type": "c"}]
        blob = b"".join(encode_frame(f) for f in frames)
        assert FrameDecoder().feed(blob) == frames

    def test_oversized_frame_rejected_at_header(self):
        dec = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(FrameTooLargeError):
            dec.feed(b"100000\n")

    def test_garbage_header_rejected(self):
        with pytest.raises(ProtocolError, match="length prefix"):
            FrameDecoder().feed(b"nonsense\n")

    def test_unbounded_header_rejected(self):
        with pytest.raises(ProtocolError, match="too long"):
            FrameDecoder().feed(b"9" * 64)

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="'type'"):
            FrameDecoder().feed(b"5\n[1,2]\n")

    def test_body_must_be_json(self):
        with pytest.raises(ProtocolError, match="JSON"):
            FrameDecoder().feed(b"3\n{{{\n")


# ----------------------------------------------------------------------
# event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_append_assigns_dense_seq(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with EventLog(path, fsync_every=0) as log:
            assert log.append({"op": "init", "num_nodes": 2}) == 1
            assert log.append({"op": "event", "node": 0}) == 2
            assert log.last_seq == 2
        recs = read_records(path)
        assert [r["seq"] for r in recs] == [1, 2]

    def test_reopen_resumes_sequence(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with EventLog(path, fsync_every=0) as log:
            log.append({"op": "init", "num_nodes": 2})
        with EventLog(path, fsync_every=0) as log:
            assert log.append({"op": "event", "node": 1}) == 2

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with EventLog(path, fsync_every=0) as log:
            log.append({"op": "init", "num_nodes": 2})
            log.append({"op": "event", "node": 0})
        with open(path, "ab") as fh:
            fh.write(b'{"seq":3,"op":"ev')  # crash mid-append
        recs = read_records(path)
        assert [r["seq"] for r in recs] == [1, 2]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "wb") as fh:
            fh.write(b'{"seq":1,"op":"init"}\n')
            fh.write(b"garbage\n")
            fh.write(b'{"seq":3,"op":"event"}\n')
        with pytest.raises(LogError, match="corrupt"):
            read_records(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "wb") as fh:
            fh.write(b'{"seq":1,"op":"init"}\n')
            fh.write(b'{"seq":3,"op":"event"}\n')
        with pytest.raises(LogError, match="gap"):
            read_records(path)

    def test_out_of_order_append_rejected(self, tmp_path):
        with EventLog(str(tmp_path / "l.jsonl"), fsync_every=0) as log:
            log.append({"op": "init", "num_nodes": 1})
            with pytest.raises(LogError, match="out-of-order"):
                log.append({"seq": 7, "op": "event"})


# ----------------------------------------------------------------------
# core state machine
# ----------------------------------------------------------------------
def _ev(node, kind="internal", **kw):
    return {"type": "event", "node": node, "kind": kind, **kw}


class TestMonitorCore:
    def test_receive_parks_until_send(self):
        core = MonitorCore(2)
        core.submit_event(_ev(1, "recv", send=[0, 1], interval="Y"))
        assert core.pending() == 1  # parked: send not yet applied
        core.submit_event(_ev(0, "send", interval="X"))
        assert core.pending() == 0
        assert core.stats()["events_applied"] == 2

    def test_close_defers_until_expected_count(self):
        core = MonitorCore(1)
        core.submit_watch("w", "R4(X, X)")
        core.submit_close("X", expected=2)
        assert core.pending() == 1
        core.submit_event(_ev(0, interval="X"))
        verdicts = core.submit_event(_ev(0, interval="X"))
        assert [v["name"] for v in verdicts] == ["w"]
        assert core.pending() == 0

    def test_watch_after_close_fires_immediately(self):
        core = MonitorCore(1)
        core.submit_event(_ev(0, interval="X"))
        core.submit_close("X", expected=1)
        verdicts = core.submit_watch("late", "R4(X, X)")
        assert [v["name"] for v in verdicts] == ["late"]

    def test_duplicate_watch_rejected(self):
        core = MonitorCore(1)
        core.submit_watch("w", "R4(X, X)")
        with pytest.raises(ValueError, match="already registered"):
            core.submit_watch("w", "R4(X, X)")

    def test_validation_errors(self):
        core = MonitorCore(2)
        with pytest.raises(ValueError, match="no such node"):
            core.submit_event(_ev(5))
        with pytest.raises(ValueError, match="kind"):
            core.submit_event(_ev(0, "teleport"))
        with pytest.raises(ValueError, match="send=\\[node, index\\]"):
            core.submit_event(_ev(0, "recv"))
        with pytest.raises(ValueError, match="only recv"):
            core.submit_event(_ev(0, "internal", send=[1, 1]))
        with pytest.raises(ValueError, match="expected >= 1"):
            core.submit_close("X", expected=0)

    def test_watch_seq_monotone(self):
        core = MonitorCore(1)
        for i in range(3):
            core.submit_watch(f"w{i}", "R4(X, X)")
        core.submit_event(_ev(0, interval="X"))
        verdicts = core.submit_close("X", expected=1)
        assert [v["watch_seq"] for v in verdicts] == [1, 2, 3]

    def test_from_records_rebuilds_state(self):
        core = MonitorCore(2)
        core.submit_watch("w", "R1(X, Y)")
        core.submit_event(_ev(0, "send", interval="X"))
        core.submit_event(_ev(1, "recv", send=[0, 1], interval="Y"))
        core.submit_close("X", expected=1)
        core.submit_close("Y", expected=1)
        records = core.records_from(0)
        rebuilt = MonitorCore.from_records(records)
        assert rebuilt.role == "primary"
        assert rebuilt.last_seq == core.last_seq
        s1, s2 = core.stats(), rebuilt.stats()
        for key in ("events_applied", "closes_applied", "verdicts_emitted"):
            assert s1[key] == s2[key]
        # the emitted verdict must not fire again after rebuild
        assert rebuilt.promote() == []

    def test_replica_stashes_until_verdict_confirmed(self):
        """A standby that saw the close but not the verdict record must
        emit the verdict exactly once — at promotion."""
        primary = MonitorCore(1)
        primary.submit_watch("w", "R4(X, X)")
        primary.submit_event(_ev(0, interval="X"))
        primary.submit_close("X", expected=1)
        records = primary.records_from(0)
        assert records[-1]["op"] == "verdict"

        replica = MonitorCore(1, role="replica")
        replica._mem_records.clear()  # adopt the primary's log wholesale
        for rec in records[:-1]:  # verdict record lost with the primary
            replica.apply_record(rec)
        assert replica.stats()["verdicts_emitted"] == 0
        emitted = replica.promote()
        assert [(v["name"], v["watch_seq"]) for v in emitted] == [("w", 1)]
        # and the emission was logged, so a further rebuild is quiet
        rebuilt = MonitorCore.from_records(replica.records_from(0))
        assert rebuilt.promote() == []

    def test_replica_with_confirmed_verdict_does_not_reemit(self):
        primary = MonitorCore(1)
        primary.submit_watch("w", "R4(X, X)")
        primary.submit_event(_ev(0, interval="X"))
        primary.submit_close("X", expected=1)
        replica = MonitorCore(1, role="replica")
        replica._mem_records.clear()
        for rec in primary.records_from(0):  # verdict record included
            replica.apply_record(rec)
        assert replica.promote() == []


# ----------------------------------------------------------------------
# replay planning
# ----------------------------------------------------------------------
class TestPlanReplay:
    def test_shards_partition_events_and_closes(self):
        trace = barrier_trace(4, phases=2)
        plans = [plan_replay(trace, s, 2) for s in range(2)]
        events = sum(
            1 for p in plans for f in p if f["type"] == "event"
        )
        assert events == trace.total_events
        # each label closed exactly once, across all shards
        closes = [f["interval"] for p in plans for f in p if f["type"] == "close"]
        assert sorted(closes) == sorted(set(closes))
        labels = {ev.label for ev in trace.iter_events() if ev.label}
        assert set(closes) == labels

    def test_expected_counts_are_global(self):
        trace = barrier_trace(3, phases=1)
        totals: dict[str, int] = {}
        for ev in trace.iter_events():
            if ev.label:
                totals[ev.label] = totals.get(ev.label, 0) + 1
        for s in range(3):
            for f in plan_replay(trace, s, 3):
                if f["type"] == "close":
                    assert f["expected"] == totals[f["interval"]]

    def test_bad_shard_rejected(self):
        trace = barrier_trace(2, phases=1)
        with pytest.raises(ValueError, match="shard"):
            plan_replay(trace, 3, 2)


# ----------------------------------------------------------------------
# live service over loopback
# ----------------------------------------------------------------------
def _serve(**kw):
    return ServiceHandle(lambda: MonitorService(**kw)).start()


class TestLiveService:
    def test_single_client_end_to_end(self):
        trace = barrier_trace(4, phases=2)
        handle = _serve(num_nodes=4)
        try:
            host, port = handle.address
            with MonitorClient(host, port, num_nodes=4) as client:
                client.watch("order", "R1(phase0, phase1)")
                counts = replay_trace(client, trace)
                assert counts["events"] == trace.total_events
                client.wait_verdicts(1)
                stats = client.stats()
            assert stats["events_applied"] == trace.total_events
            assert stats["parked"] == 0
            assert stats["clock_passes"] == {
                "forward": 0, "reverse": 0, "extend": 0,
            }
        finally:
            handle.stop()

    def test_num_nodes_mismatch_rejected(self):
        handle = _serve(num_nodes=4)
        try:
            host, port = handle.address
            with pytest.raises(ServiceError, match="num-nodes|nodes"):
                MonitorClient(host, port, num_nodes=7)
        finally:
            handle.stop()

    def test_stale_version_rejected(self):
        import socket

        from repro.service.protocol import encode_frame as enc

        handle = _serve(num_nodes=2)
        try:
            host, port = handle.address
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(enc({"type": "hello", "version": 999}))
                dec = FrameDecoder()
                frames = []
                while not frames:
                    frames = dec.feed(sock.recv(4096))
                assert frames[0]["type"] == "error"
                assert frames[0]["code"] == "version"
        finally:
            handle.stop()

    def test_backpressure_throttles_then_disconnects(self):
        handle = _serve(num_nodes=2, throttle_at=2, disconnect_at=5)
        try:
            host, port = handle.address
            with MonitorClient(host, port, num_nodes=2) as client:
                # receives whose sends never arrive: pure parked backlog
                for i in range(1, 5):
                    client.send_event(1, "recv", send=[0, i])
                with pytest.raises((ServiceError, ConnectionError)):
                    for i in range(5, 60):
                        client.send_event(1, "recv", send=[0, i])
                        client.stats()  # forces a read of pushed frames
                assert client.throttles >= 1
        finally:
            handle.stop()

    def test_sharded_clients_agree_with_offline(self):
        """The acceptance-criteria scenario at test scale: 4 clients,
        one node-shard each, verdicts identical to the offline
        analyzer, zero offline clock passes."""
        trace = barrier_trace(4, phases=3)
        watches = [
            ("w01", "R1(phase0, phase1)"),
            ("w12", "R2(phase1, phase2) and not R4(phase2, phase0)"),
        ]
        handle = _serve(num_nodes=4)
        try:
            host, port = handle.address
            clients = [
                MonitorClient(host, port, num_nodes=4) for _ in range(4)
            ]
            for name, cond in watches:
                clients[0].watch(name, cond)
            clients[0].stats()  # barrier: watches registered first
            threads = [
                threading.Thread(
                    target=replay_trace, args=(c, trace, s, 4)
                )
                for s, c in enumerate(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for c in clients:
                c.wait_verdicts(len(watches))
            stats = clients[0].stats()
            live = {
                (v["name"], v["passed"], v["watch_seq"])
                for v in clients[0].verdicts
            }
            # every client saw the identical verdict set
            for c in clients[1:]:
                assert {
                    (v["name"], v["passed"], v["watch_seq"])
                    for v in c.verdicts
                } == live
            for c in clients:
                c.close()
        finally:
            handle.stop()
        assert stats["clock_passes"] == {
            "forward": 0, "reverse": 0, "extend": 0,
        }
        assert stats["events_applied"] == trace.total_events
        expected = _offline_verdicts(trace, watches, "vector")
        assert {(n, p) for n, p, _ in live} == expected


class TestPushPressureUnit:
    def test_slow_consumer_cutoff_spares_other_sessions(self):
        """A session whose outbound queue is completely full must be
        cut off in place — never raise ``QueueFull`` out of the verdict
        broadcast into the submitting session's loop."""
        from repro.service.server import _Session

        class _NullWriter:
            def write(self, data):
                pass

            async def drain(self):
                pass

            def close(self):
                pass

            async def wait_closed(self):
                pass

        async def scenario():
            service = MonitorService(
                num_nodes=1, throttle_at=2, disconnect_at=4
            )
            slow = _Session(1, "client", _NullWriter(), maxsize=4)
            slow.task = asyncio.get_running_loop().create_task(
                asyncio.sleep(3600)
            )
            healthy = _Session(2, "client", _NullWriter(), maxsize=4)
            service._sessions = {1: slow, 2: healthy}
            while not slow.queue.full():  # peer stopped reading entirely
                slow.queue.put_nowait({"type": "noise"})
            service._broadcast_verdict(
                {"watch_seq": 1, "name": "w", "passed": True, "decided_at": 0}
            )
            # the slow session is closed and its writer cancelled (the
            # sentinel could not fit), the healthy one got the verdict
            assert slow.closed
            with contextlib.suppress(asyncio.CancelledError):
                await slow.task
            assert slow.task.cancelled()
            assert not healthy.closed
            assert healthy.queue.qsize() == 1

        asyncio.run(scenario())


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestServiceRestart:
    def test_restart_resumes_monitor_state_from_log(self, tmp_path):
        """Restarting over a non-empty log must replay it: old sends
        stay known, watch registrations survive, and the sequence and
        watch-seq numbering continue instead of resetting."""
        path = str(tmp_path / "log.jsonl")
        watches = (("w", "R1(X, Y)"),)
        first = _serve(
            num_nodes=2, log_path=path, fsync_every=0, watches=watches
        )
        host, port = first.address
        with MonitorClient(host, port, num_nodes=2) as client:
            client.send_event(0, "send", interval="X")
            client.close_interval("X", expected=1)
            stats = client.stats()  # applied barrier before the restart
            assert stats["verdicts_emitted"] == 0
        first.stop()

        second = _serve(
            num_nodes=2, log_path=path, fsync_every=0, watches=watches
        )
        try:
            host, port = second.address
            with MonitorClient(host, port, num_nodes=2) as client:
                # the pre-restart send is known: its receive applies now
                client.send_event(1, "recv", send=[0, 1], interval="Y")
                client.close_interval("Y", expected=1)
                verdicts = client.wait_verdicts(1)
                stats = client.stats()
            assert [(v["name"], v["watch_seq"]) for v in verdicts] == [
                ("w", 1)
            ]
            assert stats["parked"] == 0
            assert stats["events_applied"] == 2  # one replayed + one live
        finally:
            second.stop()
        # one continuous record sequence across both incarnations
        records = read_records(path)
        assert [r["seq"] for r in records] == list(
            range(1, len(records) + 1)
        )
        assert sum(r["op"] == "verdict" for r in records) == 1
        assert sum(r["op"] == "watch" for r in records) == 1

    def test_fsync_batched_ingest_logs_every_mutation(self, tmp_path):
        """Regression for the executor-offloaded fsync (REP007 fix):
        appends no longer sync inline, so with a tiny batch size the
        off-loop flusher must keep pace mid-session and the close must
        drain the remainder — every applied mutation ends up durable,
        in application order, with nothing lost to buffering."""
        path = str(tmp_path / "wal.jsonl")
        trace = barrier_trace(4, phases=2)
        handle = _serve(num_nodes=4, log_path=path, fsync_every=2)
        try:
            host, port = handle.address
            with MonitorClient(host, port, num_nodes=4) as client:
                client.watch("order", "R1(phase0, phase1)")
                counts = replay_trace(client, trace)
                client.wait_verdicts(1)
                stats = client.stats()
            assert stats["events_applied"] == trace.total_events
            # mid-session (before stop/close): the off-loop flusher has
            # been syncing full batches, so the durable prefix is within
            # one batch of everything applied — not an empty file whose
            # records all sit in the write buffer until close
            assert len(read_records(path)) >= stats["last_seq"] - 2
        finally:
            handle.stop()
        records = read_records(path)
        ops = [r["op"] for r in records]
        assert ops[0] == "init"
        assert ops.count("event") == counts["events"] == trace.total_events
        assert ops.count("close") == counts["closes"]
        assert ops.count("watch") == 1
        assert ops.count("verdict") == 1
        assert [r["seq"] for r in records] == list(range(1, len(records) + 1))

    def test_restart_rejects_num_nodes_mismatch(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        _serve(num_nodes=2, log_path=path, fsync_every=0).stop()
        with pytest.raises(ValueError, match="nodes"):
            _serve(num_nodes=3, log_path=path, fsync_every=0)

    def test_restart_emits_verdict_lost_in_crash(self, tmp_path):
        """If the old primary died between applying a close and logging
        its verdict, the restarted service emits (and logs) that verdict
        before accepting connections."""
        core = MonitorCore(1)
        core.submit_watch("w", "R4(X, X)")
        core.submit_event(_ev(0, interval="X"))
        core.submit_close("X", expected=1)
        path = str(tmp_path / "log.jsonl")
        with EventLog(path, fsync_every=0) as log:
            for rec in core.records_from(0):
                if rec["op"] != "verdict":
                    log.append(rec)

        handle = _serve(num_nodes=1, log_path=path, fsync_every=0)
        try:
            assert handle.stats()["verdicts_emitted"] == 1
        finally:
            handle.stop()
        records = read_records(path)
        assert [
            (r["name"], r["watch_seq"])
            for r in records
            if r["op"] == "verdict"
        ] == [("w", 1)]


class TestStandbyRetry:
    def test_standby_started_before_primary_stays_warm(self, tmp_path):
        """A standby whose primary is not up yet must retry — primary
        loss (and with it auto-promotion) may only trigger after an
        established replication stream dies."""
        port = _free_port()

        def loss_pending(handle) -> bool:
            async def probe(service):
                try:
                    await asyncio.wait_for(
                        service.wait_primary_loss(), timeout=0.4
                    )
                except asyncio.TimeoutError:
                    return True
                return False

            return handle.call(probe)

        standby = _serve(
            num_nodes=1,
            log_path=str(tmp_path / "standby.jsonl"),
            fsync_every=0,
            primary=("127.0.0.1", port),
        )
        primary = None
        try:
            # nothing is listening yet: refused connects must not count
            assert loss_pending(standby)
            primary = _serve(
                num_nodes=1,
                log_path=str(tmp_path / "primary.jsonl"),
                fsync_every=0,
                port=port,
            )
            host, bound = primary.address
            with MonitorClient(host, bound, num_nodes=1) as client:
                client.watch("w", "R4(X, X)")
                client.send_event(0, interval="X")
                client.close_interval("X", expected=1)
                client.wait_verdicts(1)
                client.stats()  # barrier: replication flushed
            target = primary.stats()["last_seq"]
            deadline = 200
            while standby.stats()["last_seq"] < target:
                deadline -= 1
                assert deadline, "standby never caught up"
                time.sleep(0.05)
            primary.stop()

            async def wait_loss(service):
                await asyncio.wait_for(service.wait_primary_loss(), 5.0)

            standby.call(wait_loss)
            assert standby.promote() == []  # verdict was confirmed
            stats = standby.stats()
            assert stats["role"] == "primary"
            assert stats["events_applied"] == 1
            assert stats["verdicts_emitted"] == 1
        finally:
            if primary is not None:
                primary.stop()
            standby.stop()


def _offline_verdicts(trace, watches, backend) -> set[tuple[str, bool]]:
    """The offline analyzer's answer for label-bound watch conditions."""
    from repro.monitor.predicates import parse_condition

    ctx = AnalysisContext(Execution(trace), backend=backend)
    analyzer = SynchronizationAnalyzer(ctx, engine="linear")
    try:
        checker = ConditionChecker(analyzer)
        out = set()
        for name, cond in watches:
            parsed = parse_condition(cond)
            bindings = {
                label: by_label(ctx.execution, label, name=label)
                for label in parsed.names()
            }
            out.add((name, checker.check(parsed, bindings).passed))
        return out
    finally:
        analyzer.close()


# ----------------------------------------------------------------------
# hypothesis: live service == offline analyzer, both backends
# ----------------------------------------------------------------------
def _labelled(trace: Trace, marks: list[int]) -> Trace:
    """Tag a trace's events with X/Y labels (1 -> X, 2 -> Y) so the
    service's interval machinery has something to close."""
    schedule = [ev for _, ev, _ in causal_schedule(trace)]
    labels = {}
    for ev, mark in zip(schedule, marks):
        labels[ev.eid] = (None, "X", "Y")[mark % 3]
    # guarantee both intervals are non-empty (first/last are distinct
    # events since the caller ensures total_events >= 2)
    have_x = any(v == "X" for v in labels.values())
    have_y = any(v == "Y" for v in labels.values())
    if not have_x or not have_y:
        labels[schedule[0].eid] = "X"
        labels[schedule[-1].eid] = "Y"
    return Trace(
        [
            [
                dataclasses.replace(ev, label=labels.get(ev.eid))
                for ev in trace.events_of(node)
            ]
            for node in range(trace.num_nodes)
        ],
        trace.messages,
    )


class TestServiceOfflineEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        trace=traces(max_nodes=4, max_ops=24),
        marks=st.lists(st.integers(0, 2), min_size=2, max_size=64),
        data=st.data(),
    )
    def test_live_verdicts_match_offline(self, trace, marks, data):
        if trace.total_events < 2:
            return
        trace = _labelled(trace, marks)
        watches = [
            ("w-r1", "R1(X, Y)"),
            ("w-mix", "R2(X, Y) or not R4(Y, X)"),
        ]
        num_shards = data.draw(st.integers(1, min(3, trace.num_nodes)))
        handle = _serve(num_nodes=trace.num_nodes)
        try:
            host, port = handle.address
            clients = [
                MonitorClient(host, port, num_nodes=trace.num_nodes)
                for _ in range(num_shards)
            ]
            for name, cond in watches:
                clients[0].watch(name, cond)
            clients[0].stats()
            threads = [
                threading.Thread(
                    target=replay_trace, args=(c, trace, s, num_shards)
                )
                for s, c in enumerate(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            live = {
                (v["name"], v["passed"])
                for v in clients[0].wait_verdicts(len(watches))
            }
            stats = clients[0].stats()
            for c in clients:
                c.close()
        finally:
            handle.stop()
        assert stats["clock_passes"] == {
            "forward": 0, "reverse": 0, "extend": 0,
        }
        for backend in ("vector", "reachability"):
            assert live == _offline_verdicts(trace, watches, backend), backend


# ----------------------------------------------------------------------
# failover
# ----------------------------------------------------------------------
class TestFailover:
    def test_promoted_standby_resumes_without_loss_or_duplicates(
        self, tmp_path
    ):
        """Kill the primary mid-stream; the promoted standby must hold
        the full ingested state, emit the undecided watch exactly once
        when it decides, and never re-emit the verdict the primary
        already confirmed."""
        trace = barrier_trace(3, phases=2)
        frames = plan_replay(trace)
        events = [f for f in frames if f["type"] == "event"]
        closes = {f["interval"]: f for f in frames if f["type"] == "close"}

        primary = _serve(
            num_nodes=3,
            log_path=str(tmp_path / "primary.jsonl"),
            fsync_every=0,
        )
        host, port = primary.address
        standby = _serve(
            num_nodes=3,
            log_path=str(tmp_path / "standby.jsonl"),
            fsync_every=0,
            primary=(host, port),
        )
        try:
            with MonitorClient(host, port, num_nodes=3) as client:
                client.watch("early", "R4(phase0, phase0)")
                client.watch("late", "R1(phase0, phase1)")
                for frame in events:
                    client._send(frame)
                client._send(closes["phase0"])  # decides only "early"
                early = client.wait_verdicts(1)[0]
                assert early["name"] == "early"
                client.stats()  # barrier: replication flushed

            deadline = 100
            target = primary.stats()["last_seq"]
            while standby.stats()["last_seq"] < target:
                deadline -= 1
                assert deadline, "standby never caught up"
                time.sleep(0.05)
            primary.stop()  # primary dies mid-run

            reemitted = standby.promote()
            assert reemitted == []  # 'early' was confirmed before death
            host2, port2 = standby.address
            with MonitorClient(host2, port2, num_nodes=3) as c2:
                for name, frame in closes.items():
                    if name != "phase0":
                        c2._send(frame)
                late = c2.wait_verdicts(1)
                # only the undecided watch fires, with the next seq
                assert [(v["name"], v["watch_seq"]) for v in late] == [
                    ("late", early["watch_seq"] + 1)
                ]
                stats = c2.stats()
            assert stats["role"] == "primary"
            assert stats["events_applied"] == trace.total_events
            assert stats["verdicts_emitted"] == 2
        finally:
            standby.stop()

    def test_promotion_emits_unconfirmed_verdict_exactly_once(
        self, tmp_path
    ):
        """If the primary dies between applying a close and confirming
        its verdict, the standby must emit that verdict at promotion —
        once."""
        primary_core = MonitorCore(1)
        primary_core.submit_watch("w", "R4(X, X)")
        primary_core.submit_event(_ev(0, interval="X"))
        primary_core.submit_close("X", expected=1)
        records = primary_core.records_from(0)
        # the standby owns its own init record (seq 1); the verdict
        # record died with the primary
        confirmed = [
            r for r in records if r["op"] not in ("verdict", "init")
        ]

        standby = _serve(
            num_nodes=1,
            log_path=str(tmp_path / "standby.jsonl"),
            fsync_every=0,
            primary=("127.0.0.1", 1),  # never connected; fed directly
        )
        try:

            async def feed(service):
                for rec in confirmed:
                    service.core.apply_record(rec)

            standby.call(feed)
            emitted = standby.promote()
            assert [(v["name"], v["watch_seq"]) for v in emitted] == [
                ("w", 1)
            ]
            assert standby.stats()["verdicts_emitted"] == 1
        finally:
            standby.stop()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServiceCli:
    def test_serve_oneshot_and_client(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "t.json")
        save(barrier_trace(3, phases=2), trace_path)

        handle = _serve(num_nodes=3)
        try:
            host, port = handle.address
            rc = main([
                "client", trace_path,
                "--connect", f"{host}:{port}",
                "--watch", "order=R1(phase0, phase1)",
                "--stats",
            ])
            out = capsys.readouterr().out
            assert rc == 0
            assert "verdict #1 'order'" in out
            assert "service[primary]:" in out
            assert "clock passes: forward=0 reverse=0 extend=0" in out
        finally:
            handle.stop()

    def test_client_rejects_unlabelled_trace(self, tmp_path, capsys):
        from repro.cli import main
        from repro.simulation.workloads import random_trace

        trace_path = str(tmp_path / "t.json")
        save(random_trace(2, events_per_node=3, msg_prob=0.0, seed=1),
             trace_path)
        rc = main([
            "client", trace_path,
            "--connect", "127.0.0.1:1",
            "--watch", "w=R1(a, b)",
        ])
        assert rc == 2
        assert "no labelled events" in capsys.readouterr().err

    def test_loads_guard_still_roundtrips(self, tmp_path):
        # the service reuses the serialization layer; sanity-check the
        # guarded loads path end-to-end with a service-sized trace
        trace = barrier_trace(2, phases=1)
        path = str(tmp_path / "t.json")
        save(trace, path)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        assert loads(text).total_events == trace.total_events
