"""Experiment E-19: Theorem 19's restricted ``≪̸`` test.

For the *anchored* cut pairs (union-like past of Y, intersection-like
future of X — the R4 combination), the restricted scans over ``N_X``
and over ``N_Y`` both decide ``≪̸(↓Y, X↑)`` and agree with the full
``|P|`` scan, in at most ``min(|N_X|, |N_Y|)`` comparisons.
"""

from hypothesis import given, settings

from repro.core.counting import ComparisonCounter
from repro.core.cuts import cut_C2, cut_C3, future_cut, not_ll, past_cut
from repro.core.linear import not_ll_restricted

from .strategies import execution_with_pair


class TestRestrictedScanSoundness:
    @settings(max_examples=120, deadline=None)
    @given(pair=execution_with_pair())
    def test_nx_ny_full_agree_on_anchored_pair(self, pair):
        ex, x, y = pair
        past, fut = cut_C2(y), cut_C3(x)
        full = not_ll_restricted(past, fut, range(ex.num_nodes))
        assert not_ll_restricted(past, fut, x.node_set) == full
        assert not_ll_restricted(past, fut, y.node_set) == full
        assert not_ll(past, fut) == full

    @settings(max_examples=80, deadline=None)
    @given(pair=execution_with_pair())
    def test_singleton_cut_pairs(self, pair):
        """For atomic ↓y / x↑ cuts the scan restricted to either
        endpoint's node decides the test (the R1 decomposition)."""
        ex, x, y = pair
        for xe in x.first_ids():
            for ye in y.last_ids():
                past = past_cut(ex, ye)
                fut = future_cut(ex, xe)
                full = not_ll_restricted(past, fut, range(ex.num_nodes))
                assert not_ll_restricted(past, fut, [xe[0]]) == full
                assert not_ll_restricted(past, fut, [ye[0]]) == full


class TestComparisonBudget:
    @settings(max_examples=60, deadline=None)
    @given(pair=execution_with_pair())
    def test_at_most_min_comparisons(self, pair):
        _ex, x, y = pair
        past, fut = cut_C2(y), cut_C3(x)
        nodes = x.node_set if x.width <= y.width else y.node_set
        counter = ComparisonCounter()
        not_ll_restricted(past, fut, nodes, counter)
        assert counter.total <= min(x.width, y.width)

    @settings(max_examples=60, deadline=None)
    @given(pair=execution_with_pair())
    def test_exactly_bound_when_false(self, pair):
        """Without a witness the scan cannot short-circuit: it spends
        exactly min(|N_X|, |N_Y|) comparisons."""
        _ex, x, y = pair
        past, fut = cut_C2(y), cut_C3(x)
        nodes = x.node_set if x.width <= y.width else y.node_set
        counter = ComparisonCounter()
        result = not_ll_restricted(past, fut, nodes, counter)
        if not result:
            assert counter.total == min(x.width, y.width)

    def test_counter_categories(self, message_exec):
        from repro.nonatomic.event import NonatomicEvent

        x = NonatomicEvent(message_exec, [(0, 1)])
        y = NonatomicEvent(message_exec, [(1, 3)])
        counter = ComparisonCounter()
        not_ll_restricted(cut_C2(y), cut_C3(x), x.node_set, counter)
        assert counter.by_category == {"test": counter.total}
