"""Property tests for the axiom system (composition, asymmetry).

Every law in :mod:`repro.core.axioms` is semantically verified on
random executions with three pairwise-disjoint intervals.  A wrong
composition entry (too strong) or a wrong asymmetry claim would be
found by hypothesis within a few hundred instances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axioms import (
    COMPOSITION_TABLE,
    MUTUALLY_EXCLUSIVE_WITH_CONVERSE,
    compose,
    converse_compatible,
)
from repro.core.hierarchy import implies
from repro.core.linear import LinearEvaluator
from repro.core.relations import Relation
from repro.events.builder import TraceBuilder
from repro.nonatomic.event import NonatomicEvent

from .strategies import executions


_CANONICAL = (
    Relation.R1,
    Relation.R2,
    Relation.R2P,
    Relation.R3,
    Relation.R3P,
    Relation.R4,
)


@st.composite
def execution_with_triple(draw):
    """An execution with three pairwise-disjoint non-empty intervals."""
    ex = draw(executions(max_nodes=4, max_ops=30))
    ids = sorted(ex.iter_ids())
    if len(ids) < 3:
        b = TraceBuilder(ex.num_nodes)
        for ev in ex.trace.iter_events():
            b.internal(ev.node)
        while sum(b.count(i) for i in range(ex.num_nodes)) < 3:
            b.internal(0)
        ex = b.execute()
        ids = sorted(ex.iter_ids())
    # random 3-way partition of a random subset
    picks = draw(
        st.lists(st.integers(0, len(ids) - 1), min_size=3,
                 max_size=min(len(ids), 12), unique=True)
    )
    if len(picks) < 3:
        picks = [0, 1, 2]
    assignment = [draw(st.integers(0, 2)) for _ in picks]
    # force non-empty groups
    assignment[0], assignment[1], assignment[2] = 0, 1, 2
    groups = {0: [], 1: [], 2: []}
    for pos, grp in zip(picks, assignment, strict=True):
        groups[grp].append(ids[pos])
    x = NonatomicEvent(ex, groups[0], name="X")
    y = NonatomicEvent(ex, groups[1], name="Y")
    z = NonatomicEvent(ex, groups[2], name="Z")
    return ex, x, y, z


class TestCompositionTable:
    def test_table_complete(self):
        assert len(COMPOSITION_TABLE) == 36
        for a in _CANONICAL:
            for b in _CANONICAL:
                assert (a, b) in COMPOSITION_TABLE

    def test_synonyms_canonicalised(self):
        assert compose(Relation.R1P, Relation.R4P) == compose(
            Relation.R1, Relation.R4
        )

    @settings(max_examples=250, deadline=None)
    @given(data=execution_with_triple())
    def test_composition_soundness(self, data):
        """If a(X,Y) and b(Y,Z) hold, compose(a, b) holds on (X,Z)."""
        ex, x, y, z = data
        lin = LinearEvaluator(ex)
        holds_xy = {r: lin.evaluate(r, x, y) for r in _CANONICAL}
        holds_yz = {r: lin.evaluate(r, y, z) for r in _CANONICAL}
        for a in _CANONICAL:
            if not holds_xy[a]:
                continue
            for b in _CANONICAL:
                if not holds_yz[b]:
                    continue
                c = compose(a, b)
                if c is not None:
                    assert lin.evaluate(c, x, z), (a, b, c)

    def test_r1_row_is_maximal_somewhere(self, diamond_exec):
        """Spot maximality: R1∘R2 guarantees R2' but not R1/R3/R2 in
        general — exhibit an instance separating them."""
        # X = {(0,1)}, Y = {(1,1),(2,1)}, Z = {(1,2),(2,2)}
        x = NonatomicEvent(diamond_exec, [(0, 1)])
        y = NonatomicEvent(diamond_exec, [(1, 1), (2, 1)])
        z = NonatomicEvent(diamond_exec, [(1, 2), (2, 2)])
        lin = LinearEvaluator(diamond_exec)
        assert lin.evaluate(Relation.R1, x, y)
        assert lin.evaluate(Relation.R2, y, z)
        got = compose(Relation.R1, Relation.R2)
        assert got is Relation.R2P
        assert lin.evaluate(Relation.R2P, x, z)

    def test_none_entries_genuinely_unprovable(self):
        """For each None entry, exhibit an instance where the premises
        hold but even R4(X, Z) fails — so no relation is guaranteed."""
        # Build: y* above X; y' below Z; X, Z concurrent; Y = {y*, y'}.
        b = TraceBuilder(4)
        x1 = b.internal(0)             # X on node 0
        m = b.send(0)
        ystar = b.recv(1, m)           # y* ≻ x1
        yprime = b.internal(2)         # y' (concurrent with everything so far)
        m2 = b.send(2)
        z1 = b.recv(3, m2)             # z1 ≻ y'
        ex = b.execute()
        x = NonatomicEvent(ex, [x1])
        y = NonatomicEvent(ex, [ystar, yprime])
        z = NonatomicEvent(ex, [z1])
        lin = LinearEvaluator(ex)
        assert lin.evaluate(Relation.R2P, x, y)  # y* above all x
        assert lin.evaluate(Relation.R3, y, z)   # y' below all z
        assert not lin.evaluate(Relation.R4, x, z)
        assert compose(Relation.R2P, Relation.R3) is None

    @settings(max_examples=100, deadline=None)
    @given(data=execution_with_triple())
    def test_composition_consistent_with_hierarchy(self, data):
        """compose(a', b') for weaker premises never claims a stronger
        conclusion than compose(a, b) — monotonicity of the table."""
        for a in _CANONICAL:
            for b in _CANONICAL:
                c = compose(a, b)
                if c is None:
                    continue
                for a2 in _CANONICAL:
                    if implies(a, a2):
                        c2 = compose(a2, b)
                        # weaker premise: conclusion must be implied by c
                        if c2 is not None:
                            assert implies(c, c2), (a, a2, b, c, c2)


class TestConverseLaws:
    def test_classification(self):
        assert not converse_compatible(Relation.R1)
        assert not converse_compatible(Relation.R2)
        assert not converse_compatible(Relation.R2P)
        assert not converse_compatible(Relation.R3)
        assert not converse_compatible(Relation.R3P)
        assert converse_compatible(Relation.R4)
        assert converse_compatible(Relation.R4P)

    @settings(max_examples=200, deadline=None)
    @given(data=execution_with_triple())
    def test_asymmetry_soundness(self, data):
        ex, x, y, _z = data
        lin = LinearEvaluator(ex)
        for rel in MUTUALLY_EXCLUSIVE_WITH_CONVERSE:
            if lin.evaluate(rel, x, y):
                assert not lin.evaluate(rel, y, x), rel

    def test_r4_both_ways_possible(self, concurrent_exec):
        """R4 is genuinely converse-compatible: exhibit an instance."""
        b = TraceBuilder(2)
        x1 = b.internal(0)
        m1 = b.send(0)
        y1 = b.recv(1, m1)
        y2 = b.internal(1)
        m2 = b.send(1)
        x2 = b.recv(0, m2)
        ex = b.execute()
        x = NonatomicEvent(ex, [x1, x2])
        y = NonatomicEvent(ex, [y1, y2])
        lin = LinearEvaluator(ex)
        assert lin.evaluate(Relation.R4, x, y)
        assert lin.evaluate(Relation.R4, y, x)
