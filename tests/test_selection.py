"""Tests for nonatomic-event selection from traces."""

import numpy as np
import pytest

from repro.events.builder import TraceBuilder
from repro.nonatomic.selection import (
    by_label,
    by_label_prefix,
    by_window,
    random_disjoint_pair,
    random_interval,
)
from repro.simulation.workloads import random_execution


@pytest.fixture
def labelled_exec():
    b = TraceBuilder(2)
    b.internal(0, label="cs:1", time=1.0)
    b.internal(0, label="other", time=2.0)
    b.internal(1, label="cs:1", time=3.0)
    b.internal(1, label="cs:2", time=4.0)
    b.internal(0, time=5.0)
    return b.execute()


class TestByLabel:
    def test_collects_all_nodes(self, labelled_exec):
        x = by_label(labelled_exec, "cs:1")
        assert x.ids == {(0, 1), (1, 1)}
        assert x.name == "cs:1"

    def test_missing_label_raises(self, labelled_exec):
        with pytest.raises(ValueError, match="no events labelled"):
            by_label(labelled_exec, "nope")

    def test_custom_name(self, labelled_exec):
        assert by_label(labelled_exec, "cs:1", name="occ").name == "occ"


class TestByLabelPrefix:
    def test_groups(self, labelled_exec):
        groups = by_label_prefix(labelled_exec, "cs:")
        assert set(groups) == {"cs:1", "cs:2"}
        assert groups["cs:2"].ids == {(1, 2)}

    def test_empty_prefix_matches_all_labelled(self, labelled_exec):
        groups = by_label_prefix(labelled_exec, "")
        assert set(groups) == {"cs:1", "cs:2", "other"}

    def test_no_match_returns_empty(self, labelled_exec):
        assert by_label_prefix(labelled_exec, "zz") == {}


class TestByWindow:
    def test_window(self, labelled_exec):
        x = by_window(labelled_exec, 2.0, 4.0)
        assert x.ids == {(0, 2), (1, 1), (1, 2)}

    def test_node_filter(self, labelled_exec):
        x = by_window(labelled_exec, 0.0, 10.0, nodes=[1])
        assert x.ids == {(1, 1), (1, 2)}

    def test_untimed_events_skipped(self):
        b = TraceBuilder(1)
        b.internal(0)  # no time
        b.internal(0, time=1.0)
        x = by_window(b.execute(), 0.0, 5.0)
        assert x.ids == {(0, 2)}

    def test_empty_window_raises(self, labelled_exec):
        with pytest.raises(ValueError, match="no events in window"):
            by_window(labelled_exec, 100.0, 200.0)


class TestRandomSelection:
    def test_interval_shape(self, rng):
        ex = random_execution(5, events_per_node=10, seed=3)
        x = random_interval(ex, rng, num_nodes=3, events_per_node=2)
        assert x.width <= 3
        assert all(
            len(x.restrict(n)) <= 2 for n in x.node_set
        )

    def test_exclusion_respected(self, rng):
        ex = random_execution(3, events_per_node=5, seed=3)
        banned = [(0, j) for j in range(1, 6)]
        x = random_interval(ex, rng, exclude=banned)
        assert not (set(banned) & x.ids)

    def test_disjoint_pair(self, rng):
        ex = random_execution(4, events_per_node=8, seed=7)
        for _ in range(20):
            x, y = random_disjoint_pair(ex, rng)
            assert x.is_disjoint(y)
            assert len(x) >= 1 and len(y) >= 1

    def test_reproducible(self):
        ex = random_execution(4, events_per_node=8, seed=7)
        a = random_interval(ex, np.random.default_rng(5))
        b = random_interval(ex, np.random.default_rng(5))
        assert a.ids == b.ids

    def test_no_eligible_nodes_raises(self, rng):
        ex = random_execution(2, events_per_node=3, seed=0)
        everything = list(ex.iter_ids())
        with pytest.raises(ValueError, match="no nodes"):
            random_interval(ex, rng, exclude=everything)
