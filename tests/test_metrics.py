"""Tests for execution structural metrics."""


from repro.analysis.metrics import (
    concurrency_ratio,
    critical_path,
    message_stats,
    summarize,
)
from repro.events.builder import TraceBuilder
from repro.events.poset import Execution
from repro.simulation.workloads import barrier_trace, random_trace, ring_trace


class TestConcurrencyRatio:
    def test_no_messages_fully_concurrent(self, concurrent_exec):
        assert concurrency_ratio(concurrent_exec) == 1.0

    def test_totally_ordered_ring(self):
        ex = Execution(ring_trace(3, rounds=1, work_per_hop=1))
        assert concurrency_ratio(ex) == 0.0

    def test_single_node_defined(self, chain_exec):
        # no cross-node pairs at all
        assert concurrency_ratio(chain_exec) == 1.0

    def test_partial(self, message_exec):
        r = concurrency_ratio(message_exec)
        assert 0.0 < r < 1.0

    def test_sampling_close_to_exact(self):
        ex = Execution(random_trace(4, events_per_node=12, msg_prob=0.3, seed=3))
        exact = concurrency_ratio(ex)
        sampled = concurrency_ratio(ex, sample=400, seed=1)
        assert abs(exact - sampled) < 0.15


class TestCriticalPath:
    def test_chain(self, chain_exec):
        length, path = critical_path(chain_exec)
        assert length == 3
        assert path == ((0, 1), (0, 2), (0, 3))

    def test_diamond(self, diamond_exec):
        length, path = critical_path(diamond_exec)
        # e.g. (0,1)(0,2)(2,1)(2,2)(3,2)(3,3): fan-out + one branch + fan-in
        assert length == 6
        assert path[0][0] == 0 and path[-1] == (3, 3)

    def test_concurrent_nodes(self, concurrent_exec):
        length, _ = critical_path(concurrent_exec)
        assert length == 2

    def test_barrier_spans_phases(self):
        ex = Execution(barrier_trace(3, phases=2, work_per_phase=1))
        length, _ = critical_path(ex)
        assert length >= 6  # work + arrive + release per phase, twice


class TestMessageStats:
    def test_counts(self, message_exec):
        stats = message_stats(message_exec)
        assert stats.sent == 1
        assert stats.delivered == 1
        assert stats.lost == 0
        assert stats.channels == 1
        assert stats.loss_rate == 0.0

    def test_lost_message(self):
        b = TraceBuilder(2)
        b.send(0)  # never received
        h = b.send(0)
        b.recv(1, h)
        stats = message_stats(b.execute())
        assert stats.sent == 2
        assert stats.lost == 1
        assert stats.loss_rate == 0.5

    def test_no_messages(self, concurrent_exec):
        stats = message_stats(concurrent_exec)
        assert stats.sent == 0
        assert stats.loss_rate == 0.0


class TestSummarize:
    def test_bundle(self, message_exec):
        m = summarize(message_exec)
        assert m.num_nodes == 2
        assert m.total_events == 6
        assert m.messages.delivered == 1
        assert 0 <= m.concurrency <= 1
        assert m.critical_path_length == 4
        assert "2 nodes" in str(m)
