"""Tests for the named synchronization idioms."""

import pytest
from hypothesis import given, settings

from repro.core import idioms
from repro.core.evaluator import SynchronizationAnalyzer
from repro.nonatomic.event import NonatomicEvent

from .strategies import execution_with_pair


@pytest.fixture
def env(message_exec):
    an = SynchronizationAnalyzer(message_exec)
    x = NonatomicEvent(message_exec, [(0, 1), (0, 2)], name="X")
    y = NonatomicEvent(message_exec, [(1, 2), (1, 3)], name="Y")
    z = NonatomicEvent(message_exec, [(1, 1)], name="Z")
    return an, x, y, z


class TestIdioms:
    def test_wholly_before(self, env):
        an, x, y, z = env
        assert idioms.wholly_before(an, x, y)
        assert not idioms.wholly_before(an, y, x)

    def test_ends_before_starts(self, env):
        an, x, y, _ = env
        assert idioms.ends_before_starts(an, x, y)

    def test_influences(self, env):
        an, x, y, z = env
        assert idioms.influences(an, x, y)
        assert not idioms.influences(an, x, z)

    def test_independent(self, env):
        an, x, y, z = env
        assert idioms.independent(an, x, z)
        assert not idioms.independent(an, x, y)

    def test_covered_and_triggered(self, env):
        an, x, y, _ = env
        assert idioms.covered_by(an, x, y)
        assert idioms.triggered_by_some(an, x, y)

    def test_common_cause_effect(self, env):
        an, x, y, _ = env
        assert idioms.has_common_effect(an, x, y)
        assert idioms.has_common_cause(an, x, y)

    def test_serialised(self, env):
        an, x, y, z = env
        assert idioms.serialised(an, x, y)
        assert not idioms.serialised(an, x, z)  # concurrent, not ordered


class TestIdiomsConsistency:
    @settings(max_examples=50, deadline=None)
    @given(pair=execution_with_pair())
    def test_idioms_match_documented_specs(self, pair):
        ex, x, y = pair
        an = SynchronizationAnalyzer(ex)
        assert idioms.wholly_before(an, x, y) == an.holds("R1", x, y)
        assert idioms.influences(an, x, y) == an.holds("R4", x, y)
        assert idioms.covered_by(an, x, y) == an.holds("R2", x, y)
        assert idioms.has_common_effect(an, x, y) == an.holds("R2'", x, y)
        assert idioms.has_common_cause(an, x, y) == an.holds("R3", x, y)
        assert idioms.triggered_by_some(an, x, y) == an.holds("R3'", x, y)

    @settings(max_examples=50, deadline=None)
    @given(pair=execution_with_pair())
    def test_independent_symmetric(self, pair):
        ex, x, y = pair
        an = SynchronizationAnalyzer(ex)
        assert idioms.independent(an, x, y) == idioms.independent(an, y, x)

    @settings(max_examples=50, deadline=None)
    @given(pair=execution_with_pair())
    def test_wholly_before_implies_everything_forward(self, pair):
        ex, x, y = pair
        an = SynchronizationAnalyzer(ex)
        if idioms.wholly_before(an, x, y):
            assert idioms.influences(an, x, y)
            assert idioms.covered_by(an, x, y)
            assert idioms.serialised(an, x, y)
            assert not idioms.independent(an, x, y)
