"""Tests for the workload generators."""

import pytest

from repro.core.evaluator import SynchronizationAnalyzer
from repro.events.poset import Execution
from repro.nonatomic.selection import by_label, by_label_prefix
from repro.simulation.workloads import (
    barrier_trace,
    broadcast_trace,
    client_server_trace,
    layered_trace,
    pipeline_trace,
    random_execution,
    random_trace,
    ring_trace,
)


class TestRandomTrace:
    def test_shape(self):
        tr = random_trace(4, events_per_node=15, msg_prob=0.3, seed=1)
        assert tr.num_nodes == 4
        assert all(tr.num_real(i) == 15 for i in range(4))

    def test_reproducible(self):
        assert random_trace(3, 10, 0.4, seed=9) == random_trace(3, 10, 0.4, seed=9)
        assert random_trace(3, 10, 0.4, seed=9) != random_trace(3, 10, 0.4, seed=10)

    def test_acyclic(self):
        Execution(random_trace(6, 30, 0.45, seed=2))  # no CyclicTraceError

    def test_zero_msg_prob(self):
        tr = random_trace(3, 5, msg_prob=0.0, seed=0)
        assert len(tr.messages) == 0

    def test_single_node(self):
        tr = random_trace(1, 5, msg_prob=0.5, seed=0)
        assert tr.num_nodes == 1 and tr.total_events == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            random_trace(0, 5)
        with pytest.raises(ValueError):
            random_trace(2, 0)

    def test_random_execution_helper(self):
        ex = random_execution(3, 5, seed=1)
        assert isinstance(ex, Execution)


class TestRing:
    def test_structure(self):
        ex = Execution(ring_trace(4, rounds=2, work_per_hop=1))
        # token fully serialises the execution: hop k < hop k+1
        work = by_label(ex, "work")
        assert work.width == 4

    def test_token_serialises(self):
        ex = Execution(ring_trace(3, rounds=1))
        # first node's work precedes last node's work through the token
        assert ex.precedes((0, 1), (2, 2))

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            ring_trace(1)


class TestPipeline:
    def test_items_flow(self):
        ex = Execution(pipeline_trace(3, items=3))
        items = by_label_prefix(ex, "item")
        assert set(items) == {"item0", "item1", "item2"}
        # each item's interval spans all stages
        assert all(iv.width == 3 for iv in items.values())

    def test_item_order_preserved_per_stage(self):
        ex = Execution(pipeline_trace(3, items=3))
        items = by_label_prefix(ex, "item")
        an = SynchronizationAnalyzer(ex)
        # R2: each stage handles item k before item k+1
        assert an.holds("R2", items["item0"], items["item1"])

    def test_needs_two_stages(self):
        with pytest.raises(ValueError):
            pipeline_trace(1)


class TestBroadcast:
    def test_rounds_ordered(self):
        ex = Execution(broadcast_trace(4, rounds=2))
        an = SynchronizationAnalyzer(ex)
        r0 = by_label_prefix(ex, "bcast0")["bcast0"]
        r1 = by_label_prefix(ex, "bcast1")["bcast1"]
        # the ack fan-in makes round 0 wholly precede round 1's sends
        assert an.holds("R2", r0, r1)

    def test_root_validation(self):
        with pytest.raises(ValueError):
            broadcast_trace(3, root=5)
        with pytest.raises(ValueError):
            broadcast_trace(1)


class TestClientServer:
    def test_all_requests_served(self):
        tr = client_server_trace(3, requests_per_client=2, seed=4)
        ex = Execution(tr)
        served = by_label_prefix(ex, "handle:")
        assert len(served) == 3  # one label per client
        assert len(tr.messages) == 3 * 2 * 2  # req + resp per request

    def test_request_precedes_response(self):
        ex = Execution(client_server_trace(2, requests_per_client=1, seed=0))
        req = by_label(ex, "req:c1#1")
        done = by_label(ex, "done:c1")
        assert SynchronizationAnalyzer(ex).holds("R1", req, done)


class TestBarrier:
    def test_phases_strongly_ordered(self):
        ex = Execution(barrier_trace(4, phases=3, work_per_phase=2))
        an = SynchronizationAnalyzer(ex)
        p0 = by_label(ex, "phase0")
        p1 = by_label(ex, "phase1")
        p2 = by_label(ex, "phase2")
        # the barrier makes R1 — the strongest relation — hold between
        # consecutive phases: the canonical workload for it
        assert an.holds("R1", p0, p1)
        assert an.holds("R1", p1, p2)
        assert an.holds("R1", p0, p2)

    def test_same_phase_not_ordered(self):
        ex = Execution(barrier_trace(3, phases=2))
        an = SynchronizationAnalyzer(ex)
        p0 = by_label(ex, "phase0")
        p1 = by_label(ex, "phase1")
        assert not an.holds("R1", p1, p0)


class TestLayered:
    def test_round_causality(self):
        ex = Execution(layered_trace(2, 2, periods=2))
        an = SynchronizationAnalyzer(ex)
        s0 = by_label(ex, "sample0")
        a0 = by_label(ex, "apply0")
        assert an.holds("R1(U,L)", s0, a0)

    def test_layout(self):
        tr = layered_trace(3, 2, periods=1)
        assert tr.num_nodes == 6  # 3 sensors + controller + 2 actuators

    def test_validation(self):
        with pytest.raises(ValueError):
            layered_trace(0, 1)
