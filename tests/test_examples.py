"""Smoke tests: every example script runs to completion.

Examples are part of the public contract; this module executes each
one in-process (stdout captured) and asserts key lines of its output,
so a refactor that breaks a walkthrough fails CI rather than a reader.
"""

import runpy
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), path
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "R1(X, Y)      = True" in out
        assert "Strongest relations" in out
        assert "integer comparison" in out

    def test_paper_figures(self, capsys):
        out = run_example("paper_figures.py", capsys)
        assert "Figure 1" in out and "Figure 2" in out and "Figure 3" in out
        assert "C1(L_X) == C1(X): True" in out

    def test_air_defense(self, capsys):
        out = run_example("air_defense.py", capsys)
        assert "engagement verdict: SAFE" in out
        assert "engagement verdict: UNSAFE" in out

    def test_multimedia_sync(self, capsys):
        out = run_example("multimedia_sync.py", capsys)
        assert "0 violation(s)" in out
        assert "disorder window = 2, lag tolerance = 1" in out

    def test_mutual_exclusion(self, capsys):
        out = run_example("mutual_exclusion.py", capsys)
        assert "exclusion HOLDS" in out
        assert "exclusion VIOLATED" in out

    def test_online_monitoring(self, capsys):
        out = run_example("online_monitoring.py", capsys)
        assert "offline cross-check agrees: True" in out

    def test_predicate_detection(self, capsys):
        out = run_example("predicate_detection.py", capsys)
        assert "the two views agree: True" in out
        assert "fast path" in out

    def test_realtime_deadlines(self, capsys):
        out = run_example("realtime_deadlines.py", capsys)
        assert "[PASS] round0" in out
        assert "temporal=False" in out

    def test_mobile_roaming(self, capsys):
        out = run_example("mobile_roaming.py", capsys)
        assert "roaming verdict: CORRECT" in out
        assert "roaming verdict: VIOLATED" in out
        assert "decided at node" in out

    def test_complexity_reproduction(self, capsys):
        out = run_example("complexity_reproduction.py", capsys)
        assert "Theorem 20" in out
        assert "fitted exponent (linear)" in out
        assert "amortized after" in out
