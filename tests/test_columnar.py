"""Columnar kernels and the parallel executor vs the reference engines.

Property tests for the PR-2 substrate: the one-pass columnar cut fill
(:func:`repro.core.cuts.cut_stats` and its raw-array variants), the
per-pair gather kernel (:func:`repro.core.pairwise.pairwise_verdicts`),
and the :class:`~repro.core.parallel.ParallelBatchExecutor` must agree
with the per-interval folds and the definition-level
:class:`~repro.core.naive.NaiveEvaluator` on random executions — over
all 8 base relations and all 32 family members.

Process-pool startup is far too slow for a per-example Hypothesis
property, so the executor itself is exercised on a deterministic
multi-seed sweep (serial fallback and 2-worker pool against the same
query lists) while the kernels it is built from get the full
property-based treatment.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings

from repro.core.cuts import (
    CutStats,
    batch_quadruples,
    cut_stats,
    cut_stats_from_arrays,
    cut_stats_from_extrema,
    cuts_of,
)
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.naive import NaiveEvaluator
from repro.core.pairwise import pairwise_verdicts
from repro.core.parallel import ParallelBatchExecutor
from repro.core.relations import BASE_RELATIONS, FAMILY32
from repro.events.poset import Execution
from repro.simulation.workloads import random_trace

from .strategies import execution_with_intervals, execution_with_pair

ALL_SPECS = list(BASE_RELATIONS) + list(FAMILY32)


def _assert_stats_match_folds(ex, intervals, stats: CutStats) -> None:
    num_nodes = ex.num_nodes
    for i, iv in enumerate(intervals):
        quad = cuts_of(iv)
        np.testing.assert_array_equal(stats.c1[i], quad.c1.vector)
        np.testing.assert_array_equal(stats.c2[i], quad.c2.vector)
        np.testing.assert_array_equal(stats.c3[i], quad.c3.vector)
        np.testing.assert_array_equal(stats.c4[i], quad.c4.vector)
        first = np.zeros(num_nodes, dtype=np.int64)
        last = np.zeros(num_nodes, dtype=np.int64)
        for node in iv.node_set:
            first[node] = iv.first_at(node)
            last[node] = iv.last_at(node)
        np.testing.assert_array_equal(stats.first[i], first)
        np.testing.assert_array_equal(stats.last[i], last)


class TestColumnarCutFill:
    @given(execution_with_intervals(k=4))
    @settings(max_examples=60, deadline=None)
    def test_cut_stats_matches_per_interval_folds(self, ex_ivs):
        ex, intervals = ex_ivs
        _assert_stats_match_folds(ex, intervals, cut_stats(ex, intervals))

    @given(execution_with_intervals(k=3))
    @settings(max_examples=40, deadline=None)
    def test_raw_array_variants_match(self, ex_ivs):
        ex, intervals = ex_ivs
        fwd, rev = ex.forward_table, ex.reverse_table
        reference = cut_stats(ex, intervals)
        from_ids = cut_stats_from_arrays(
            fwd.data, rev.data, fwd.offsets, fwd.lengths,
            [sorted(iv.ids) for iv in intervals],
        )
        from_extrema = cut_stats_from_extrema(
            fwd.data, rev.data, fwd.offsets, fwd.lengths,
            [
                (
                    iv.node_set,
                    tuple(iv.first_at(n) for n in iv.node_set),
                    tuple(iv.last_at(n) for n in iv.node_set),
                )
                for iv in intervals
            ],
        )
        for got in (from_ids, from_extrema):
            for name in ("c1", "c2", "c3", "c4", "first", "last"):
                np.testing.assert_array_equal(
                    getattr(got, name), getattr(reference, name)
                )

    @given(execution_with_intervals(k=3))
    @settings(max_examples=30, deadline=None)
    def test_batch_quadruples_matches_folds(self, ex_ivs):
        ex, intervals = ex_ivs
        for quad, iv in zip(batch_quadruples(ex, intervals), intervals, strict=True):
            expect = cuts_of(iv)
            for name in ("c1", "c2", "c3", "c4"):
                np.testing.assert_array_equal(
                    getattr(quad, name).vector, getattr(expect, name).vector
                )


class TestGatherKernelVsNaive:
    @given(execution_with_pair())
    @settings(max_examples=50, deadline=None)
    def test_base_relations_match_naive(self, ex_pair):
        ex, x, y = ex_pair
        naive = NaiveEvaluator(ex)
        stats = cut_stats(ex, [x, y])
        for rel in BASE_RELATIONS:
            got = pairwise_verdicts(stats, rel, [0], [1])
            assert bool(got[0]) == naive.evaluate(rel, x, y), rel

    @given(execution_with_pair())
    @settings(max_examples=25, deadline=None)
    def test_family32_batch_matches_naive(self, ex_pair):
        ex, x, y = ex_pair
        naive = SynchronizationAnalyzer(
            ex, engine="naive", check_disjoint=False
        )
        queries = [(spec, x, y) for spec in ALL_SPECS]
        # the serial executor path exercises proxy resolution + the
        # columnar fill + the gather kernel, no pool
        serial = ParallelBatchExecutor(ex, jobs=1).execute(
            queries, check_disjoint=False
        )
        expected = [naive.holds(s, x, y) for s, x, y in queries]
        assert serial == expected


class TestParallelExecutor:
    def test_jobs_clamped_to_cpu_count(self):
        """Default clamp caps workers at the core count (oversubscribed
        pools measured slower than serial on a 1-core host); clamp=False
        keeps the explicit request."""
        import os

        ex = Execution(random_trace(2, events_per_node=4, seed=2))
        cores = os.cpu_count() or 1
        with ParallelBatchExecutor(ex, jobs=4096) as px:
            assert px.jobs == cores
        with ParallelBatchExecutor(ex, jobs=4096, clamp=False) as px:
            assert px.jobs == 4096
        with ParallelBatchExecutor(ex) as px:  # default = cpu_count
            assert px.jobs == cores

    def test_pool_matches_serial_and_scalar_over_seeds(self):
        """2-worker pool vs serial fallback vs scalar engine, all 40
        specs, several random executions (deterministic seeds)."""
        for seed in (3, 17, 29):
            rng = np.random.default_rng(seed)
            ex = Execution(
                random_trace(4, events_per_node=12, msg_prob=0.4, seed=seed)
            )
            an = SynchronizationAnalyzer(ex, check_disjoint=False)
            ids = sorted(ex.iter_ids())
            intervals = [
                an.interval([ids[int(i)] for i in rng.choice(
                    len(ids), size=min(4, len(ids)), replace=False)])
                for _ in range(12)
            ]
            queries = []
            for _ in range(200):
                i, j = rng.choice(len(intervals), size=2, replace=False)
                spec = ALL_SPECS[int(rng.integers(len(ALL_SPECS)))]
                queries.append((spec, intervals[int(i)], intervals[int(j)]))

            scalar = [an.holds(s, x, y) for s, x, y in queries]
            # clamp=False: exercise real pool mechanics even on 1-core CI
            with ParallelBatchExecutor(
                ex, jobs=2, min_parallel=1, clamp=False
            ) as px:
                assert px.execute(queries, check_disjoint=False) == scalar
            serial = ParallelBatchExecutor(ex, jobs=1).execute(
                queries, check_disjoint=False
            )
            assert serial == scalar

    def test_threshold_falls_back_to_serial(self):
        ex = Execution(random_trace(3, events_per_node=8, seed=1))
        an = SynchronizationAnalyzer(ex, check_disjoint=False)
        ids = sorted(ex.iter_ids())
        x = an.interval(ids[: len(ids) // 2])
        y = an.interval(ids[len(ids) // 2:])
        queries = [(r, x, y) for r in BASE_RELATIONS]
        px = ParallelBatchExecutor(ex, jobs=4, min_parallel=10**6)
        try:
            got = px.execute(queries, check_disjoint=False)
            assert px._resources["pool"] is None  # never spun up
            assert got == [an.holds(r, x, y) for r, x, y in queries]
        finally:
            px.close()

    def test_version_invalidation_republishes(self):
        from repro.events.builder import TraceBuilder

        b = TraceBuilder(2)
        e0 = b.internal(0)
        m = b.send(0)
        r = b.recv(1, m)
        ex = Execution(b.build())
        an = SynchronizationAnalyzer(ex)
        x = an.interval([e0])
        px = ParallelBatchExecutor(
            an.context, jobs=2, min_parallel=1, clamp=False
        )
        try:
            px.execute([("R1", x, an.interval([r]))])
            version_before = px._published_version
            e1 = b.internal(1)
            e2 = b.internal(0)
            an.context.extend(b.build())
            y = an.interval([e1, e2])
            queries = [("R1", x, y), ("R4", x, y)]
            got = px.execute(queries)
            assert px._published_version != version_before
            assert got == an.batch_holds(queries)
        finally:
            px.close()

    def test_analyzer_delegates_above_threshold(self):
        ex = Execution(random_trace(4, events_per_node=10, seed=5))
        serial_an = SynchronizationAnalyzer(ex, check_disjoint=False)
        par_an = SynchronizationAnalyzer(
            ex, check_disjoint=False, jobs=2, parallel_threshold=8
        )
        try:
            ids = sorted(ex.iter_ids())
            x = serial_an.interval(ids[: len(ids) // 2])
            y = serial_an.interval(ids[len(ids) // 2:])
            queries = [(s, x, y) for s in ALL_SPECS]
            assert par_an.batch_holds(queries) == serial_an.batch_holds(queries)
            assert par_an._parallel is not None  # the pool path was taken
        finally:
            par_an.close()
