"""Tests for the implication hierarchy and pruned batch evaluation."""

import pytest
from hypothesis import given, settings

from repro.core.hierarchy import (
    BASE_IMPLICATIONS,
    base_dag,
    evaluate_all_pruned,
    family_dag,
    implies,
    maximal_true,
)
from repro.core.linear import LinearEvaluator
from repro.core.naive import NaiveEvaluator
from repro.core.relations import BASE_RELATIONS, FAMILY32, Relation, RelationSpec
from repro.nonatomic.proxies import Proxy

from .strategies import execution_with_pair


class TestDagStructure:
    def test_base_nodes(self):
        g = base_dag()
        assert set(g.nodes) == set(BASE_RELATIONS)

    def test_synonym_cycles(self):
        assert implies(Relation.R1, Relation.R1P)
        assert implies(Relation.R1P, Relation.R1)
        assert implies(Relation.R4, Relation.R4P)
        assert implies(Relation.R4P, Relation.R4)

    def test_chain_r1_to_r4(self):
        assert implies(Relation.R1, Relation.R2P)
        assert implies(Relation.R1, Relation.R4)
        assert implies(Relation.R2P, Relation.R4)
        assert implies(Relation.R3, Relation.R4)

    def test_non_implications(self):
        assert not implies(Relation.R2, Relation.R3)
        assert not implies(Relation.R2P, Relation.R3P)
        assert not implies(Relation.R4, Relation.R1)

    def test_reflexive(self):
        for rel in BASE_RELATIONS:
            assert implies(rel, rel)

    def test_type_mixing_rejected(self):
        with pytest.raises(TypeError):
            implies(Relation.R1, FAMILY32[0])

    def test_family_dag_size(self):
        g = family_dag()
        assert g.number_of_nodes() == 32

    def test_proxy_monotonicity_edges(self):
        a = RelationSpec(Relation.R2, Proxy.U, Proxy.L)
        assert implies(a, RelationSpec(Relation.R2, Proxy.L, Proxy.L))
        assert implies(a, RelationSpec(Relation.R2, Proxy.U, Proxy.U))
        assert implies(a, RelationSpec(Relation.R4, Proxy.L, Proxy.U))

    def test_strongest_family_member(self):
        top = RelationSpec(Relation.R1, Proxy.U, Proxy.L)
        for spec in FAMILY32:
            assert implies(top, spec), spec


class TestSemanticSoundness:
    @settings(max_examples=80, deadline=None)
    @given(pair=execution_with_pair())
    def test_base_implications_hold_semantically(self, pair):
        """Every DAG edge is a true implication on every instance."""
        ex, x, y = pair
        naive = NaiveEvaluator(ex)
        results = {rel: naive.evaluate(rel, x, y) for rel in BASE_RELATIONS}
        for a, b in BASE_IMPLICATIONS:
            assert not (results[a] and not results[b]), (a, b)

    @settings(max_examples=50, deadline=None)
    @given(pair=execution_with_pair())
    def test_family_hierarchy_holds_semantically(self, pair):
        ex, x, y = pair
        naive = NaiveEvaluator(ex)
        results = {s: naive.evaluate_spec(s, x, y) for s in FAMILY32}
        g = family_dag()
        for a, b in g.edges:
            assert not (results[a] and not results[b]), (a, b)


class TestPrunedEvaluation:
    @settings(max_examples=50, deadline=None)
    @given(pair=execution_with_pair())
    def test_pruned_equals_exhaustive(self, pair):
        ex, x, y = pair
        lin = LinearEvaluator(ex)
        exhaustive = {s: lin.evaluate_spec(s, x, y) for s in FAMILY32}
        pruned, evaluations = evaluate_all_pruned(
            lambda s: lin.evaluate_spec(s, x, y), FAMILY32
        )
        assert pruned == exhaustive
        assert evaluations <= 32

    @settings(max_examples=30, deadline=None)
    @given(pair=execution_with_pair())
    def test_pruning_saves_work_when_extreme(self, pair):
        """If the strongest relation holds, pruning needs one call for
        the whole strongly-connected top; if the weakest fails, very few."""
        ex, x, y = pair
        lin = LinearEvaluator(ex)
        results, evaluations = evaluate_all_pruned(
            lambda s: lin.evaluate_spec(s, x, y), FAMILY32
        )
        if all(results.values()) or not any(results.values()):
            assert evaluations < 32

    def test_empty_universe(self):
        results, n = evaluate_all_pruned(lambda s: True, [])
        assert results == {} and n == 0

    def test_base_universe(self, message_exec):
        from repro.nonatomic.event import NonatomicEvent

        x = NonatomicEvent(message_exec, [(0, 1)])
        y = NonatomicEvent(message_exec, [(1, 2)])
        lin = LinearEvaluator(message_exec)
        results, _ = evaluate_all_pruned(
            lambda r: lin.evaluate(r, x, y), BASE_RELATIONS
        )
        assert all(results.values())  # x < y: everything holds


class TestMaximalTrue:
    def test_maximal_of_all_true(self):
        results = {s: True for s in FAMILY32}
        top = maximal_true(results)
        # R1(U,L) ≡ R1'(U,L) sit at the top (mutual synonyms)
        assert set(top) == {
            RelationSpec(Relation.R1, Proxy.U, Proxy.L),
            RelationSpec(Relation.R1P, Proxy.U, Proxy.L),
        }

    def test_maximal_of_none(self):
        assert maximal_true({s: False for s in FAMILY32}) == ()

    def test_maximal_mixed(self):
        results = {s: False for s in FAMILY32}
        weak = RelationSpec(Relation.R4, Proxy.L, Proxy.U)
        mid = RelationSpec(Relation.R2, Proxy.L, Proxy.U)
        results[weak] = True
        results[mid] = True
        results[RelationSpec(Relation.R4P, Proxy.L, Proxy.U)] = True
        top = maximal_true(results)
        assert mid in top
        assert weak not in top
