"""Tests for the ≪ relation (Definition 7): four forms, edge cases."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cuts import (
    Cut,
    ll,
    ll_form1,
    ll_form3,
    not_ll,
    not_ll_form2,
    not_ll_form4,
)

from .strategies import executions


@st.composite
def execution_with_two_cuts(draw):
    ex = draw(executions(max_nodes=4, max_ops=20))
    vecs = []
    for _ in range(2):
        vec = [
            draw(st.integers(0, ex.num_real(i) + 1))
            for i in range(ex.num_nodes)
        ]
        vecs.append(vec)
    return ex, Cut(ex, vecs[0]), Cut(ex, vecs[1])


class TestCanonicalForm:
    def test_strictly_below(self, message_exec):
        assert ll(Cut(message_exec, [1, 1]), Cut(message_exec, [2, 2]))

    def test_equal_component_blocks(self, message_exec):
        assert not ll(Cut(message_exec, [1, 1]), Cut(message_exec, [1, 2]))

    def test_zero_components_ignored(self, message_exec):
        assert ll(Cut(message_exec, [0, 1]), Cut(message_exec, [0, 2]))

    def test_bottom_ll_anything_nonbottom(self, message_exec):
        bottom = Cut(message_exec, [0, 0])
        assert ll(bottom, Cut(message_exec, [1, 0]))

    def test_nothing_ll_bottom(self, message_exec):
        bottom = Cut(message_exec, [0, 0])
        assert not ll(bottom, bottom)
        assert not ll(Cut(message_exec, [1, 1]), bottom)

    def test_not_ll_is_negation(self, message_exec):
        a, b = Cut(message_exec, [1, 1]), Cut(message_exec, [2, 2])
        assert ll(a, b) != not_ll(a, b)

    def test_proper_subset_insufficient(self, message_exec):
        """C ⊂ C' does not imply ≪: per-node strictness is required."""
        a, b = Cut(message_exec, [1, 2]), Cut(message_exec, [2, 2])
        assert a.issubset(b) and a != b
        assert not ll(a, b)


class TestFormEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(data=execution_with_two_cuts())
    def test_all_four_forms_agree(self, data):
        _ex, c, cp = data
        expected = ll(c, cp)
        assert ll_form1(c, cp) == expected
        assert not_ll_form2(c, cp) == (not expected)
        assert ll_form3(c, cp) == expected
        assert not_ll_form4(c, cp) == (not expected)

    @settings(max_examples=60, deadline=None)
    @given(data=execution_with_two_cuts())
    def test_irreflexive_except_bottom(self, data):
        """≪ is irreflexive: a cut is never strictly inside itself."""
        _ex, c, _cp = data
        assert not ll(c, c)

    @settings(max_examples=60, deadline=None)
    @given(data=execution_with_two_cuts())
    def test_semantics_surface_witness(self, data):
        """≪̸(C, C') iff some surface event of C (beyond ⊥) equals or
        happens locally after C's surface at that node — the reading
        Section 2.2's transitive arguments rely on."""
        _ex, c, cp = data
        witness = any(
            v >= 1 and v >= w for v, w in zip(c.vector, cp.vector, strict=True)
        ) or cp.is_bottom()
        assert not_ll(c, cp) == witness
