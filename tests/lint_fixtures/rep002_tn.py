# repro: dtype-strict
"""True negatives for REP002: explicit, canonical dtypes."""

import numpy as np

CLOCK_DTYPE = np.int32

canonical = np.zeros((4, 4), dtype=CLOCK_DTYPE)
positional = np.empty((4,), CLOCK_DTYPE)
indexing = np.arange(10, dtype=np.intp)
wide_on_purpose = np.asarray([1, 2, 3], dtype=np.int64)
flags = np.empty(6, dtype=bool)
follows_operands = np.stack([canonical, canonical])
same_shape = np.zeros_like(canonical)
cast = positional.astype(np.int64)
