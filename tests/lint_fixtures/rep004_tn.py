# repro: hot
"""True negatives for REP004: slotted, columnar, suppressed."""

from dataclasses import dataclass


class Slotted:
    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi


@dataclass(frozen=True, slots=True)
class SlottedRecord:
    lo: int
    hi: int


class TraceError(Exception):
    """Exception types are exempt from the __slots__ requirement."""


def collect(execution, acc=None):
    if acc is None:
        acc = []
    # repro-lint: disable=REP004 -- deliberately slow reference oracle
    for eid in execution.iter_ids():
        acc.append(eid)
    return acc


def columnar(table):
    # Row-wise NumPy work, not per-event Python iteration.
    return table.data.sum(axis=1)
