"""True positives for REP001: mutations without version discipline."""


class BadStateMutator:
    _REPRO_VERSIONED = {
        "version": "_version",
        "state": ("_trace",),
        "caches": ("_memo",),
        "guards": ("invalidate",),
    }
    __slots__ = ("_trace", "_memo", "_version")

    def __init__(self) -> None:
        self._trace = []
        self._memo = {}
        self._version = 0

    def append(self, item) -> None:
        # REP001: mutates state without bumping _version
        self._trace.append(item)

    def rebind(self, items) -> None:
        # REP001: rebinds state without bumping _version
        self._trace = list(items)

    def refill(self, key, value) -> None:
        # REP001: writes the cache with no bump, guard, or version check
        self._memo[key] = value

    def invalidate(self) -> None:
        self._memo.clear()
