"""True negatives for REP005: guarded or version-checked reads."""


class FreshReader:
    _REPRO_VERSIONED = {
        "version": "_version",
        "state": (),
        "caches": ("_verdicts",),
        "guards": ("invalidate", "_fresh"),
    }
    __slots__ = ("_verdicts", "_version", "_source")

    def __init__(self, source) -> None:
        self._verdicts = {}
        self._version = 0
        self._source = source

    def holds(self, pair):
        self._fresh()
        return self._verdicts.get(pair)

    def compare_first(self, pair):
        if self._version != self._source.version:
            self._verdicts.clear()
            self._version = self._source.version
        return self._verdicts.get(pair)

    def write_only(self, pair, verdict) -> None:
        self._fresh()
        self._verdicts[pair] = verdict

    def _fresh(self) -> None:
        if self._version != self._source.version:
            self._verdicts.clear()
            self._version = self._source.version

    def invalidate(self) -> None:
        self._verdicts.clear()
        self._version += 1
