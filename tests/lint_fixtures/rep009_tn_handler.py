# repro: frame-protocol
"""Balanced handler: dispatches exactly the types the peer constructs.

Uses both comparison shapes the rule understands: ``==`` against a
name bound from ``frame["type"]``, and membership in a literal tuple.
"""


def dispatch(frame: dict) -> str:
    ftype = frame["type"]
    if ftype == "hello":
        return "hi"
    if ftype in ("data",):
        return "stored"
    return "drop"
