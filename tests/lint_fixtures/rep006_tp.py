# repro: service-sockets
"""True positives for REP006: leak-prone socket/server acquisition."""

import asyncio
import socket


async def naked_listener(handler):
    # REP006: an exception before the server is published leaks it
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server


def naked_connect(host, port):
    # REP006: create_connection outside any with/try shield
    sock = socket.create_connection((host, port))
    sock.sendall(b"hello")
    return sock


def try_without_close(host, port):
    try:
        # REP006: the handler re-raises but never closes the socket
        sock = socket.create_connection((host, port))
        return sock
    except OSError:
        raise


async def connect_in_handler(host, port):
    try:
        pass
    except OSError:
        # REP006: acquisition in a handler is past the try's shield
        reader, writer = await asyncio.open_connection(host, port)
        return reader, writer
