"""REP008 true positives: spawned task handles that are lost.

A discarded handle, a local that is stored but never settled, and an
instance attribute no method of the project ever awaits or cancels.
"""

import asyncio


async def beat() -> None:
    await asyncio.sleep(0)


async def fire_and_forget() -> None:
    asyncio.create_task(beat())  # handle discarded outright


async def stored_but_dropped() -> None:
    t = asyncio.create_task(beat())
    if t is not None:  # inspected, never awaited/cancelled/handed on
        return


class Owner:
    def spawn(self) -> None:
        self._bg = asyncio.ensure_future(beat())  # .(_bg) never settled
