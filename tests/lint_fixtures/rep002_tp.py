# repro: dtype-strict
"""True positives for REP002: sloppy dtypes in a strict module."""

import numpy as np

CLOCK_DTYPE = np.int32

missing = np.zeros((4, 4))
platform_width = np.asarray([1, 2, 3], dtype=int)
hardcoded = np.empty(8, dtype=np.int32)
hardcoded_string = np.full((2, 2), 0, dtype="int32")
widened = np.arange(10).astype(int)
