"""True positives for REP003: leak-prone SharedMemory creation."""

from multiprocessing import shared_memory


def naked_create(nbytes):
    # REP003: an exception between here and publication leaks the segment
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    return shm


def try_without_unlink(nbytes):
    try:
        # REP003: the cleanup path closes but never unlinks
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        return shm
    except Exception:
        shm.close()
        raise
