# repro: hot
"""True positives for REP004: interpreter-bound habits in a hot module."""


class PerIntervalRecord:
    # REP004: no __slots__, instantiated in bulk
    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi


def collect(execution, acc=[]):
    # REP004 (x2): mutable default + per-event Python loop
    for eid in execution.iter_ids():
        acc.append(eid)
    return acc


def widths(execution):
    # REP004: per-event comprehension
    return [len(e) for e in execution.events]
