"""REP008 clean twin: every spawned handle is settled somewhere.

Awaited locals, gathered lists, a cancelled-then-awaited attribute
(settled in a *different* method), and structured TaskGroup spawns.
"""

import asyncio


async def beat() -> None:
    await asyncio.sleep(0)


async def awaited() -> None:
    t = asyncio.create_task(beat())
    await t


async def gathered() -> None:
    tasks = [asyncio.create_task(beat()) for _ in range(3)]
    await asyncio.gather(*tasks)


async def returned() -> "asyncio.Task":
    return asyncio.create_task(beat())


class Owner:
    def spawn(self) -> None:
        self._task = asyncio.ensure_future(beat())

    async def stop(self) -> None:
        self._task.cancel()
        await asyncio.wait_for(self._task, timeout=1.0)


async def grouped() -> None:
    async with asyncio.TaskGroup() as tg:
        tg.create_task(beat())  # the group awaits its children
