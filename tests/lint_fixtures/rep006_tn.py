# repro: service-sockets
"""True negatives for REP006: every acquisition path guarantees close."""

import asyncio
import socket


async def published_listener(handler):
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    try:
        return server
    except BaseException:
        server.close()
        raise


def with_ownership(host, port):
    with socket.create_connection((host, port)) as sock:
        sock.sendall(b"hello")


def shielded_connect(host, port):
    sock = None
    try:
        sock = socket.create_connection((host, port))
        sock.sendall(b"hello")
    finally:
        if sock is not None:
            sock.close()


async def tail_connection(host, port):
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        return None
    try:
        return await reader.read(1)
    finally:
        writer.close()
        await writer.wait_closed()
