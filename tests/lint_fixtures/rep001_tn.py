"""True negatives for REP001: the protocol followed, both spellings."""


def versioned_state(**kwargs):
    def deco(cls):
        return cls

    return deco


@versioned_state(
    version="_version",
    state=("_trace",),
    caches=("_memo",),
    guards=("invalidate", "_fresh"),
)
class GoodDecorated:
    __slots__ = ("_trace", "_memo", "_version")

    def __init__(self) -> None:
        self._trace = []
        self._memo = {}
        self._version = 0

    def append(self, item) -> None:
        self._trace.append(item)
        self._version += 1

    def refill(self, key, value) -> None:
        self._fresh()
        self._memo[key] = value

    def _fresh(self) -> None:
        pass

    def invalidate(self) -> None:
        self._memo.clear()


class GoodAttrRegistered:
    _REPRO_VERSIONED = {
        "version": "_version",
        "state": ("_counts",),
        "caches": ("_snapshot",),
        "guards": (),
    }
    __slots__ = ("_counts", "_snapshot", "_snapshot_version", "_version")

    def __init__(self) -> None:
        self._counts = [0]
        self._snapshot = None
        self._snapshot_version = -1
        self._version = 0

    def advance(self) -> None:
        self._counts[0] += 1
        self._version += 1

    def snapshot(self):
        if self._snapshot_version != self._version:
            self._snapshot = tuple(self._counts)
            self._snapshot_version = self._version
        return self._snapshot
