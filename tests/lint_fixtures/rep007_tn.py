"""REP007 clean twin: the same blocking work, offloaded correctly.

Passing a tainted function *as an argument* to ``run_in_executor`` /
``to_thread`` creates no call edge, so offloaded work never fires.
"""

import asyncio
import os


def flush(fd: int) -> None:
    os.fsync(fd)


class Log:
    def __init__(self, path: str) -> None:
        self._fh = open(path, "ab")

    def sync(self) -> None:
        os.fsync(self._fh.fileno())


class Service:
    def __init__(self, log: Log) -> None:
        self.log = log

    async def ingest(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.log.sync)


async def offloaded(fd: int) -> None:
    await asyncio.to_thread(flush, fd)


async def cooperative() -> None:
    await asyncio.sleep(0.1)  # the non-blocking sleep
