# repro: hot, dtype-strict
"""True positives in the batched-kernel module shape.

Mirrors ``repro.core.family``: one module carrying *both* gate pragmas
on a single line, module-level operand tables, stacked-matrix kernel
functions, and a small per-context cache class.  Each habit below is
exactly the regression the dual-tagged kernel must never grow back.
"""

import numpy as np

OPERANDS = ("c1", "c2", "first")


class VerdictScratch:
    # REP004: instantiated per fill, but no __slots__
    def __init__(self, rows):
        self.rows = rows
        self.hits = 0


def operand_tensor(execution, intervals, scratch=[]):
    # REP004 (x2): mutable default accumulator + per-event Python loop
    for eid in execution.iter_ids():
        scratch.append(eid)
    # REP002: kernel matrix without an explicit dtype
    return np.zeros((len(intervals), len(OPERANDS)))


def verdict_matrix(ops, xs, ys):
    # REP002: index vector materialised at the default width
    cols = np.array(range(len(xs)))
    # REP004: per-event comprehension over the event table
    widths = [len(e) for e in ys.events]
    return ops[cols], widths
