# repro: frame-protocol
"""Handler half of the cross-file REP009 fixture pair.

Dispatches on ``hello`` (constructed by the peer module) and ``bye``
(which nothing ever constructs — a dead handler, or a sender typo).
"""


def dispatch(frame: dict) -> str:
    ftype = frame.get("type")
    if ftype == "hello":
        return "hi"
    if ftype == "bye":
        return "gone"
    return "drop"
