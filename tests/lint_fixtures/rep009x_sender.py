# repro: frame-protocol
"""Sender half of the cross-file REP009 fixture pair.

Constructs ``hello`` (handled by the peer module) and ``snapshot``
(which no handler anywhere dispatches on — a silently dropped frame).
Lint this file *together with* :mod:`rep009x_handler` to exercise the
cross-module set comparison; REP009 is silent on a lone module.
"""


def hello_frame(version: int) -> dict:
    return {"type": "hello", "version": version}


def snapshot_frame(state: dict) -> dict:
    return {"type": "snapshot", "state": state}
