# repro: frame-protocol
"""Balanced sender: every constructed type has a handler in the peer."""


def hello_frame(version: int) -> dict:
    return {"type": "hello", "version": version}


def data_frame(payload: dict) -> dict:
    return {"type": "data", "payload": payload}
