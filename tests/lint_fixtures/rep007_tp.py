"""REP007 true positive: coroutines reach blocking primitives.

Three shapes: a direct seed call, a transitive module-level chain, and
a chain through an attribute-typed collaborator (the EventLog shape).
"""

import os
import time


def flush(fd: int) -> None:
    os.fsync(fd)


def persist(fd: int) -> None:
    flush(fd)


async def transitive(fd: int) -> None:
    persist(fd)  # async -> persist -> flush -> os.fsync


async def direct() -> None:
    time.sleep(0.1)  # direct blocking seed on the loop


class Log:
    def __init__(self, path: str) -> None:
        self._fh = open(path, "ab")

    def sync(self) -> None:
        os.fsync(self._fh.fileno())


class Service:
    def __init__(self, log: Log) -> None:
        self.log = log

    async def ingest(self) -> None:
        self.log.sync()  # attr-typed chain: Service.log -> Log.sync -> fsync
