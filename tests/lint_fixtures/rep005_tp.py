"""True positives for REP005: cache reads with no freshness check."""


class StaleReader:
    _REPRO_VERSIONED = {
        "version": "_version",
        "state": (),
        "caches": ("_verdicts",),
        "guards": ("invalidate", "_fresh"),
    }
    __slots__ = ("_verdicts", "_version")

    def __init__(self) -> None:
        self._verdicts = {}
        self._version = 0

    def holds(self, pair):
        # REP005: serves a possibly-stale memo; no guard, no comparison
        return self._verdicts.get(pair)

    def late_check(self, pair, current):
        # REP005: the read happens before the version comparison
        cached = self._verdicts.get(pair)
        if self._version != current:
            self._fresh()
        return cached

    def _fresh(self) -> None:
        self._verdicts.clear()

    def invalidate(self) -> None:
        self._verdicts.clear()
        self._version += 1
