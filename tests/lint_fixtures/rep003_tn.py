"""True negatives for REP003: creation dominated by cleanup."""

from contextlib import closing
from multiprocessing import shared_memory


def guarded_create(nbytes):
    shms = []
    try:
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        shms.append(shm)
        return shms
    except BaseException:
        for s in shms:
            s.close()
            s.unlink()
        raise


def with_create(nbytes):
    with closing(shared_memory.SharedMemory(create=True, size=nbytes)) as shm:
        try:
            return bytes(shm.buf[:1])
        finally:
            shm.unlink()


def attach_only(name):
    # Consumer side: attaching is out of scope for REP003.
    return shared_memory.SharedMemory(name=name)
