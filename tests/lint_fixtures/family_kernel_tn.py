# repro: hot, dtype-strict
"""True negatives in the batched-kernel module shape.

The clean counterpart of ``family_kernel_tp.py``: the idiom
``repro.core.family`` actually uses — explicit int64 operand tensors,
``np.intp`` gather indices, slotted cache state, and vectorized
reductions with no per-event Python loops.
"""

import numpy as np

OPERANDS = ("c1", "c2", "first")
OPERAND_INDEX = {name: i for i, name in enumerate(OPERANDS)}


class VerdictScratch:
    __slots__ = ("rows", "hits")

    def __init__(self, rows):
        self.rows = rows
        self.hits = 0


def operand_tensor(stats, k):
    out = np.zeros((k, len(OPERANDS), stats.shape[-1]), dtype=np.int64)
    for i in range(len(OPERANDS)):  # bounded by the operand table, not events
        out[:, i] = stats[i::len(OPERANDS)]
    out.setflags(write=False)
    return out


def verdict_matrix(ops, xs, ys):
    cols = np.fromiter(range(xs.shape[0]), np.intp, count=xs.shape[0])
    y = ops[ys[:, None], cols[None, :]]
    x = ops[xs[:, None], cols[None, :]]
    return np.all(y >= x, axis=-1)
