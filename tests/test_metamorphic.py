"""Metamorphic properties of the relations.

Beyond engine agreement, the relations obey decomposition laws that
follow from their quantifier structure.  These give an independent
correctness signal: the linear engine is checked against *algebra*, not
against another implementation.

Laws tested (X, X'', Y, Y'' disjoint from the opposite side):

* union in the universal argument distributes conjunctively:
  ``R1(X ∪ X'', Y) = R1(X, Y) ∧ R1(X'', Y)`` and dually for Y;
* union in the existential argument distributes disjunctively:
  ``R4(X ∪ X'', Y) = R4(X, Y) ∨ R4(X'', Y)``;
* mixed forms: ``R2(X ∪ X'', Y) = R2(X, Y) ∧ R2(X'', Y)`` (universal
  over x), ``R3(X ∪ X'', Y) = R3(X, Y) ∨ R3(X'', Y)`` (existential
  over x), and dually on the Y side;
* monotonicity: growing the existential side never falsifies a
  relation; growing the universal side never validates one;
* singleton coherence: on singletons, all eight relations collapse to
  the atomic ``x ≺ y``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS, Relation
from repro.nonatomic.event import NonatomicEvent

from .strategies import executions


@st.composite
def execution_with_split_pair(draw):
    """Execution plus X, X'' (disjoint) and Y, all pairwise disjoint."""
    ex = draw(executions(max_nodes=4, max_ops=30))
    ids = sorted(ex.iter_ids())
    if len(ids) < 3:
        from repro.events.builder import TraceBuilder

        b = TraceBuilder(ex.num_nodes)
        for ev in ex.trace.iter_events():
            b.internal(ev.node)
        while sum(b.count(i) for i in range(ex.num_nodes)) < 3:
            b.internal(0)
        ex = b.execute()
        ids = sorted(ex.iter_ids())
    picks = draw(
        st.lists(st.integers(0, len(ids) - 1), min_size=3,
                 max_size=min(12, len(ids)), unique=True)
    )
    groups = {0: [], 1: [], 2: []}
    for pos, p in enumerate(picks):
        groups[pos % 3 if pos >= 3 else pos].append(ids[p])
    x1 = NonatomicEvent(ex, groups[0])
    x2 = NonatomicEvent(ex, groups[1])
    y = NonatomicEvent(ex, groups[2])
    union = NonatomicEvent(ex, sorted(x1.ids | x2.ids))
    return ex, x1, x2, union, y


class TestUnionLaws:
    @settings(max_examples=120, deadline=None)
    @given(data=execution_with_split_pair())
    def test_x_side_distribution(self, data):
        ex, x1, x2, union, y = data
        lin = LinearEvaluator(ex)
        # universal over x with per-x witnesses: conjunctive (two-way)
        for rel in (Relation.R1, Relation.R1P, Relation.R2):
            assert lin.evaluate(rel, union, y) == (
                lin.evaluate(rel, x1, y) and lin.evaluate(rel, x2, y)
            ), rel
        # existential over x: disjunctive (two-way)
        for rel in (Relation.R3, Relation.R4, Relation.R4P):
            assert lin.evaluate(rel, union, y) == (
                lin.evaluate(rel, x1, y) or lin.evaluate(rel, x2, y)
            ), rel
        # R2' needs ONE y above all of the union: only ⟹ holds
        # (the parts may use different witnesses)
        if lin.evaluate(Relation.R2P, union, y):
            assert lin.evaluate(Relation.R2P, x1, y)
            assert lin.evaluate(Relation.R2P, x2, y)
        # R3' over the union mixes witnesses: only ⟸ holds
        if lin.evaluate(Relation.R3P, x1, y) or lin.evaluate(
            Relation.R3P, x2, y
        ):
            assert lin.evaluate(Relation.R3P, union, y)

    @settings(max_examples=120, deadline=None)
    @given(data=execution_with_split_pair())
    def test_y_side_distribution(self, data):
        """Same laws with the roles swapped (union on the Y side)."""
        ex, y1, y2, union, x = data
        lin = LinearEvaluator(ex)
        # universal over y with per-y witnesses: conjunctive (two-way)
        for rel in (Relation.R1, Relation.R1P, Relation.R3P):
            assert lin.evaluate(rel, x, union) == (
                lin.evaluate(rel, x, y1) and lin.evaluate(rel, x, y2)
            ), rel
        # existential over y: disjunctive (two-way)
        for rel in (Relation.R2P, Relation.R4, Relation.R4P):
            assert lin.evaluate(rel, x, union) == (
                lin.evaluate(rel, x, y1) or lin.evaluate(rel, x, y2)
            ), rel
        # R3 needs ONE x below all of the union: only ⟹ holds
        if lin.evaluate(Relation.R3, x, union):
            assert lin.evaluate(Relation.R3, x, y1)
            assert lin.evaluate(Relation.R3, x, y2)
        # R2 over the union mixes per-x witnesses: only ⟸ holds
        if lin.evaluate(Relation.R2, x, y1) or lin.evaluate(
            Relation.R2, x, y2
        ):
            assert lin.evaluate(Relation.R2, x, union)

    @settings(max_examples=80, deadline=None)
    @given(data=execution_with_split_pair())
    def test_r2_r3p_mixed_laws(self, data):
        """R2 distributes conjunctively over X but not simply over Y;
        R3' distributes conjunctively over Y but not simply over X —
        check the directions that do hold."""
        ex, a, b, union, other = data
        lin = LinearEvaluator(ex)
        # R2 over X union: conjunctive (∀x binds first)
        assert lin.evaluate(Relation.R2, union, other) == (
            lin.evaluate(Relation.R2, a, other)
            and lin.evaluate(Relation.R2, b, other)
        )
        # R3' over Y union: conjunctive (∀y binds first)
        assert lin.evaluate(Relation.R3P, other, union) == (
            lin.evaluate(Relation.R3P, other, a)
            and lin.evaluate(Relation.R3P, other, b)
        )


class TestMonotonicity:
    @settings(max_examples=80, deadline=None)
    @given(data=execution_with_split_pair())
    def test_growing_existential_y_preserves(self, data):
        """If R2/R2'/R4 hold for Y, they hold for Y ∪ Y''."""
        ex, y1, y2, union, x = data
        lin = LinearEvaluator(ex)
        for rel in (Relation.R2, Relation.R2P, Relation.R4):
            if lin.evaluate(rel, x, y1):
                assert lin.evaluate(rel, x, union), rel

    @settings(max_examples=80, deadline=None)
    @given(data=execution_with_split_pair())
    def test_growing_universal_x_preserves_falsity(self, data):
        """If R1/R2 fail for X, they fail for X ∪ X''."""
        ex, x1, x2, union, y = data
        lin = LinearEvaluator(ex)
        for rel in (Relation.R1, Relation.R2):
            if not lin.evaluate(rel, x1, y):
                assert not lin.evaluate(rel, union, y), rel


class TestSingletonCoherence:
    @settings(max_examples=60, deadline=None)
    @given(ex=executions(max_nodes=4, max_ops=20))
    def test_all_relations_collapse_to_precedence(self, ex):
        lin = LinearEvaluator(ex)
        ids = sorted(ex.iter_ids())
        sample = ids[:: max(1, len(ids) // 6)]
        for a in sample:
            for b in sample:
                if a == b:
                    continue
                x = NonatomicEvent(ex, [a])
                y = NonatomicEvent(ex, [b])
                expected = ex.precedes(a, b)
                for rel in BASE_RELATIONS:
                    assert lin.evaluate(rel, x, y) == expected, (rel, a, b)
