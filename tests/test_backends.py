"""Cross-backend equivalence, seam enforcement, and trace reduction.

The :class:`~repro.backends.base.CausalityBackend` seam promises that
every encoding of ``≺`` is observationally identical: the vector-clock
substrate and the breakpoint-compressed reachability encoding must
agree on pairwise order, timestamp rows, Table-2 cut fills, and — end
to end — all 40 relation verdicts (the 32-family plus the 8 base
relations), including after :meth:`Execution.extend` growth.

The seam itself is enforced structurally: no module under
``repro.core``, ``repro.monitor``, or ``repro.globalstates`` may import
the clock substrate (``ClockTable``/``GrowableClockTable`` or the
``repro.events.clocks`` module) — everything flows through
:mod:`repro.backends`.

:func:`~repro.backends.reduction.reduce_trace` must preserve every
verdict for label-selected intervals while merging commuting adjacent
same-node internal events, and must shrink a commuting-heavy workload
by at least 30%.
"""

from __future__ import annotations

import ast
import itertools
from pathlib import Path

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.backends import (
    BACKENDS,
    CommutativityRules,
    ReachabilityBackend,
    VectorClockBackend,
    make_backend,
    reduce_trace,
)
from repro.backends.base import default_backend_name
from repro.core.context import AnalysisContext
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.relations import BASE_RELATIONS, FAMILY32
from repro.events.builder import TraceBuilder
from repro.events.poset import Execution
from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.selection import by_label

from .strategies import build_trace_from_ops, execution_with_pair, executions

_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

_ops = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 2), st.integers(0, 3)),
    min_size=2,
    max_size=25,
)


def _replay(num_nodes, ops):
    """Deterministic replay where every prefix of ``ops`` yields a
    trace that the full replay extends append-only (one internal per
    node first; op times depend only on the op's position)."""
    b = TraceBuilder(num_nodes)
    in_flight = [[] for _ in range(num_nodes)]
    t = 0.0
    for node in range(num_nodes):
        t += 1.0
        b.internal(node, time=t)
    for node, action, aux in ops:
        node %= num_nodes
        t += 1.0
        if action == 1 and num_nodes > 1:
            dst = aux % num_nodes
            if dst == node:
                dst = (dst + 1) % num_nodes
            in_flight[dst].append(b.send(node, time=t))
        elif action == 2 and in_flight[node]:
            b.recv(node, in_flight[node].pop(0), time=t)
        else:
            b.internal(node, time=t)
    return b.build()


def _all_verdicts(an, x, y):
    """All 40 verdicts: the 32-family plus the 8 base relations."""
    out = {spec: an.holds(spec, x, y) for spec in FAMILY32}
    for rel in BASE_RELATIONS:
        out[rel] = an.holds(rel, x, y)
    return out


class TestRegistry:
    def test_both_backends_registered(self):
        assert make_backend(None, Execution(build_trace_from_ops(2, [])))
        assert set(BACKENDS) >= {"vector", "reachability"}
        assert BACKENDS["vector"] is VectorClockBackend
        assert BACKENDS["reachability"] is ReachabilityBackend

    def test_unknown_backend_rejected(self):
        ex = Execution(build_trace_from_ops(2, []))
        with pytest.raises(ValueError, match="unknown causality backend"):
            make_backend("laporte", ex)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reachability")
        assert default_backend_name() == "reachability"
        ex = Execution(build_trace_from_ops(2, []))
        assert AnalysisContext(ex).backend_name == "reachability"
        monkeypatch.setenv("REPRO_BACKEND", "laporte")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            default_backend_name()

    def test_foreign_backend_instance_rejected(self):
        ex1 = Execution(build_trace_from_ops(2, [(0, 0, 0)]))
        ex2 = Execution(build_trace_from_ops(2, [(1, 0, 0)]))
        backend = make_backend("vector", ex1)
        with pytest.raises(ValueError, match="different execution"):
            AnalysisContext(ex2, backend=backend)


class TestPairwiseEquivalence:
    @given(executions(max_nodes=4, max_ops=30))
    @settings(max_examples=60, deadline=None)
    def test_leq_precedes_concurrent_agree(self, ex):
        vec = make_backend("vector", ex)
        rch = make_backend("reachability", ex)
        ids = sorted(ex.iter_ids())
        for a, b in itertools.product(ids, ids):
            assert vec.leq(a, b) == rch.leq(a, b), (a, b)
            assert vec.precedes(a, b) == rch.precedes(a, b), (a, b)
            assert vec.concurrent(a, b) == rch.concurrent(a, b), (a, b)

    @given(executions(max_nodes=4, max_ops=30))
    @settings(max_examples=60, deadline=None)
    def test_timestamp_rows_agree(self, ex):
        vec = make_backend("vector", ex)
        rch = make_backend("reachability", ex)
        ids = sorted(ex.iter_ids())
        assert np.array_equal(vec.forward_rows(ids), rch.forward_rows(ids))
        assert np.array_equal(vec.reverse_rows(ids), rch.reverse_rows(ids))

    @given(execution_with_pair(max_nodes=4, max_ops=30))
    @settings(max_examples=60, deadline=None)
    def test_cut_vectors_and_stats_agree(self, exy):
        ex, x, y = exy
        vec = make_backend("vector", ex)
        rch = make_backend("reachability", ex)
        for iv in (x, y):
            for which in ("C1", "C2", "C3", "C4"):
                assert np.array_equal(
                    vec.cut_vector(iv, which), rch.cut_vector(iv, which)
                ), which
        sv = vec.cut_stats([x, y])
        sr = rch.cut_stats([x, y])
        for name in ("c1", "c2", "c3", "c4", "first", "last"):
            assert np.array_equal(getattr(sv, name), getattr(sr, name)), name


class TestVerdictEquivalence:
    @given(execution_with_pair(max_nodes=4, max_ops=30))
    @settings(max_examples=40, deadline=None)
    def test_all_40_verdicts_agree(self, exy):
        ex, x, y = exy
        # separate executions: a backend is bound to one execution
        ex2 = Execution(ex.trace)
        x2 = NonatomicEvent(ex2, sorted(x.ids), name="X")
        y2 = NonatomicEvent(ex2, sorted(y.ids), name="Y")
        an_vec = SynchronizationAnalyzer(AnalysisContext(ex, backend="vector"))
        an_rch = SynchronizationAnalyzer(
            AnalysisContext(ex2, backend="reachability")
        )
        assert _all_verdicts(an_vec, x, y) == _all_verdicts(an_rch, x2, y2)

    @given(st.integers(2, 4), _ops, _ops)
    @settings(max_examples=30, deadline=None)
    def test_verdicts_agree_after_extend(self, num_nodes, head, tail):
        prefix = _replay(num_nodes, head)
        full = _replay(num_nodes, head + tail)
        assume(full.total_events > prefix.total_events)
        ex_vec = Execution(prefix)
        ex_rch = Execution(prefix)
        ctx_vec = AnalysisContext(ex_vec, backend="vector")
        ctx_rch = AnalysisContext(ex_rch, backend="reachability")
        ids = sorted(ex_vec.iter_ids())
        half = max(1, len(ids) // 2)
        # pay pre-growth queries so stale caches would be caught
        for ctx in (ctx_vec, ctx_rch):
            an = SynchronizationAnalyzer(ctx)
            x = ctx.interval(ids[:half], name="X")
            y = ctx.interval(ids[half:] or ids[:1], name="Y")
            _all_verdicts(an, x, y)
        ctx_vec.extend(full)
        ctx_rch.extend(full)
        ids = sorted(ex_vec.iter_ids())
        half = max(1, len(ids) // 2)
        an_vec = SynchronizationAnalyzer(ctx_vec)
        an_rch = SynchronizationAnalyzer(ctx_rch)
        v = _all_verdicts(
            an_vec,
            ctx_vec.interval(ids[:half], name="X"),
            ctx_vec.interval(ids[half:], name="Y"),
        )
        r = _all_verdicts(
            an_rch,
            ctx_rch.interval(ids[:half], name="X"),
            ctx_rch.interval(ids[half:], name="Y"),
        )
        assert v == r


class TestBatchedFamilyEquivalence:
    """The batched ``(pairs, 24)`` kernel agrees with the scalar path
    on both backends — including after real append-only growth."""

    @given(st.integers(2, 4), _ops, _ops)
    @settings(max_examples=20, deadline=None)
    def test_batched_rows_match_scalar_after_extend(
        self, num_nodes, head, tail
    ):
        prefix = _replay(num_nodes, head)
        full = _replay(num_nodes, head + tail)
        assume(full.total_events > prefix.total_events)
        for backend in ("vector", "reachability"):
            ctx = AnalysisContext(Execution(prefix), backend=backend)
            an = SynchronizationAnalyzer(ctx)
            oracle = SynchronizationAnalyzer(ctx, counted=True)
            assert oracle.verdict_cache is None
            ids = sorted(ctx.execution.iter_ids())
            half = max(1, len(ids) // 2)
            x = ctx.interval(ids[:half], name="X")
            y = ctx.interval(ids[half:] or ids[:1], name="Y")
            # pay a pre-growth batched fill so stale rows would be caught
            an.all_relations_batch([(x, y)])
            ctx.extend(full)
            ids = sorted(ctx.execution.iter_ids())
            half = max(1, len(ids) // 2)
            x = ctx.interval(ids[:half], name="X")
            y = ctx.interval(ids[half:], name="Y")
            fam = an.all_relations_batch([(x, y), (y, x)])
            for f, (a, b) in zip(fam, [(x, y), (y, x)], strict=True):
                assert f == {s: oracle.holds(s, a, b) for s in FAMILY32}


class TestSeamEnforcement:
    """No engine above the events layer names the clock substrate."""

    _BANNED_NAMES = {"ClockTable", "GrowableClockTable"}
    _BANNED_MODULE = "events.clocks"
    _LAYERS = ("core", "monitor", "globalstates")

    def _violations(self, path: Path) -> list[str]:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        bad = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.endswith(self._BANNED_MODULE):
                    bad.append(f"{path.name}:{node.lineno} from {module}")
                for alias in node.names:
                    if alias.name in self._BANNED_NAMES:
                        bad.append(
                            f"{path.name}:{node.lineno} imports {alias.name}"
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith(self._BANNED_MODULE):
                        bad.append(
                            f"{path.name}:{node.lineno} import {alias.name}"
                        )
        return bad

    def test_engines_do_not_import_clock_substrate(self):
        violations = []
        for layer in self._LAYERS:
            for path in sorted((_SRC / layer).rglob("*.py")):
                violations.extend(self._violations(path))
        assert not violations, "\n".join(violations)

    def test_layers_exist(self):
        # guard against the seam test silently scanning nothing
        for layer in self._LAYERS:
            assert list((_SRC / layer).rglob("*.py")), layer


def _labelled_trace(num_nodes, ops):
    """A trace whose internal events carry cyclic labels (x/y/work/None)."""
    labels = [None, "x", "y", "work", "work", None]
    b = TraceBuilder(num_nodes)
    in_flight = [[] for _ in range(num_nodes)]
    t = 0.0
    k = 0
    for node, action, aux in ops:
        node %= num_nodes
        t += 1.0
        if action == 1 and num_nodes > 1:
            dst = aux % num_nodes
            if dst == node:
                dst = (dst + 1) % num_nodes
            in_flight[dst].append(b.send(node, time=t))
        elif action == 2 and in_flight[node]:
            b.recv(node, in_flight[node].pop(0), time=t)
        else:
            b.internal(node, time=t, label=labels[k % len(labels)])
            k += 1
    for i in range(num_nodes):
        if b.count(i) == 0:
            t += 1.0
            b.internal(i, time=t)
    return b.build()


def _commuting_workload(num_nodes: int = 3, rounds: int = 6, burst: int = 5):
    """Bursts of commuting internal work punctuated by a message chain."""
    b = TraceBuilder(num_nodes)
    t = 0.0
    for r in range(rounds):
        for node in range(num_nodes):
            for _ in range(burst):
                t += 1.0
                if r == 0 and node == 0:
                    label = "x"
                elif r == rounds - 1 and node == num_nodes - 1:
                    label = "y"
                else:
                    label = "work"
                b.internal(node, time=t, label=label)
        for node in range(num_nodes - 1):
            t += 1.0
            m = b.send(node, time=t)
            t += 1.0
            b.recv(node + 1, m, time=t)
    return b.build()


class TestTraceReduction:
    @given(st.integers(2, 4), _ops)
    @settings(max_examples=40, deadline=None)
    def test_reduction_is_a_quotient(self, num_nodes, ops):
        trace = _labelled_trace(num_nodes, ops)
        red = reduce_trace(trace)
        # event_map is total over real events and lands in the quotient
        originals = {ev.eid for ev in trace.iter_events()}
        assert set(red.event_map) == originals
        reduced_ids = {ev.eid for ev in red.trace.iter_events()}
        assert set(red.event_map.values()) == reduced_ids
        # groups partition the original events
        members = [m for grp in red.groups.values() for m in grp]
        assert sorted(members) == sorted(originals)
        # sends/receives are never merged
        for grp in red.groups.values():
            if len(grp) > 1:
                for mid in grp:
                    assert trace.send_of(mid) is None
        assert red.reduced_events <= red.original_events
        assert 0.0 <= red.ratio < 1.0

    @given(st.integers(2, 4), _ops)
    @settings(max_examples=30, deadline=None)
    def test_reduction_preserves_all_40_verdicts(self, num_nodes, ops):
        trace = _labelled_trace(num_nodes, ops)
        has_x = any(ev.label == "x" for ev in trace.iter_events())
        has_y = any(ev.label == "y" for ev in trace.iter_events())
        assume(has_x and has_y)
        red = reduce_trace(trace)
        ex = Execution(trace)
        red_ex = Execution(red.trace)
        an = SynchronizationAnalyzer(AnalysisContext(ex))
        red_an = SynchronizationAnalyzer(AnalysisContext(red_ex))
        before = _all_verdicts(an, by_label(ex, "x"), by_label(ex, "y"))
        after = _all_verdicts(
            red_an, by_label(red_ex, "x"), by_label(red_ex, "y")
        )
        assert before == after

    def test_commuting_workload_shrinks_30_percent(self):
        trace = _commuting_workload()
        red = reduce_trace(trace)
        assert red.ratio >= 0.30, red.ratio
        # and every verdict survives the coarsening
        ex = Execution(trace)
        red_ex = Execution(red.trace)
        an = SynchronizationAnalyzer(AnalysisContext(ex))
        red_an = SynchronizationAnalyzer(AnalysisContext(red_ex))
        before = _all_verdicts(an, by_label(ex, "x"), by_label(ex, "y"))
        after = _all_verdicts(
            red_an, by_label(red_ex, "x"), by_label(red_ex, "y")
        )
        assert before == after

    def test_label_selected_intervals_map_through(self):
        trace = _commuting_workload()
        red = reduce_trace(trace)
        ex = Execution(trace)
        red_ex = Execution(red.trace)
        for label in ("x", "y", "work"):
            mapped = red.map_ids(by_label(ex, label).ids)
            assert mapped == sorted(by_label(red_ex, label).ids)

    def test_rules_restrict_merging(self):
        trace = _commuting_workload()
        none_commute = reduce_trace(
            trace,
            CommutativityRules(
                commuting_labels=frozenset(), absorb_unlabeled=False
            ),
        )
        assert none_commute.ratio == 0.0
        assert none_commute.trace.total_events == trace.total_events
        only_work = reduce_trace(
            trace, CommutativityRules(commuting_labels=frozenset({"work"}))
        )
        full = reduce_trace(trace)
        assert only_work.reduced_events >= full.reduced_events
