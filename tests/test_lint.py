"""The repro linter: rule detections, suppressions, baseline, CLI."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import (
    PROJECT_RULES,
    RULES,
    Baseline,
    build_project,
    parse_file,
    partition,
    run_file,
    run_paths,
)
from repro.lint.engine import iter_python_files
from repro.lint.project import module_name_for

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src" / "repro"

FILE_RULES = ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006")
PROJECT_CODES = ("REP007", "REP008", "REP009")
ALL_RULES = FILE_RULES + PROJECT_CODES


def codes_in(path: Path) -> list:
    return [f.rule for f in run_file(path)]


def project_codes_in(*paths: Path) -> list:
    return [f.rule for f in run_paths(list(paths), project=True)]


# ---------------------------------------------------------------------------
# per-rule fixtures: every rule has at least one true positive and one
# clean (true negative) fixture.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("code", ALL_RULES)
def test_rule_registered(code):
    registry = RULES if code in FILE_RULES else PROJECT_RULES
    assert code in registry
    assert registry[code].severity in ("warning", "error")
    assert registry[code].description


@pytest.mark.parametrize("code", FILE_RULES)
def test_true_positive_fixture(code):
    path = FIXTURES / f"{code.lower()}_tp.py"
    assert code in codes_in(path), f"{path.name} should trigger {code}"


@pytest.mark.parametrize("code", FILE_RULES)
def test_true_negative_fixture(code):
    path = FIXTURES / f"{code.lower()}_tn.py"
    assert code not in codes_in(path), f"{path.name} should not trigger {code}"


@pytest.mark.parametrize("code", ("REP007", "REP008"))
def test_project_true_positive_fixture(code):
    path = FIXTURES / f"{code.lower()}_tp.py"
    assert code in project_codes_in(path), f"{path.name} should trigger {code}"


@pytest.mark.parametrize("code", ("REP007", "REP008"))
def test_project_true_negative_fixture(code):
    path = FIXTURES / f"{code.lower()}_tn.py"
    assert code not in project_codes_in(path), (
        f"{path.name} should not trigger {code}"
    )


def test_rep001_counts_each_offending_method():
    findings = [f for f in run_file(FIXTURES / "rep001_tp.py") if f.rule == "REP001"]
    methods = {f.message.split("'")[1] for f in findings}
    assert methods == {
        "BadStateMutator.append",
        "BadStateMutator.rebind",
        "BadStateMutator.refill",
    }


def test_rep004_distinguishes_all_three_habits():
    messages = [
        f.message for f in run_file(FIXTURES / "rep004_tp.py") if f.rule == "REP004"
    ]
    assert any("lacks __slots__" in m for m in messages)
    assert any("mutable default" in m for m in messages)
    assert any("per-event Python loop" in m for m in messages)
    assert any("comprehension" in m for m in messages)


def test_rep005_flags_late_version_check():
    findings = [f for f in run_file(FIXTURES / "rep005_tp.py") if f.rule == "REP005"]
    assert len(findings) == 2  # holds() and late_check()


def test_dual_tagged_kernel_module_shape():
    """The ``repro.core.family`` module shape — one ``hot, dtype-strict``
    pragma line gating both rules over operand tables, stacked-matrix
    kernels and a cache class — triggers REP002 *and* REP004 on the
    true positive and neither on the clean twin."""
    tp = codes_in(FIXTURES / "family_kernel_tp.py")
    assert "REP002" in tp and "REP004" in tp
    assert tp.count("REP002") >= 2  # kernel matrix + index vector
    assert tp.count("REP004") >= 4  # slotless, mutable default, 2 loops
    tn = codes_in(FIXTURES / "family_kernel_tn.py")
    assert tn == [], f"clean kernel fixture should not fire: {tn}"


# ---------------------------------------------------------------------------
# project phase: rule behaviour on the fixtures
# ---------------------------------------------------------------------------

def test_rep007_reports_the_witness_chain():
    findings = [
        f
        for f in run_paths([FIXTURES / "rep007_tp.py"], project=True)
        if f.rule == "REP007"
    ]
    transitive = [f for f in findings if "transitive" in f.message]
    assert transitive, "the chained coroutine should be flagged"
    # the message names every hop down to the primitive
    assert "persist -> flush -> os.fsync" in transitive[0].message
    direct = [f for f in findings if "time.sleep" in f.message]
    assert direct, "the direct seed call should be flagged"
    attr = [f for f in findings if "Log.sync" in f.message]
    assert attr, "the attribute-typed chain should be flagged"


def test_rep008_distinguishes_all_three_losses():
    messages = [
        f.message
        for f in run_paths([FIXTURES / "rep008_tp.py"], project=True)
        if f.rule == "REP008"
    ]
    assert any("discarded" in m for m in messages)
    assert any("'t' is stored but never" in m for m in messages)
    assert any("._bg is never" in m for m in messages)


def test_rep009_cross_file_mismatch_both_directions():
    findings = [
        f
        for f in run_paths(
            [FIXTURES / "rep009x_sender.py", FIXTURES / "rep009x_handler.py"],
            project=True,
        )
        if f.rule == "REP009"
    ]
    by_path = {Path(f.path).name: f.message for f in findings}
    assert "'snapshot'" in by_path["rep009x_sender.py"]  # sent, unhandled
    assert "'bye'" in by_path["rep009x_handler.py"]  # handled, unsent


def test_rep009_balanced_pair_is_clean():
    assert (
        project_codes_in(
            FIXTURES / "rep009_tn_sender.py", FIXTURES / "rep009_tn_handler.py"
        )
        == []
    )


def test_rep009_silent_on_a_lone_module():
    # protocol symmetry needs both sides; one file must not make noise
    assert "REP009" not in project_codes_in(FIXTURES / "rep009x_sender.py")


# ---------------------------------------------------------------------------
# project phase: symbol index and call-graph machinery
# ---------------------------------------------------------------------------

def _build(tmp_path: Path, files: dict[str, str]):
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
    contexts = []
    for p in iter_python_files([tmp_path]):
        ctx, err = parse_file(p, root=tmp_path)
        assert err is None, err
        contexts.append(ctx)
    return build_project(contexts)


def _callees(project, qualname: str) -> set:
    return {c for site in project.functions[qualname].calls for c in site.callees}


def test_module_name_derivation():
    assert module_name_for("src/repro/service/log.py") == "repro.service.log"
    assert module_name_for("src/app/__init__.py") == "app"
    assert module_name_for("loose_fixture.py") == "loose_fixture"


def test_call_graph_resolves_imports_and_aliases(tmp_path):
    project = _build(tmp_path, {
        "src/app/io_mod.py": (
            "import os\n\n\ndef flush(fd):\n    os.fsync(fd)\n"
        ),
        "src/app/work.py": (
            "from . import io_mod\n"
            "from .io_mod import flush as fsync_alias\n\n\n"
            "def direct(fd):\n    io_mod.flush(fd)\n\n\n"
            "def aliased(fd):\n    fsync_alias(fd)\n"
        ),
    })
    assert _callees(project, "app.io_mod.flush") == {"os.fsync"}
    assert _callees(project, "app.work.direct") == {"app.io_mod.flush"}
    assert _callees(project, "app.work.aliased") == {"app.io_mod.flush"}


def test_call_graph_resolves_attribute_types(tmp_path):
    project = _build(tmp_path, {
        "src/app/parts.py": (
            "class Engine:\n"
            "    def rev(self):\n"
            "        return 1\n"
        ),
        "src/app/car.py": (
            "from .parts import Engine\n\n\n"
            "class Car:\n"
            "    def __init__(self):\n"
            "        self.engine = Engine()\n\n"
            "    def drive(self):\n"
            "        return self.engine.rev()\n"
        ),
    })
    assert _callees(project, "app.car.Car.drive") == {"app.parts.Engine.rev"}
    car = project.classes["app.car.Car"]
    assert car.attr_types["engine"] == frozenset({"app.parts.Engine"})


def test_call_graph_chases_package_reexports(tmp_path):
    project = _build(tmp_path, {
        "src/app/__init__.py": "from .impl import Thing\n",
        "src/app/impl.py": (
            "class Thing:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
        ),
        "src/use.py": (
            "from app import Thing\n\n\n"
            "def make():\n    return Thing()\n"
        ),
    })
    assert _callees(project, "use.make") == {"app.impl.Thing.__init__"}


def test_async_flag_recorded_per_def(tmp_path):
    project = _build(tmp_path, {
        "src/m.py": (
            "async def a():\n    pass\n\n\ndef s():\n    pass\n"
        ),
    })
    assert project.functions["m.a"].is_async
    assert not project.functions["m.s"].is_async


def test_project_finding_honours_inline_suppression(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import time\n\n\n"
        "async def pause():\n"
        "    time.sleep(1)  # repro-lint: disable=REP007 -- fixture\n"
    )
    assert project_codes_in(path) == []
    # without the suppression the same file fires
    path.write_text(
        "import time\n\n\nasync def pause():\n    time.sleep(1)\n"
    )
    assert project_codes_in(path) == ["REP007"]


def test_rep007_catches_reverted_fsync_offload(tmp_path):
    """The acceptance gate: re-adding the inline fsync to
    ``EventLog.append`` must make REP007 fire on the coroutines of
    ``server.py`` again — proving the executor-offload fix is what
    keeps the tree clean, not a blind spot."""
    dst = tmp_path / "src" / "repro" / "service"
    shutil.copytree(SRC / "service", dst)
    log = dst / "log.py"
    text = log.read_text()
    marker = "        self._unsynced += 1\n        return record[\"seq\"]"
    assert marker in text, "EventLog.append changed shape; update this test"
    log.write_text(text.replace(
        marker,
        "        self._unsynced += 1\n"
        "        if self.fsync_every and self._unsynced >= self.fsync_every:\n"
        "            self.sync()\n"
        "        return record[\"seq\"]",
    ))
    rep007 = [
        f
        for f in run_paths([tmp_path / "src"], root=tmp_path, project=True)
        if f.rule == "REP007"
    ]
    assert any(
        f.path.endswith("server.py") and "_session_loop" in f.message
        for f in rep007
    ), f"expected the ingest coroutine to be flagged, got: {rep007}"
    assert any("EventLog.append -> EventLog.sync" in f.message for f in rep007)


# ---------------------------------------------------------------------------
# pragmas and suppressions
# ---------------------------------------------------------------------------

def test_gated_rules_require_module_pragma(tmp_path):
    # Same content as a dtype violation, but without the pragma: silent.
    src = "import numpy as np\narr = np.zeros(5)\n"
    path = tmp_path / "untagged.py"
    path.write_text(src)
    assert codes_in(path) == []
    path.write_text("# repro: dtype-strict\n" + src)
    assert "REP002" in codes_in(path)


def test_trailing_suppression_silences_own_line(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# repro: dtype-strict\n"
        "import numpy as np\n"
        "arr = np.zeros(5)  # repro-lint: disable=REP002 -- fixture\n"
    )
    assert codes_in(path) == []


def test_standalone_suppression_silences_next_line(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# repro: dtype-strict\n"
        "import numpy as np\n"
        "# repro-lint: disable=REP002 -- fixture\n"
        "arr = np.zeros(5)\n"
        "other = np.zeros(5)\n"
    )
    findings = run_file(path)
    assert [f.rule for f in findings] == ["REP002"]
    assert findings[0].line == 5  # only the unsuppressed line reports


def test_suppression_is_rule_specific(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# repro: dtype-strict\n"
        "import numpy as np\n"
        "arr = np.zeros(5)  # repro-lint: disable=REP004 -- wrong rule\n"
    )
    assert codes_in(path) == ["REP002"]


def test_syntax_error_becomes_parse_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    findings = run_file(path)
    assert [f.rule for f in findings] == ["PARSE"]


# ---------------------------------------------------------------------------
# baseline round trip
# ---------------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    findings = run_file(FIXTURES / "rep001_tp.py")
    assert findings
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(baseline_path)
    loaded = Baseline.load(baseline_path)
    new, grandfathered, stale = partition(findings, loaded)
    assert new == []
    assert len(grandfathered) == len(findings)
    assert stale == []


def test_baseline_budget_catches_regressions(tmp_path):
    findings = run_file(FIXTURES / "rep001_tp.py")
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(baseline_path)
    loaded = Baseline.load(baseline_path)
    # A second instance of an already-baselined finding is still new.
    doubled = findings + [findings[0]]
    new, _, _ = partition(doubled, loaded)
    assert new == [findings[0]]


def test_baseline_reports_stale_entries(tmp_path):
    findings = run_file(FIXTURES / "rep001_tp.py")
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(baseline_path)
    loaded = Baseline.load(baseline_path)
    new, _, stale = partition(findings[1:], loaded)
    assert new == []
    assert len(stale) == 1


def test_baseline_preserves_justifications(tmp_path):
    findings = run_file(FIXTURES / "rep001_tp.py")
    baseline_path = tmp_path / "baseline.json"
    first = Baseline.from_findings(findings)
    key = findings[0].key()
    first.justifications[key] = "kept on purpose"
    first.save(baseline_path)
    rewritten = Baseline.from_findings(findings, previous=Baseline.load(baseline_path))
    assert rewritten.justifications[key] == "kept on purpose"


def test_checked_in_baseline_is_empty():
    data = json.loads(
        (Path(__file__).parent.parent / "lint-baseline.json").read_text()
    )
    assert data == {"version": 1, "findings": []}


# ---------------------------------------------------------------------------
# the tree itself lints clean, and the CLI wiring works
# ---------------------------------------------------------------------------

def test_src_tree_lints_clean():
    assert run_paths([SRC]) == []


def test_src_tree_lints_clean_with_project_phase():
    assert run_paths([SRC], project=True) == []


def test_cli_exit_codes(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text(
        "# repro: dtype-strict\nimport numpy as np\narr = np.zeros(5)\n"
    )
    assert repro_main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP002" in out and "bad.py:3:" in out

    # Grandfather it, then the same invocation passes.
    assert repro_main(["lint", str(bad), "--write-baseline"]) == 0
    assert repro_main(["lint", str(bad)]) == 0

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert repro_main(["lint", str(clean), "--no-baseline"]) == 0
    assert repro_main(["lint", str(tmp_path / "missing.py")]) == 2


def test_cli_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_RULES:
        assert code in out
    assert "(project)" in out  # project rules are marked as such


def test_cli_project_flag_enables_graph_rules(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "looper.py"
    bad.write_text("import time\n\n\nasync def pause():\n    time.sleep(1)\n")
    # per-file phase alone cannot see it
    assert repro_main(["lint", str(bad), "--no-baseline"]) == 0
    capsys.readouterr()
    assert repro_main(["lint", str(bad), "--no-baseline", "--project"]) == 1
    assert "REP007" in capsys.readouterr().out
    # --no-project pins the per-file behaviour explicitly
    assert repro_main(
        ["lint", str(bad), "--no-baseline", "--project", "--no-project"]
    ) == 0


def test_cli_json_format(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "looper.py"
    bad.write_text("import time\n\n\nasync def pause():\n    time.sleep(1)\n")
    code = repro_main(
        ["lint", str(bad), "--no-baseline", "--project", "--format=json"]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"] == {"REP007": 1}
    (finding,) = doc["findings"]
    assert finding["rule"] == "REP007"
    assert finding["line"] == 5
    assert finding["severity"] == "error"
    assert "time.sleep" in finding["message"]

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert repro_main(
        ["lint", str(clean), "--no-baseline", "--format=json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"] == [] and doc["counts"] == {}
