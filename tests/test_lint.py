"""The repro linter: rule detections, suppressions, baseline, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import RULES, Baseline, partition, run_file, run_paths

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src" / "repro"

ALL_RULES = ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006")


def codes_in(path: Path) -> list:
    return [f.rule for f in run_file(path)]


# ---------------------------------------------------------------------------
# per-rule fixtures: every rule has at least one true positive and one
# clean (true negative) fixture.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("code", ALL_RULES)
def test_rule_registered(code):
    assert code in RULES
    assert RULES[code].severity in ("warning", "error")
    assert RULES[code].description


@pytest.mark.parametrize("code", ALL_RULES)
def test_true_positive_fixture(code):
    path = FIXTURES / f"{code.lower()}_tp.py"
    assert code in codes_in(path), f"{path.name} should trigger {code}"


@pytest.mark.parametrize("code", ALL_RULES)
def test_true_negative_fixture(code):
    path = FIXTURES / f"{code.lower()}_tn.py"
    assert code not in codes_in(path), f"{path.name} should not trigger {code}"


def test_rep001_counts_each_offending_method():
    findings = [f for f in run_file(FIXTURES / "rep001_tp.py") if f.rule == "REP001"]
    methods = {f.message.split("'")[1] for f in findings}
    assert methods == {
        "BadStateMutator.append",
        "BadStateMutator.rebind",
        "BadStateMutator.refill",
    }


def test_rep004_distinguishes_all_three_habits():
    messages = [
        f.message for f in run_file(FIXTURES / "rep004_tp.py") if f.rule == "REP004"
    ]
    assert any("lacks __slots__" in m for m in messages)
    assert any("mutable default" in m for m in messages)
    assert any("per-event Python loop" in m for m in messages)
    assert any("comprehension" in m for m in messages)


def test_rep005_flags_late_version_check():
    findings = [f for f in run_file(FIXTURES / "rep005_tp.py") if f.rule == "REP005"]
    assert len(findings) == 2  # holds() and late_check()


def test_dual_tagged_kernel_module_shape():
    """The ``repro.core.family`` module shape — one ``hot, dtype-strict``
    pragma line gating both rules over operand tables, stacked-matrix
    kernels and a cache class — triggers REP002 *and* REP004 on the
    true positive and neither on the clean twin."""
    tp = codes_in(FIXTURES / "family_kernel_tp.py")
    assert "REP002" in tp and "REP004" in tp
    assert tp.count("REP002") >= 2  # kernel matrix + index vector
    assert tp.count("REP004") >= 4  # slotless, mutable default, 2 loops
    tn = codes_in(FIXTURES / "family_kernel_tn.py")
    assert tn == [], f"clean kernel fixture should not fire: {tn}"


# ---------------------------------------------------------------------------
# pragmas and suppressions
# ---------------------------------------------------------------------------

def test_gated_rules_require_module_pragma(tmp_path):
    # Same content as a dtype violation, but without the pragma: silent.
    src = "import numpy as np\narr = np.zeros(5)\n"
    path = tmp_path / "untagged.py"
    path.write_text(src)
    assert codes_in(path) == []
    path.write_text("# repro: dtype-strict\n" + src)
    assert "REP002" in codes_in(path)


def test_trailing_suppression_silences_own_line(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# repro: dtype-strict\n"
        "import numpy as np\n"
        "arr = np.zeros(5)  # repro-lint: disable=REP002 -- fixture\n"
    )
    assert codes_in(path) == []


def test_standalone_suppression_silences_next_line(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# repro: dtype-strict\n"
        "import numpy as np\n"
        "# repro-lint: disable=REP002 -- fixture\n"
        "arr = np.zeros(5)\n"
        "other = np.zeros(5)\n"
    )
    findings = run_file(path)
    assert [f.rule for f in findings] == ["REP002"]
    assert findings[0].line == 5  # only the unsuppressed line reports


def test_suppression_is_rule_specific(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# repro: dtype-strict\n"
        "import numpy as np\n"
        "arr = np.zeros(5)  # repro-lint: disable=REP004 -- wrong rule\n"
    )
    assert codes_in(path) == ["REP002"]


def test_syntax_error_becomes_parse_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    findings = run_file(path)
    assert [f.rule for f in findings] == ["PARSE"]


# ---------------------------------------------------------------------------
# baseline round trip
# ---------------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    findings = run_file(FIXTURES / "rep001_tp.py")
    assert findings
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(baseline_path)
    loaded = Baseline.load(baseline_path)
    new, grandfathered, stale = partition(findings, loaded)
    assert new == []
    assert len(grandfathered) == len(findings)
    assert stale == []


def test_baseline_budget_catches_regressions(tmp_path):
    findings = run_file(FIXTURES / "rep001_tp.py")
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(baseline_path)
    loaded = Baseline.load(baseline_path)
    # A second instance of an already-baselined finding is still new.
    doubled = findings + [findings[0]]
    new, _, _ = partition(doubled, loaded)
    assert new == [findings[0]]


def test_baseline_reports_stale_entries(tmp_path):
    findings = run_file(FIXTURES / "rep001_tp.py")
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(baseline_path)
    loaded = Baseline.load(baseline_path)
    new, _, stale = partition(findings[1:], loaded)
    assert new == []
    assert len(stale) == 1


def test_baseline_preserves_justifications(tmp_path):
    findings = run_file(FIXTURES / "rep001_tp.py")
    baseline_path = tmp_path / "baseline.json"
    first = Baseline.from_findings(findings)
    key = findings[0].key()
    first.justifications[key] = "kept on purpose"
    first.save(baseline_path)
    rewritten = Baseline.from_findings(findings, previous=Baseline.load(baseline_path))
    assert rewritten.justifications[key] == "kept on purpose"


def test_checked_in_baseline_is_empty():
    data = json.loads(
        (Path(__file__).parent.parent / "lint-baseline.json").read_text()
    )
    assert data == {"version": 1, "findings": []}


# ---------------------------------------------------------------------------
# the tree itself lints clean, and the CLI wiring works
# ---------------------------------------------------------------------------

def test_src_tree_lints_clean():
    assert run_paths([SRC]) == []


def test_cli_exit_codes(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text(
        "# repro: dtype-strict\nimport numpy as np\narr = np.zeros(5)\n"
    )
    assert repro_main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP002" in out and "bad.py:3:" in out

    # Grandfather it, then the same invocation passes.
    assert repro_main(["lint", str(bad), "--write-baseline"]) == 0
    assert repro_main(["lint", str(bad)]) == 0

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert repro_main(["lint", str(clean), "--no-baseline"]) == 0
    assert repro_main(["lint", str(tmp_path / "missing.py")]) == 2


def test_cli_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_RULES:
        assert code in out
