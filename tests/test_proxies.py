"""Tests for proxies (Definitions 2 and 3) — ablation A-4 semantics."""

import pytest
from hypothesis import given, settings

from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.proxies import (
    Proxy,
    ProxyDefinition,
    ProxyUndefinedError,
    proxy_of,
)

from .strategies import execution_with_pair


class TestDefinition2:
    def test_per_node_extrema(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 3), (1, 1), (1, 2)])
        lx = proxy_of(x, Proxy.L)
        ux = proxy_of(x, Proxy.U)
        assert lx.ids == {(0, 1), (1, 1)}
        assert ux.ids == {(0, 3), (1, 2)}

    def test_node_set_preserved(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 3), (1, 2)])
        assert proxy_of(x, Proxy.L).node_set == x.node_set
        assert proxy_of(x, Proxy.U).node_set == x.node_set

    def test_singleton_fixed_point(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 2)])
        assert proxy_of(x, Proxy.L).ids == x.ids
        assert proxy_of(x, Proxy.U).ids == x.ids

    def test_caching(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (1, 2)])
        assert proxy_of(x, Proxy.L) is proxy_of(x, Proxy.L)
        assert proxy_of(x, Proxy.L) is not proxy_of(x, Proxy.U)

    def test_proxy_of_proxy_is_itself(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 3), (1, 2)])
        lx = proxy_of(x, Proxy.L)
        assert proxy_of(lx, Proxy.L) == lx
        assert proxy_of(lx, Proxy.U) == lx

    def test_name_derived(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1)], name="X")
        assert proxy_of(x, Proxy.L).name == "L(X)"

    @settings(max_examples=40, deadline=None)
    @given(pair=execution_with_pair())
    def test_definition_semantics(self, pair):
        """Def. 2: L_X = {e_i ∈ X | ∀e'_i ∈ X on the same node: e_i ≼ e'_i}."""
        ex, x, _y = pair
        lx = proxy_of(x, Proxy.L)
        expected = {
            e
            for e in x.ids
            if all(ex.leq(e, o) for o in x.ids if o[0] == e[0])
        }
        assert lx.ids == expected
        ux = proxy_of(x, Proxy.U)
        expected_u = {
            e
            for e in x.ids
            if all(ex.leq(o, e) for o in x.ids if o[0] == e[0])
        }
        assert ux.ids == expected_u


class TestDefinition3:
    def test_global_minimum_exists(self, message_exec):
        # (0,1) precedes (1,2) via the message: global min exists
        x = NonatomicEvent(message_exec, [(0, 1), (0, 2), (1, 2)])
        lx = proxy_of(x, Proxy.L, ProxyDefinition.GLOBAL)
        assert lx.ids == {(0, 1)}

    def test_global_maximum_exists(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 2), (1, 2)])
        ux = proxy_of(x, Proxy.U, ProxyDefinition.GLOBAL)
        assert ux.ids == {(1, 2)}

    def test_undefined_when_concurrent_minima(self, concurrent_exec):
        x = NonatomicEvent(concurrent_exec, [(0, 1), (1, 1)])
        with pytest.raises(ProxyUndefinedError):
            proxy_of(x, Proxy.L, ProxyDefinition.GLOBAL)

    def test_undefined_when_concurrent_maxima(self, concurrent_exec):
        x = NonatomicEvent(concurrent_exec, [(0, 2), (1, 2)])
        with pytest.raises(ProxyUndefinedError):
            proxy_of(x, Proxy.U, ProxyDefinition.GLOBAL)

    def test_singleton_always_defined(self, concurrent_exec):
        x = NonatomicEvent(concurrent_exec, [(0, 1)])
        assert proxy_of(x, Proxy.L, ProxyDefinition.GLOBAL).ids == {(0, 1)}

    @settings(max_examples=40, deadline=None)
    @given(pair=execution_with_pair())
    def test_global_proxy_is_subset_of_per_node(self, pair):
        """A Def.-3 proxy, when defined, is one of the Def.-2 events."""
        _ex, x, _y = pair
        for which in (Proxy.L, Proxy.U):
            per_node = proxy_of(x, which).ids
            try:
                global_ = proxy_of(x, which, ProxyDefinition.GLOBAL).ids
            except ProxyUndefinedError:
                continue
            assert global_ <= per_node
            assert len(global_) == 1


class TestProxyConsistency:
    def test_l_below_u_per_node(self, medium_exec):
        x = NonatomicEvent(
            medium_exec, [(0, 3), (0, 9), (2, 1), (2, 14), (4, 5)]
        )
        lx = proxy_of(x, Proxy.L)
        ux = proxy_of(x, Proxy.U)
        for node in x.node_set:
            assert lx.first_at(node) <= ux.first_at(node)
