"""Tests for observations (linear extensions) of executions."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings

from repro.globalstates.observations import (
    count_observations,
    is_observation,
    observation_states,
    sample_observation,
)
from repro.globalstates.detection import possibly
from repro.globalstates.lattice import GlobalStateLattice

from .strategies import executions


class TestSampling:
    @settings(max_examples=40, deadline=None)
    @given(ex=executions(max_nodes=4, max_ops=18))
    def test_samples_are_valid(self, ex):
        rng = np.random.default_rng(0)
        for _ in range(3):
            order = sample_observation(ex, rng)
            assert is_observation(ex, order)

    def test_deterministic_given_seed(self, medium_exec):
        a = sample_observation(medium_exec, np.random.default_rng(7))
        b = sample_observation(medium_exec, np.random.default_rng(7))
        assert a == b

    def test_chain_has_one_observation(self, chain_exec):
        order = sample_observation(chain_exec, np.random.default_rng(0))
        assert order == [(0, 1), (0, 2), (0, 3)]


class TestValidity:
    def test_reordered_local_events_invalid(self, chain_exec):
        assert not is_observation(chain_exec, [(0, 2), (0, 1), (0, 3)])

    def test_receive_before_send_invalid(self, message_exec):
        # (1,2) receives from (0,2): putting it before (0,2) is invalid
        order = [(1, 1), (1, 2), (0, 1), (0, 2), (0, 3), (1, 3)]
        assert not is_observation(message_exec, order)

    def test_missing_event_invalid(self, message_exec):
        order = [(0, 1), (0, 2), (0, 3), (1, 1), (1, 2)]
        assert not is_observation(message_exec, order)

    def test_duplicate_invalid(self, chain_exec):
        assert not is_observation(chain_exec, [(0, 1), (0, 1), (0, 2)])

    def test_valid_interleaving(self, message_exec):
        order = [(1, 1), (0, 1), (0, 2), (1, 2), (1, 3), (0, 3)]
        assert is_observation(message_exec, order)


class TestStates:
    def test_path_through_lattice(self, message_exec):
        order = [(0, 1), (1, 1), (0, 2), (1, 2), (0, 3), (1, 3)]
        path = observation_states(message_exec, order)
        assert path[0] == (0, 0)
        assert path[-1] == (3, 3)
        assert len(path) == 7
        lattice = GlobalStateLattice(message_exec)
        assert all(lattice.is_consistent(s) for s in path)

    def test_invalid_order_rejected(self, message_exec):
        with pytest.raises(ValueError):
            observation_states(message_exec, [(1, 2)])


class TestCounting:
    def test_chain(self, chain_exec):
        assert count_observations(chain_exec) == 1

    def test_independent_chains(self, concurrent_exec):
        # interleavings of two 2-chains: C(4,2) = 6
        assert count_observations(concurrent_exec) == 6

    def test_message_constrains(self, message_exec):
        # 6 events, one cross edge: fewer than C(6,3)=20 free interleavings
        n = count_observations(message_exec)
        assert 1 < n < 20

    @settings(max_examples=20, deadline=None)
    @given(ex=executions(max_nodes=3, max_ops=8))
    def test_matches_brute_force(self, ex):
        ids = sorted(ex.iter_ids())
        if len(ids) > 7:
            return  # keep the factorial oracle tractable
        brute = sum(
            1
            for perm in itertools.permutations(ids)
            if is_observation(ex, list(perm))
        )
        assert count_observations(ex) == brute

    @settings(max_examples=15, deadline=None)
    @given(ex=executions(max_nodes=3, max_ops=10))
    def test_definitely_means_every_observation_hits(self, ex):
        """Definitely(φ) ⟹ every sampled observation passes a φ-state."""
        from repro.globalstates.detection import definitely

        # φ: node 0 has executed at least one event (when it has any)
        if ex.num_real(0) == 0:
            return
        pred = lambda s: s[0] >= 1
        if definitely(ex, pred):
            rng = np.random.default_rng(11)
            for _ in range(5):
                states = observation_states(
                    ex, sample_observation(ex, rng)
                )
                assert any(pred(s) for s in states)

    @settings(max_examples=15, deadline=None)
    @given(ex=executions(max_nodes=3, max_ops=10))
    def test_possibly_iff_some_sampled_observation(self, ex):
        """Possibly(φ) implies some observation hits φ — check that
        sampled observations are consistent with the detector."""
        target = tuple(min(1, k) for k in ex.lengths)
        hit = possibly(ex, lambda s: s == target)
        rng = np.random.default_rng(3)
        sampled_hit = any(
            target in observation_states(ex, sample_observation(ex, rng))
            for _ in range(20)
        )
        if sampled_hit:
            assert hit is not None
