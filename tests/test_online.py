"""Tests for the online (streaming) monitor.

The key property: for closed, disjoint intervals, the past-only online
evaluation agrees with the offline linear engine on every relation —
on random streams and on all 32 family members.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS, FAMILY32
from repro.monitor.online import OnlineMonitor


def replay_into_monitor(trace):
    """Feed a recorded trace into a fresh OnlineMonitor (stream replay).

    Events are replayed node-major in a causally valid global order:
    repeatedly advance nodes whose next event is enabled.
    """
    om = OnlineMonitor(trace.num_nodes)
    pos = [0] * trace.num_nodes
    handles = {}
    progressed = True
    while progressed:
        progressed = False
        for node in range(trace.num_nodes):
            while pos[node] < trace.num_real(node):
                ev = trace.events_of(node)[pos[node]]
                send = trace.send_of(ev.eid)
                if send is not None and send not in handles:
                    break  # wait for the send to be replayed
                if ev.kind.name == "SEND":
                    handles[ev.eid] = om.send(node, label=ev.label, time=ev.time)
                elif ev.kind.name == "RECV" and send is not None:
                    om.recv(node, handles[send], label=ev.label, time=ev.time)
                else:
                    om.internal(node, label=ev.label, time=ev.time)
                pos[node] += 1
                progressed = True
    assert pos == [trace.num_real(i) for i in range(trace.num_nodes)]
    return om


class TestIngestion:
    def test_clock_matches_offline(self, message_exec):
        om = replay_into_monitor(message_exec.trace)
        for eid in message_exec.iter_ids():
            assert list(om.clock(eid)) == list(message_exec.clock(eid))

    def test_precedes_matches_offline(self, message_exec):
        om = replay_into_monitor(message_exec.trace)
        ids = list(message_exec.iter_ids())
        for a in ids:
            for b in ids:
                assert om.precedes(a, b) == message_exec.precedes(a, b)

    def test_receive_before_send_rejected(self):
        from repro.events.builder import MessageHandle

        om = OnlineMonitor(2)
        with pytest.raises(ValueError, match="before its send"):
            om.recv(1, MessageHandle(send=(0, 1)))

    def test_to_execution(self, message_exec):
        om = replay_into_monitor(message_exec.trace)
        assert om.to_execution().trace == message_exec.trace


class TestIntervals:
    def test_tagging_and_close(self):
        om = OnlineMonitor(2)
        om.internal(0, interval="X")
        om.internal(1, interval="X")
        iv = om.interval("X")
        assert iv.count == 2
        assert iv.node_set == (0, 1)
        om.close("X")
        with pytest.raises(ValueError, match="already closed"):
            om.internal(0, interval="X")

    def test_close_empty_rejected(self):
        om = OnlineMonitor(1)
        om.interval("X")
        with pytest.raises(ValueError, match="empty"):
            om.close("X")

    def test_holds_requires_closed(self):
        om = OnlineMonitor(2)
        om.internal(0, interval="X")
        om.internal(1, interval="Y")
        om.close("X")
        with pytest.raises(ValueError, match="not closed"):
            om.holds("R4", "X", "Y")


class TestOnlineOfflineAgreement:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(2, 5),
        k=st.integers(3, 10),
    )
    def test_all_relations_agree(self, seed, nodes, k):
        from repro.simulation.workloads import random_trace
        from repro.nonatomic.selection import random_disjoint_pair

        trace = random_trace(nodes, events_per_node=k, msg_prob=0.4, seed=seed)
        om = replay_into_monitor(trace)
        ex = om.to_execution()
        rng = np.random.default_rng(seed)
        try:
            x, y = random_disjoint_pair(ex, rng, events_per_node=2)
        except ValueError:
            return
        # register the same intervals online
        for eid in sorted(x.ids):
            om.interval("X").add(eid)
        for eid in sorted(y.ids):
            om.interval("Y").add(eid)
        om.close("X")
        om.close("Y")
        lin = LinearEvaluator(ex)
        for rel in BASE_RELATIONS:
            assert om.holds(rel, "X", "Y") == lin.evaluate(rel, x, y), rel
        for spec in FAMILY32:
            assert om.holds(spec, "X", "Y") == lin.evaluate_spec(
                spec, x, y
            ), spec

    def test_string_specs(self, message_exec):
        om = replay_into_monitor(message_exec.trace)
        om.interval("X").add((0, 1))
        om.interval("Y").add((1, 2))
        om.close("X")
        om.close("Y")
        assert om.holds("R1", "X", "Y")
        assert om.holds("R1(U,L)", "X", "Y")


class TestWatches:
    def test_watch_fires_on_close(self):
        om = OnlineMonitor(2)
        om.watch("ordering", "R1(X, Y)")
        h = om.send(0, interval="X")
        om.recv(1, h, interval="Y")
        assert om.close("X") == []
        fired = om.close("Y")
        assert len(fired) == 1
        assert fired[0].name == "ordering"
        assert fired[0].passed

    def test_watch_negative_result(self):
        om = OnlineMonitor(2)
        om.watch("impossible", "R1(Y, X)")
        h = om.send(0, interval="X")
        om.recv(1, h, interval="Y")
        om.close("X")
        fired = om.close("Y")
        assert not fired[0].passed

    def test_watch_waits_for_all_names(self):
        om = OnlineMonitor(3)
        om.watch("w", "R4(A, B) and R4(B, C)")
        om.internal(0, interval="A")
        om.internal(1, interval="B")
        om.internal(2, interval="C")
        assert om.close("A") == []
        assert om.close("B") == []
        assert len(om.close("C")) == 1

    def test_notifications_accumulate(self):
        om = OnlineMonitor(2)
        om.watch("w1", "R4(X, Y)")
        om.watch("w2", "not R4(Y, X)")
        h = om.send(0, interval="X")
        om.recv(1, h, interval="Y")
        om.close("X")
        om.close("Y")
        assert {n.name for n in om.notifications} == {"w1", "w2"}
