"""Experiment E-T1: Table 1's evaluation conditions are exact.

The central correctness property of the reproduction: for disjoint
nonatomic events on random executions, the naive (definition-level),
polynomial (per-node extrema) and linear (cut-timestamp) engines agree
on all 8 base relations and all 32 family relations — with and without
the Key-Idea-2 node restriction.
"""

import pytest
from hypothesis import given, settings

from repro.core.linear import LinearEvaluator
from repro.core.naive import NaiveEvaluator
from repro.core.polynomial import PolynomialEvaluator
from repro.core.relations import BASE_RELATIONS, FAMILY32, Relation
from repro.nonatomic.event import NonatomicEvent
from repro.simulation.workloads import (
    barrier_trace,
    broadcast_trace,
    pipeline_trace,
    random_execution,
    ring_trace,
)
from repro.events.poset import Execution
from repro.nonatomic.selection import random_disjoint_pair

from .strategies import execution_with_pair


def engines(ex):
    return (
        NaiveEvaluator(ex),
        PolynomialEvaluator(ex),
        LinearEvaluator(ex),
        LinearEvaluator(ex, node_restriction=False),
    )


class TestBaseRelationEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(pair=execution_with_pair())
    def test_engines_agree_base(self, pair):
        ex, x, y = pair
        naive, poly, lin, lin_full = engines(ex)
        for rel in BASE_RELATIONS:
            expected = naive.evaluate(rel, x, y)
            assert poly.evaluate(rel, x, y) == expected, rel
            assert lin.evaluate(rel, x, y) == expected, rel
            assert lin_full.evaluate(rel, x, y) == expected, rel

    @settings(max_examples=60, deadline=None)
    @given(pair=execution_with_pair())
    def test_engines_agree_reversed_args(self, pair):
        """Same property with X and Y swapped (asymmetric relations)."""
        ex, x, y = pair
        naive, _poly, lin, _ = engines(ex)
        for rel in BASE_RELATIONS:
            assert lin.evaluate(rel, y, x) == naive.evaluate(rel, y, x), rel


class TestFamily32Equivalence:
    @settings(max_examples=80, deadline=None)
    @given(pair=execution_with_pair())
    def test_engines_agree_family(self, pair):
        ex, x, y = pair
        naive, poly, lin, lin_full = engines(ex)
        for spec in FAMILY32:
            expected = naive.evaluate_spec(spec, x, y)
            assert poly.evaluate_spec(spec, x, y) == expected, spec
            assert lin.evaluate_spec(spec, x, y) == expected, spec
            assert lin_full.evaluate_spec(spec, x, y) == expected, spec


class TestStructuredWorkloads:
    """Equivalence on every structured workload family (seeded sweeps)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_workload(self, seed, rng):
        ex = random_execution(5, events_per_node=12, msg_prob=0.4, seed=seed)
        self._check(ex, rng)

    @pytest.mark.parametrize(
        "trace_fn",
        [
            lambda: ring_trace(5, rounds=2),
            lambda: pipeline_trace(4, items=4),
            lambda: broadcast_trace(5, rounds=2),
            lambda: barrier_trace(4, phases=2),
        ],
        ids=["ring", "pipeline", "broadcast", "barrier"],
    )
    def test_structured_workload(self, trace_fn, rng):
        self._check(Execution(trace_fn()), rng)

    @staticmethod
    def _check(ex, rng):
        naive, poly, lin, lin_full = engines(ex)
        for _ in range(15):
            x, y = random_disjoint_pair(ex, rng, events_per_node=3)
            for rel in BASE_RELATIONS:
                expected = naive.evaluate(rel, x, y)
                assert poly.evaluate(rel, x, y) == expected
                assert lin.evaluate(rel, x, y) == expected
                assert lin_full.evaluate(rel, x, y) == expected


class TestKnownInstances:
    """Hand-checked truth tables on the fixture executions."""

    def test_fully_ordered(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 2)])
        y = NonatomicEvent(message_exec, [(1, 2), (1, 3)])
        lin = LinearEvaluator(message_exec)
        for rel in BASE_RELATIONS:
            assert lin.evaluate(rel, x, y), rel  # all hold when X < Y

    def test_fully_concurrent(self, concurrent_exec):
        x = NonatomicEvent(concurrent_exec, [(0, 1), (0, 2)])
        y = NonatomicEvent(concurrent_exec, [(1, 1), (1, 2)])
        lin = LinearEvaluator(concurrent_exec)
        for rel in BASE_RELATIONS:
            assert not lin.evaluate(rel, x, y), rel

    def test_partial_overlap_truth_table(self, message_exec):
        # X = {a1, b1}, Y = {a3, b2}; the message a2 -> b2 makes b2 a
        # common upper bound of X, and a1 a common lower bound of Y,
        # but b1 never precedes a3 so R1 fails.
        x = NonatomicEvent(message_exec, [(0, 1), (1, 1)])
        y = NonatomicEvent(message_exec, [(0, 3), (1, 2)])
        lin = LinearEvaluator(message_exec)
        assert not lin.evaluate(Relation.R1, x, y)  # b1 not< a3
        assert lin.evaluate(Relation.R2, x, y)  # a1<a3, b1<b2
        assert lin.evaluate(Relation.R2P, x, y)  # b2 above all of X
        assert lin.evaluate(Relation.R3, x, y)  # a1 below all of Y
        assert lin.evaluate(Relation.R3P, x, y)  # a3>a1, b2>b1
        assert lin.evaluate(Relation.R4, x, y)

    def test_r2_r2p_differ_on_posets(self, diamond_exec):
        """The paper's point: R2' and R2 differ for poset events."""
        x = NonatomicEvent(diamond_exec, [(1, 1), (2, 1)])
        y = NonatomicEvent(diamond_exec, [(1, 2), (2, 2)])
        lin = LinearEvaluator(diamond_exec)
        # every x precedes its own node's later y (R2)...
        assert lin.evaluate(Relation.R2, x, y)
        # ...but no single y is above both branches (R2')
        assert not lin.evaluate(Relation.R2P, x, y)

    def test_r3_r3p_differ_on_posets(self, diamond_exec):
        x = NonatomicEvent(diamond_exec, [(1, 2), (2, 2)])
        y = NonatomicEvent(diamond_exec, [(3, 1), (3, 2)])
        lin = LinearEvaluator(diamond_exec)
        # (3,1) receives only from (1,2): not all of Y is above (2,2)…
        assert lin.evaluate(Relation.R3, x, y)  # (1,2) < both Y events
        assert lin.evaluate(Relation.R3P, x, y)
        x2 = NonatomicEvent(diamond_exec, [(1, 1), (2, 1)])
        y2 = NonatomicEvent(diamond_exec, [(1, 2), (2, 2)])
        assert not lin.evaluate(Relation.R3, x2, y2)
        assert lin.evaluate(Relation.R3P, x2, y2)

    def test_synonyms_agree(self, medium_exec, rng):
        lin = LinearEvaluator(medium_exec)
        for _ in range(25):
            x, y = random_disjoint_pair(medium_exec, rng)
            assert lin.evaluate(Relation.R1, x, y) == lin.evaluate(
                Relation.R1P, x, y
            )
            assert lin.evaluate(Relation.R4, x, y) == lin.evaluate(
                Relation.R4P, x, y
            )
