"""Experiments F-1/F-2/F-3: the paper-figure scenarios."""

import pytest

from repro.core.evaluator import SynchronizationAnalyzer
from repro.simulation.scenarios import figure1, figure2, figure3


class TestFigure1:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure1()

    def test_node_sets_overlap(self, fig):
        assert fig.x.node_set == (0, 1, 2)
        assert fig.y.node_set == (1, 2, 3)

    def test_proxies_are_per_node_extrema(self, fig):
        assert fig.lx.ids == set(fig.x.first_ids())
        assert fig.ux.ids == set(fig.x.last_ids())
        assert fig.ly.ids == set(fig.y.first_ids())
        assert fig.uy.ids == set(fig.y.last_ids())

    def test_pair_is_nontrivial(self, fig):
        """Some but not all of the 32 relations hold, as the figure's
        partially-ordered X/Y suggest."""
        an = SynchronizationAnalyzer(fig.execution)
        results = an.all_relations(fig.x, fig.y)
        assert any(results.values())
        assert not all(results.values())

    def test_bridge_gives_r4(self, fig):
        an = SynchronizationAnalyzer(fig.execution)
        assert an.holds("R4", fig.x, fig.y)
        assert not an.holds("R1", fig.x, fig.y)


class TestFigure2:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure2()

    def test_eight_events_four_nodes(self, fig):
        assert len(fig.x) == 8
        assert fig.x.width == 4
        assert all(len(fig.x.restrict(n)) == 2 for n in range(4))

    def test_cut_containments(self, fig):
        assert fig.cuts.c1.issubset(fig.cuts.c2)
        assert fig.cuts.c3.issubset(fig.cuts.c4)

    def test_cuts_nontrivial(self, fig):
        """C1 is neither empty nor the whole prefix; C4 stops short of ⊤."""
        ex = fig.execution
        assert fig.cuts.c1.vector.any()
        assert not all(
            fig.cuts.c4.vector[i] == ex.num_real(i) + 1
            for i in range(ex.num_nodes)
        )

    def test_surfaces_distinct(self, fig):
        vecs = {tuple(map(int, c.vector)) for c in (
            fig.cuts.c1, fig.cuts.c2, fig.cuts.c3, fig.cuts.c4,
        )}
        assert len(vecs) == 4

    def test_past_cuts_downward_closed(self, fig):
        assert fig.cuts.c1.is_downward_closed()
        assert fig.cuts.c2.is_downward_closed()


class TestFigure3:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure3()

    def test_coincidences_of_section_2_5(self, fig):
        """C1(L_X)=C1(X), C2(U_X)=C2(X), C3(L_X)=C3(X), C4(U_X)=C4(X)."""
        assert fig.cuts_lx.c1 == fig.cuts_x.c1
        assert fig.cuts_ux.c2 == fig.cuts_x.c2
        assert fig.cuts_lx.c3 == fig.cuts_x.c3
        assert fig.cuts_ux.c4 == fig.cuts_x.c4

    def test_other_cuts_distinct(self, fig):
        """The remaining four proxy cuts genuinely differ from X's."""
        assert fig.cuts_ux.c1 != fig.cuts_x.c1
        assert fig.cuts_lx.c2 != fig.cuts_x.c2
        assert fig.cuts_ux.c3 != fig.cuts_x.c3
        assert fig.cuts_lx.c4 != fig.cuts_x.c4

    def test_proxy_cut_ordering(self, fig):
        """L_X's cuts sit below U_X's (componentwise), since every L
        event precedes its node's U event."""
        assert fig.cuts_lx.c1.issubset(fig.cuts_ux.c1)
        assert fig.cuts_lx.c2.issubset(fig.cuts_ux.c2)
        assert fig.cuts_lx.c3.issubset(fig.cuts_ux.c3)
        assert fig.cuts_lx.c4.issubset(fig.cuts_ux.c4)

    def test_eight_cuts_total(self, fig):
        all_cuts = [
            fig.cuts_lx.c1, fig.cuts_lx.c2, fig.cuts_lx.c3, fig.cuts_lx.c4,
            fig.cuts_ux.c1, fig.cuts_ux.c2, fig.cuts_ux.c3, fig.cuts_ux.c4,
        ]
        assert len(all_cuts) == 8
