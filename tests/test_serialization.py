"""Tests for trace JSON (de)serialisation."""

import json

import pytest
from hypothesis import given, settings

from repro.events.serialization import (
    dumps,
    load,
    loads,
    save,
    trace_from_dict,
    trace_to_dict,
)
from repro.events.trace import TraceError
from repro.simulation.workloads import random_trace

from .strategies import traces


class TestRoundTrip:
    def test_simple_round_trip(self):
        tr = random_trace(3, events_per_node=8, msg_prob=0.4, seed=5)
        assert loads(dumps(tr)) == tr

    @settings(max_examples=40, deadline=None)
    @given(tr=traces())
    def test_property_round_trip(self, tr):
        assert trace_from_dict(trace_to_dict(tr)) == tr

    def test_file_round_trip(self, tmp_path):
        tr = random_trace(2, events_per_node=5, seed=1)
        path = tmp_path / "trace.json"
        save(tr, str(path), indent=2)
        assert load(str(path)) == tr

    def test_metadata_preserved(self):
        from repro.events.builder import TraceBuilder

        b = TraceBuilder(1)
        b.internal(0, label="boot", time=2.5, payload={"a": [1, 2]})
        tr = b.build()
        back = loads(dumps(tr))
        ev = back.event((0, 1))
        assert ev.label == "boot"
        assert ev.time == 2.5
        assert ev.payload == {"a": [1, 2]}

    def test_unserialisable_payload_dropped(self):
        from repro.events.builder import TraceBuilder

        b = TraceBuilder(1)
        b.internal(0, payload=object())
        back = loads(dumps(b.build()))
        assert back.event((0, 1)).payload is None


class TestMalformedInput:
    def test_bad_version(self):
        with pytest.raises(TraceError, match="version"):
            trace_from_dict({"version": 99})

    def test_missing_fields(self):
        with pytest.raises(TraceError, match="malformed"):
            trace_from_dict({"version": 1})

    def test_node_count_mismatch(self):
        with pytest.raises(TraceError, match="event lists"):
            trace_from_dict(
                {"version": 1, "num_nodes": 2, "events": [[]], "messages": []}
            )

    def test_unknown_kind(self):
        data = {
            "version": 1,
            "num_nodes": 1,
            "events": [[{"kind": "quantum"}]],
            "messages": [],
        }
        with pytest.raises(TraceError, match="unknown event kind"):
            trace_from_dict(data)

    def test_malformed_message(self):
        data = {
            "version": 1,
            "num_nodes": 1,
            "events": [[{"kind": "send"}]],
            "messages": [[[0, 1]]],
        }
        with pytest.raises(TraceError, match="malformed message"):
            trace_from_dict(data)

    def test_inconsistent_message_becomes_trace_error(self):
        data = {
            "version": 1,
            "num_nodes": 1,
            "events": [[{"kind": "send"}]],
            "messages": [[[0, 1], [0, 9]]],
        }
        with pytest.raises(TraceError):
            trace_from_dict(data)

    def test_json_structure(self):
        tr = random_trace(2, events_per_node=3, seed=0)
        data = json.loads(dumps(tr))
        assert data["version"] == 1
        assert data["num_nodes"] == 2
        assert len(data["events"]) == 2
