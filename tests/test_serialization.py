"""Tests for trace JSON (de)serialisation."""

import json

import pytest
from hypothesis import given, settings

from repro.events.serialization import (
    MAX_TRACE_BYTES,
    PayloadTooLargeError,
    SchemaVersionError,
    dumps,
    load,
    loads,
    save,
    trace_from_dict,
    trace_to_dict,
)
from repro.events.trace import TraceError
from repro.simulation.workloads import random_trace

from .strategies import traces


class TestRoundTrip:
    def test_simple_round_trip(self):
        tr = random_trace(3, events_per_node=8, msg_prob=0.4, seed=5)
        assert loads(dumps(tr)) == tr

    @settings(max_examples=40, deadline=None)
    @given(tr=traces())
    def test_property_round_trip(self, tr):
        assert trace_from_dict(trace_to_dict(tr)) == tr

    def test_file_round_trip(self, tmp_path):
        tr = random_trace(2, events_per_node=5, seed=1)
        path = tmp_path / "trace.json"
        save(tr, str(path), indent=2)
        assert load(str(path)) == tr

    def test_metadata_preserved(self):
        from repro.events.builder import TraceBuilder

        b = TraceBuilder(1)
        b.internal(0, label="boot", time=2.5, payload={"a": [1, 2]})
        tr = b.build()
        back = loads(dumps(tr))
        ev = back.event((0, 1))
        assert ev.label == "boot"
        assert ev.time == 2.5
        assert ev.payload == {"a": [1, 2]}

    def test_unserialisable_payload_dropped(self):
        from repro.events.builder import TraceBuilder

        b = TraceBuilder(1)
        b.internal(0, payload=object())
        back = loads(dumps(b.build()))
        assert back.event((0, 1)).payload is None


class TestMalformedInput:
    def test_bad_version(self):
        with pytest.raises(TraceError, match="version"):
            trace_from_dict({"version": 99})

    def test_missing_fields(self):
        with pytest.raises(TraceError, match="malformed"):
            trace_from_dict({"version": 1})

    def test_node_count_mismatch(self):
        with pytest.raises(TraceError, match="event lists"):
            trace_from_dict(
                {"version": 1, "num_nodes": 2, "events": [[]], "messages": []}
            )

    def test_unknown_kind(self):
        data = {
            "version": 1,
            "num_nodes": 1,
            "events": [[{"kind": "quantum"}]],
            "messages": [],
        }
        with pytest.raises(TraceError, match="unknown event kind"):
            trace_from_dict(data)

    def test_malformed_message(self):
        data = {
            "version": 1,
            "num_nodes": 1,
            "events": [[{"kind": "send"}]],
            "messages": [[[0, 1]]],
        }
        with pytest.raises(TraceError, match="malformed message"):
            trace_from_dict(data)

    def test_inconsistent_message_becomes_trace_error(self):
        data = {
            "version": 1,
            "num_nodes": 1,
            "events": [[{"kind": "send"}]],
            "messages": [[[0, 1], [0, 9]]],
        }
        with pytest.raises(TraceError):
            trace_from_dict(data)

    def test_json_structure(self):
        tr = random_trace(2, events_per_node=3, seed=0)
        data = json.loads(dumps(tr))
        assert data["version"] == 1
        assert data["num_nodes"] == 2
        assert len(data["events"]) == 2


class TestLoadsGuard:
    """The wire-facing ``loads`` guard: size ceiling + typed errors."""

    def test_round_trip_under_limit(self):
        tr = random_trace(3, events_per_node=6, msg_prob=0.4, seed=9)
        text = dumps(tr)
        assert loads(text, max_bytes=len(text)) == tr
        assert loads(text, max_bytes=MAX_TRACE_BYTES) == tr

    def test_oversized_payload_rejected_before_parsing(self):
        tr = random_trace(2, events_per_node=4, seed=3)
        text = dumps(tr)
        with pytest.raises(PayloadTooLargeError, match="byte"):
            loads(text, max_bytes=len(text) - 1)
        # even syntactically invalid JSON is rejected at the size gate,
        # proving the check runs before the parser
        with pytest.raises(PayloadTooLargeError):
            loads("{" * 100, max_bytes=10)

    def test_size_counts_encoded_bytes_for_str(self):
        # one multi-byte character: 1 code point, 3 UTF-8 bytes
        payload = '"€"'
        with pytest.raises(PayloadTooLargeError):
            loads(payload, max_bytes=len(payload))  # 3 < 5 bytes

    def test_bytes_input_round_trip(self):
        tr = random_trace(2, events_per_node=5, msg_prob=0.5, seed=7)
        raw = dumps(tr).encode("utf-8")
        assert loads(raw, max_bytes=len(raw)) == tr

    def test_schema_version_typed_error(self):
        with pytest.raises(SchemaVersionError, match="version"):
            loads('{"version": 99}')

    def test_malformed_json_is_trace_error(self):
        with pytest.raises(TraceError, match="malformed"):
            loads("{not json")

    def test_non_object_payload_is_trace_error(self):
        with pytest.raises(TraceError, match="JSON object"):
            loads("[1, 2, 3]")
        with pytest.raises(TraceError, match="JSON object"):
            loads("42")

    def test_typed_errors_are_trace_errors(self):
        # callers may catch the broad TraceError and still distinguish
        assert issubclass(PayloadTooLargeError, TraceError)
        assert issubclass(SchemaVersionError, TraceError)
