"""Capstone integration: one trace through every subsystem.

Simulate a multi-phase distributed run, round-trip it through JSON,
then drive the full analysis surface over the same intervals — offline
engines, online monitor, condition checker, timed constraints, global
states, interval graph, metrics and rendering — asserting the
subsystems tell one consistent story.
"""

import numpy as np
import pytest

from repro.analysis.intervalgraph import serialization_layers
from repro.analysis.metrics import summarize
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.explain import explain
from repro.core.relations import BASE_RELATIONS
from repro.events.poset import Execution
from repro.events.serialization import loads as trace_loads
from repro.events.serialization import dumps as trace_dumps
from repro.globalstates import GlobalStateLattice, possibly_conjunctive
from repro.monitor.checker import ConditionChecker
from repro.monitor.online import OnlineMonitor
from repro.nonatomic.selection import by_label
from repro.realtime import RealTimeChecker, TimedConstraint
from repro.simulation.workloads import barrier_trace
from repro.viz.spacetime import render


@pytest.fixture(scope="module")
def world():
    """A 4-node, 3-phase barrier execution, JSON round-tripped."""
    trace = trace_loads(trace_dumps(barrier_trace(4, phases=3,
                                                  work_per_phase=2)))
    ex = Execution(trace)
    phases = {p: by_label(ex, f"phase{p}", name=f"phase{p}") for p in range(3)}
    return ex, phases


class TestEndToEnd:
    def test_round_trip_preserved_structure(self, world):
        ex, phases = world
        assert ex.num_nodes == 4
        assert all(iv.width == 4 for iv in phases.values())

    def test_offline_story(self, world):
        ex, phases = world
        an = SynchronizationAnalyzer(ex)
        # phases totally ordered, strongest relation is R1(U,L)
        assert an.holds("R1", phases[0], phases[1])
        assert {str(s) for s in an.strongest(phases[0], phases[2])} == {
            "R1(U,L)", "R1'(U,L)",
        }

    def test_condition_checker_agrees(self, world):
        ex, phases = world
        checker = ConditionChecker(SynchronizationAnalyzer(ex))
        report = checker.check(
            "R1(a, b) and R1(b, c) -> R1(a, c)",
            {"a": phases[0], "b": phases[1], "c": phases[2]},
        )
        assert report.passed

    def test_online_replays_to_same_verdicts(self, world):
        ex, phases = world
        # replay the trace into the online monitor
        om = OnlineMonitor(ex.num_nodes)
        pos = [0] * ex.num_nodes
        handles = {}
        progressed = True
        while progressed:
            progressed = False
            for node in range(ex.num_nodes):
                while pos[node] < ex.num_real(node):
                    ev = ex.trace.events_of(node)[pos[node]]
                    send = ex.trace.send_of(ev.eid)
                    if send is not None and send not in handles:
                        break
                    if ev.kind.name == "SEND":
                        handles[ev.eid] = om.send(node, label=ev.label)
                    elif ev.kind.name == "RECV":
                        om.recv(node, handles[send], label=ev.label)
                    else:
                        om.internal(node, label=ev.label)
                    pos[node] += 1
                    progressed = True
        for p, iv in phases.items():
            for eid in sorted(iv.ids):
                om.interval(f"phase{p}").add(eid)
            om.close(f"phase{p}")
        an = SynchronizationAnalyzer(ex)
        for rel in BASE_RELATIONS:
            assert om.holds(rel, "phase0", "phase1") == an.holds(
                rel, phases[0], phases[1]
            ), rel

    def test_timed_constraints(self, world):
        ex, phases = world
        checker = RealTimeChecker(SynchronizationAnalyzer(ex))
        report = checker.check(
            TimedConstraint(
                name="phase-gap", source="phase0", target="phase1",
                causal="R1(phase0, phase1)", max_latency=100.0,
            ),
            {"phase0": phases[0], "phase1": phases[1]},
        )
        assert report.passed
        assert report.measured_latency is not None

    def test_globalstates_story(self, world):
        ex, phases = world
        # detect the barrier point: a consistent state where phase 0 is
        # complete on every node it spans
        locals_ = {
            n: (lambda node, i, t=phases[0].last_at(n): i >= t)
            for n in phases[0].node_set
        }
        least = possibly_conjunctive(ex, locals_)
        assert least is not None
        for n in phases[0].node_set:
            assert least[n] >= phases[0].last_at(n)
            # ...and the least such state predates phase 1's start there
            assert least[n] < phases[1].first_at(n)

    def test_interval_graph_layers(self, world):
        _ex, phases = world
        layers = serialization_layers(list(phases.values()))
        assert layers == [["phase0"], ["phase1"], ["phase2"]]

    def test_metrics_and_render(self, world):
        ex, phases = world
        m = summarize(ex)
        assert m.num_nodes == 4
        assert m.messages.lost == 0
        out = render(ex, intervals={"A": phases[0]}, show_messages=False)
        assert out.count("A") == len(phases[0])

    def test_explain_consistent_with_holds(self, world):
        ex, phases = world
        an = SynchronizationAnalyzer(ex)
        for rel in BASE_RELATIONS:
            assert explain(rel, phases[0], phases[2]).holds == an.holds(
                rel, phases[0], phases[2]
            )

    def test_lattice_contains_barrier_state(self, world):
        ex, phases = world
        lattice = GlobalStateLattice(ex, limit=500_000)
        barrier_state = tuple(
            phases[0].last_at(n) if n in phases[0].node_set else 0
            for n in range(ex.num_nodes)
        )
        # completing phase 0 everywhere is not itself consistent unless
        # the arrive/release messages are included; just assert the
        # induced join with required pasts is consistent
        state = barrier_state
        if not lattice.is_consistent(state):
            import numpy as np

            vec = np.zeros(ex.num_nodes, dtype=int)
            for n in phases[0].node_set:
                vec = np.maximum(vec, ex.clock((n, phases[0].last_at(n))))
            state = tuple(int(v) for v in vec)
        assert lattice.is_consistent(state)
