"""Tests for crash-stop fault injection in the simulator."""

import pytest

from repro.core.linear import LinearEvaluator
from repro.core.naive import NaiveEvaluator
from repro.core.relations import BASE_RELATIONS
from repro.nonatomic.event import NonatomicEvent
from repro.simulation.engine import Simulator, simulate
from repro.simulation.network import ConstantLatency, Network
from repro.simulation.process import Process


class Heartbeat(Process):
    """Sends a heartbeat to the next node every time unit."""

    def __init__(self, beats=5):
        self.beats = beats

    def on_start(self, ctx):
        ctx.set_timer(1.0, tag=0)

    def on_timer(self, ctx, tag):
        ctx.send((ctx.node + 1) % ctx.num_nodes, label=f"hb{tag}")
        if tag + 1 < self.beats:
            ctx.set_timer(1.0, tag=tag + 1)

    def on_message(self, ctx, payload, label, src):
        ctx.internal(label=f"saw-{label}")


def _procs(n=3, beats=5):
    return [Heartbeat(beats) for _ in range(n)]


class TestCrashStop:
    def test_no_crash_baseline(self):
        res = simulate(_procs(), network=Network(ConstantLatency(0.2)))
        assert all(res.trace.num_real(i) > 5 for i in range(3))

    def test_crashed_node_stops_recording(self):
        res = simulate(
            _procs(), network=Network(ConstantLatency(0.2)),
            crash_times={1: 2.5},
        )
        ex = res.execute()
        # node 1's events all predate the crash
        for ev in ex.trace.events_of(1):
            assert ev.time is not None and ev.time < 2.5

    def test_crash_at_zero_means_silent(self):
        res = simulate(
            _procs(), network=Network(ConstantLatency(0.2)),
            crash_times={1: 0.0},
        )
        assert res.trace.num_real(1) == 0
        # others still run
        assert res.trace.num_real(0) > 0

    def test_messages_to_crashed_node_dropped(self):
        res = simulate(
            _procs(), network=Network(ConstantLatency(0.2)),
            crash_times={1: 2.5},
        )
        assert res.messages_dropped > 0
        assert res.messages_sent == res.messages_delivered + res.messages_dropped

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            Simulator(_procs(), crash_times={7: 1.0})

    def test_determinism_with_crashes(self):
        mk = lambda: simulate(
            _procs(), network=Network(ConstantLatency(0.2)),
            crash_times={2: 3.0}, seed=4,
        )
        assert mk().trace == mk().trace

    def test_engines_agree_on_crashed_trace(self, rng):
        from repro.nonatomic.selection import random_disjoint_pair

        res = simulate(
            _procs(n=4, beats=8), network=Network(ConstantLatency(0.3)),
            crash_times={1: 3.0, 3: 5.0},
        )
        ex = res.execute()
        naive, lin = NaiveEvaluator(ex), LinearEvaluator(ex)
        for _ in range(10):
            try:
                x, y = random_disjoint_pair(ex, rng, events_per_node=2)
            except ValueError:
                continue
            for rel in BASE_RELATIONS:
                assert lin.evaluate(rel, x, y) == naive.evaluate(rel, x, y)

    def test_crash_isolates_future_relations(self):
        """Events after a node's crash cannot be caused by it — a
        surviving node's later activity is concurrent with nothing from
        the dead node's would-have-been future."""
        res = simulate(
            _procs(n=2, beats=6), network=Network(ConstantLatency(0.2)),
            crash_times={1: 2.5},
        )
        ex = res.execute()
        k1 = ex.num_real(1)
        assert k1 >= 1
        last_dead = NonatomicEvent(ex, [(1, k1)])
        last_alive = NonatomicEvent(ex, [(0, ex.num_real(0))])
        lin = LinearEvaluator(ex)
        # the dead node's last event precedes nothing on node 0 after
        # the crash only via pre-crash messages; R4 may or may not hold,
        # but the reverse direction must fail (nothing reaches node 1
        # after it crashed)
        assert not lin.evaluate(BASE_RELATIONS[6], last_alive, last_dead) or \
            ex.precedes((0, ex.num_real(0)), (1, k1))
