"""Unit tests for TraceBuilder."""

import pytest

from repro.events.builder import TraceBuilder
from repro.events.event import EventKind


class TestBuilderBasics:
    def test_needs_positive_nodes(self):
        with pytest.raises(ValueError):
            TraceBuilder(0)

    def test_ids_sequential_per_node(self):
        b = TraceBuilder(2)
        assert b.internal(0) == (0, 1)
        assert b.internal(1) == (1, 1)
        assert b.internal(0) == (0, 2)

    def test_count_and_last_id(self):
        b = TraceBuilder(1)
        assert b.count(0) == 0
        assert b.last_id(0) is None
        b.internal(0)
        assert b.count(0) == 1
        assert b.last_id(0) == (0, 1)

    def test_unknown_node_rejected(self):
        b = TraceBuilder(1)
        with pytest.raises(ValueError, match="no such node"):
            b.internal(3)

    def test_event_metadata_recorded(self):
        b = TraceBuilder(1)
        b.internal(0, label="boot", time=1.5, payload={"k": 1})
        ev = b.build().event((0, 1))
        assert ev.label == "boot"
        assert ev.time == 1.5
        assert ev.payload == {"k": 1}


class TestBuilderMessaging:
    def test_send_recv_roundtrip(self):
        b = TraceBuilder(2)
        h = b.send(0)
        r = b.recv(1, h)
        tr = b.build()
        assert tr.event(h.send).kind is EventKind.SEND
        assert tr.event(r).kind is EventKind.RECV
        assert tr.send_of(r) == h.send

    def test_double_receive_rejected(self):
        b = TraceBuilder(2)
        h = b.send(0)
        b.recv(1, h)
        with pytest.raises(ValueError, match="already received"):
            b.recv(1, h)

    def test_message_convenience(self):
        b = TraceBuilder(2)
        s, r = b.message(0, 1, label="m")
        tr = b.build()
        assert tr.recv_of(s) == r
        assert tr.event(s).label == "m"

    def test_unreceived_send_survives_build(self):
        b = TraceBuilder(2)
        h = b.send(0)
        tr = b.build()
        assert tr.recv_of(h.send) is None


class TestBuilderFinalisation:
    def test_build_is_snapshot(self):
        b = TraceBuilder(1)
        b.internal(0)
        t1 = b.build()
        b.internal(0)
        t2 = b.build()
        assert t1.total_events == 1
        assert t2.total_events == 2

    def test_execute_returns_execution(self):
        b = TraceBuilder(2)
        h = b.send(0)
        b.recv(1, h)
        ex = b.execute()
        assert ex.precedes((0, 1), (1, 1))
