"""Robustness and failure-injection tests.

The relation machinery must stay correct on hostile inputs: heavy
message loss (sends without receives), non-FIFO reordering, trace
extensions, and degenerate shapes (empty nodes, single events,
everything-on-one-node).
"""

import pytest

from repro.core.linear import LinearEvaluator
from repro.core.naive import NaiveEvaluator
from repro.core.relations import BASE_RELATIONS
from repro.events.builder import TraceBuilder
from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.selection import random_disjoint_pair
from repro.simulation.engine import simulate
from repro.simulation.network import Network, UniformLatency
from repro.simulation.process import Process


class Chatter(Process):
    """Every node spams every other node a few times."""

    def __init__(self, rounds=4):
        self.rounds = rounds

    def on_start(self, ctx):
        ctx.set_timer(0.1, tag=0)

    def on_timer(self, ctx, tag):
        ctx.broadcast(payload=tag, label=f"r{tag}")
        if tag + 1 < self.rounds:
            ctx.set_timer(1.0, tag=tag + 1)

    def on_message(self, ctx, payload, label, src):
        ctx.internal(label=f"got-{label}")


def _engines_agree(ex, rng, trials=15):
    naive, lin = NaiveEvaluator(ex), LinearEvaluator(ex)
    for _ in range(trials):
        try:
            x, y = random_disjoint_pair(ex, rng, events_per_node=3)
        except ValueError:
            return
        for rel in BASE_RELATIONS:
            assert lin.evaluate(rel, x, y) == naive.evaluate(rel, x, y), rel


class TestLossyNetworks:
    @pytest.mark.parametrize("drop", [0.2, 0.5, 0.9])
    def test_engines_agree_under_loss(self, drop, rng):
        res = simulate(
            [Chatter() for _ in range(4)],
            network=Network(UniformLatency(0.1, 2.0), drop_prob=drop),
            seed=int(drop * 100),
        )
        assert res.messages_dropped > 0
        _engines_agree(res.execute(), rng)

    def test_total_loss_means_full_concurrency(self, rng):
        res = simulate(
            [Chatter(rounds=2) for _ in range(3)],
            network=Network(drop_prob=0.999999),
            seed=1,
        )
        ex = res.execute()
        lin = LinearEvaluator(ex)
        # without deliveries, cross-node intervals satisfy nothing
        x = NonatomicEvent(ex, [(0, 1)])
        y = NonatomicEvent(ex, [(1, 1)])
        for rel in BASE_RELATIONS:
            assert not lin.evaluate(rel, x, y)


class TestNonFifo:
    def test_engines_agree_with_reordering(self, rng):
        res = simulate(
            [Chatter(rounds=5) for _ in range(4)],
            network=Network(UniformLatency(0.1, 8.0), fifo=False),
            seed=9,
        )
        _engines_agree(res.execute(), rng)


class TestTraceExtension:
    def test_relations_stable_under_suffix(self, rng):
        """Appending new events after the whole computation does not
        change relations between existing intervals."""
        b = TraceBuilder(3)
        for step in range(20):
            node = step % 3
            if step % 5 == 2:
                h = b.send(node)
                b.recv((node + 1) % 3, h)
            else:
                b.internal(node)
        ex1 = b.execute()
        x, y = random_disjoint_pair(ex1, rng, events_per_node=2)
        lin1 = LinearEvaluator(ex1)
        before = {rel: lin1.evaluate(rel, x, y) for rel in BASE_RELATIONS}

        for node in range(3):
            b.internal(node)
        h = b.send(0)
        b.recv(2, h)
        ex2 = b.execute()
        x2 = NonatomicEvent(ex2, x.ids)
        y2 = NonatomicEvent(ex2, y.ids)
        lin2 = LinearEvaluator(ex2)
        after = {rel: lin2.evaluate(rel, x2, y2) for rel in BASE_RELATIONS}
        assert before == after

    def test_relations_stable_under_new_node(self, rng):
        """Adding an entirely disconnected node leaves relations alone."""
        b = TraceBuilder(2)
        x1 = b.internal(0)
        h = b.send(0)
        y1 = b.recv(1, h)
        ex1 = b.execute()

        b2 = TraceBuilder(3)
        b2.internal(0)
        h2 = b2.send(0)
        b2.recv(1, h2)
        b2.internal(2)
        b2.internal(2)
        ex2 = b2.execute()

        lin1 = LinearEvaluator(ex1)
        lin2 = LinearEvaluator(ex2)
        for rel in BASE_RELATIONS:
            assert lin1.evaluate(
                rel,
                NonatomicEvent(ex1, [x1]),
                NonatomicEvent(ex1, [y1]),
            ) == lin2.evaluate(
                rel,
                NonatomicEvent(ex2, [(0, 1)]),
                NonatomicEvent(ex2, [(1, 1)]),
            ), rel


class TestDegenerateShapes:
    def test_single_event_execution(self):
        b = TraceBuilder(1)
        b.internal(0)
        ex = b.execute()
        LinearEvaluator(ex)
        x = NonatomicEvent(ex, [(0, 1)])
        # cannot build a disjoint Y; just verify cuts behave
        from repro.core.cuts import cuts_of

        q = cuts_of(x)
        assert list(q.c1.vector) == [1]
        assert list(q.c3.vector) == [1]

    def test_everything_on_one_node(self, rng):
        b = TraceBuilder(4)
        for _ in range(12):
            b.internal(2)
        ex = b.execute()
        _engines_agree(ex, rng, trials=10)

    def test_two_events_minimum(self):
        b = TraceBuilder(1)
        a = b.internal(0)
        c = b.internal(0)
        ex = b.execute()
        lin = LinearEvaluator(ex)
        x = NonatomicEvent(ex, [a])
        y = NonatomicEvent(ex, [c])
        for rel in BASE_RELATIONS:
            assert lin.evaluate(rel, x, y)
            assert not lin.evaluate(rel, y, x)

    def test_wide_flat_execution(self, rng):
        """Many nodes, one event each, no messages."""
        b = TraceBuilder(30)
        for i in range(30):
            b.internal(i)
        _engines_agree(b.execute(), rng, trials=10)

    def test_long_chain_through_all_nodes(self, rng):
        b = TraceBuilder(8)
        h = None
        for i in range(24):
            node = i % 8
            if h is not None:
                b.recv(node, h)
            h = b.send(node)
        _engines_agree(b.execute(), rng, trials=10)
