"""Tests for the explainable evaluation API."""

import pytest
from hypothesis import given, settings

from repro.core.explain import explain
from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS, FAMILY32, Relation

from .strategies import execution_with_pair


class TestVerdictAgreement:
    @settings(max_examples=80, deadline=None)
    @given(pair=execution_with_pair())
    def test_matches_linear_engine_base(self, pair):
        ex, x, y = pair
        lin = LinearEvaluator(ex)
        for rel in BASE_RELATIONS:
            assert explain(rel, x, y).holds == lin.evaluate(rel, x, y), rel

    @settings(max_examples=30, deadline=None)
    @given(pair=execution_with_pair())
    def test_matches_linear_engine_family(self, pair):
        ex, x, y = pair
        lin = LinearEvaluator(ex)
        for spec in FAMILY32[::3]:
            assert explain(spec, x, y).holds == lin.evaluate_spec(
                spec, x, y
            ), spec

    def test_string_spec(self, message_exec):
        from repro.nonatomic.event import NonatomicEvent

        x = NonatomicEvent(message_exec, [(0, 1)])
        y = NonatomicEvent(message_exec, [(1, 2)])
        assert explain("R1", x, y).holds
        assert explain("R1(U,L)", x, y).holds


class TestEvidence:
    @pytest.fixture
    def xy(self, message_exec):
        from repro.nonatomic.event import NonatomicEvent

        x = NonatomicEvent(message_exec, [(0, 1), (0, 2)], name="X")
        y = NonatomicEvent(message_exec, [(1, 2), (1, 3)], name="Y")
        return x, y

    def test_positive_universal_scans_everything(self, message_exec, xy):
        x, y = xy
        e = explain(Relation.R2, x, y)
        assert e.holds
        assert e.mode == "forall-x"
        assert len(e.comparisons) == x.width
        assert e.witness_node is None  # no short-circuit
        assert all(c.satisfied for c in e.comparisons)

    def test_negative_universal_names_witness(self, message_exec, xy):
        x, y = xy
        e = explain(Relation.R1, y, x)  # Y before X fails
        assert not e.holds
        assert e.witness_node is not None
        assert not e.comparisons[-1].satisfied

    def test_positive_existential_names_witness(self, message_exec, xy):
        x, y = xy
        e = explain(Relation.R4, x, y)
        assert e.holds
        assert e.mode == "exists"
        assert e.witness_node is not None
        assert e.comparisons[-1].satisfied

    def test_negative_existential_scans_everything(self, message_exec, xy):
        x, y = xy
        e = explain(Relation.R4, y, x)
        assert not e.holds
        assert e.witness_node is None
        assert len(e.comparisons) == len(e.scanned_nodes)

    def test_cut_pair_names(self, message_exec, xy):
        x, y = xy
        assert explain(Relation.R3, x, y).cut_pair == ("∩⇓Y", "∩⇑X")
        assert explain(Relation.R2P, x, y).cut_pair == ("∪⇓Y", "∪⇑X")

    def test_scanned_nodes_respect_anchoring(self, message_exec, xy):
        x, y = xy
        assert explain(Relation.R3, x, y).scanned_nodes == x.node_set
        assert explain(Relation.R2P, x, y).scanned_nodes == y.node_set

    def test_str_rendering(self, message_exec, xy):
        x, y = xy
        text = str(explain(Relation.R1, x, y))
        assert "R1(X, Y) holds" in text
        assert "node 0" in text

    def test_comparison_str(self, message_exec, xy):
        x, y = xy
        e = explain(Relation.R1, x, y)
        assert ">=" in str(e.comparisons[0])


class TestComparisonBudget:
    @settings(max_examples=50, deadline=None)
    @given(pair=execution_with_pair())
    def test_never_more_than_theorem20(self, pair):
        from repro.analysis.complexity import predicted_comparisons

        ex, x, y = pair
        for rel in BASE_RELATIONS:
            e = explain(rel, x, y)
            assert len(e.comparisons) <= predicted_comparisons(
                rel, x.width, y.width
            ), rel
