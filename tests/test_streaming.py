"""Streaming-ingest equivalence properties.

The streaming fast path must be observationally identical to the cold
offline build it replaces: a trace fed event-by-event through
:class:`~repro.monitor.online.OnlineMonitor` — intervals tagged and
closed mid-stream, verdicts served from incrementally maintained cuts,
finalisation adopting the live clock table zero-copy — yields the same
verdicts and the same cut quadruples as an
:class:`~repro.events.poset.Execution` built from scratch on the full
trace.  This must survive growth: extending an already-queried
:class:`~repro.core.context.AnalysisContext` with the stream's next
phase invalidates the cut and verdict caches and the refilled values
again match a cold build.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cuts import cut_stats, cuts_of
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS, FAMILY32
from repro.events.poset import Execution
from repro.monitor.online import OnlineMonitor
from repro.nonatomic.event import NonatomicEvent
from repro.simulation.workloads import random_trace


def _causal_order(trace):
    """A causally valid global replay order (send before its receive)."""
    order = []
    emitted = set()
    pos = [0] * trace.num_nodes
    progressed = True
    while progressed:
        progressed = False
        for node in range(trace.num_nodes):
            while pos[node] < trace.num_real(node):
                ev = trace.events_of(node)[pos[node]]
                send = trace.send_of(ev.eid)
                if send is not None and send not in emitted:
                    break
                emitted.add(ev.eid)
                order.append((node, ev, send))
                pos[node] += 1
                progressed = True
    assert pos == [trace.num_real(i) for i in range(trace.num_nodes)]
    return order


def _feed(om, trace, steps, chunk, state):
    """Replay ``steps`` into the monitor, tagging per-node chunk
    intervals and closing each the moment its last event arrives.

    ``state`` carries ``(handles, counts, tags, closed)`` across phases.
    """
    handles, counts, tags, closed = state
    for node, ev, send in steps:
        iname = f"I{node}.{counts[node] // chunk}"
        if ev.kind.name == "SEND":
            handles[ev.eid] = om.send(node, interval=iname)
        elif send is not None:
            om.recv(node, handles[send], interval=iname)
        else:
            om.internal(node, interval=iname)
        tags.setdefault(iname, []).append(ev.eid)
        counts[node] += 1
        if (
            counts[node] % chunk == 0
            or counts[node] == trace.num_real(node)
        ) and iname not in closed:
            om.close(iname)
            closed.append(iname)


def _assert_quadruples_match(context, cold_ex, tags, names):
    """Cut quadruples + extremal vectors from the streamed context's
    cache == per-interval folds on a cold offline execution."""
    ivs = [NonatomicEvent(context.execution, tags[n]) for n in names]
    stats = context.cut_cache.stats(tuple(ivs))
    cold = cut_stats(cold_ex, [NonatomicEvent(cold_ex, tags[n]) for n in names])
    for field in ("c1", "c2", "c3", "c4", "first", "last"):
        np.testing.assert_array_equal(
            getattr(stats, field), getattr(cold, field), err_msg=field
        )


class TestStreamedEqualsColdOffline:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(2, 5),
        k=st.integers(3, 9),
        chunk=st.integers(2, 5),
    )
    def test_verdicts_and_cuts_match(self, seed, nodes, k, chunk):
        trace = random_trace(nodes, events_per_node=k, msg_prob=0.4,
                             seed=seed)
        om = OnlineMonitor(nodes)
        state = ({}, [0] * nodes, {}, [])
        _feed(om, trace, _causal_order(trace), chunk, state)
        _handles, _counts, tags, closed = state
        assert sorted(e for ids in tags.values() for e in ids) == sorted(
            ev.eid for n in range(nodes) for ev in trace.events_of(n)
        )

        cold_ex = Execution(trace)  # from-scratch forward + reverse build
        lin = LinearEvaluator(cold_ex)

        # incremental past cuts and extremal vectors on every closed
        # interval == the offline Definition-7 folds
        for name in closed:
            iv = NonatomicEvent(cold_ex, tags[name])
            quad = cuts_of(iv)
            got_c1, got_c2 = om.interval(name).past_cuts(None)
            np.testing.assert_array_equal(got_c1, quad.c1.vector)
            np.testing.assert_array_equal(got_c2, quad.c2.vector)
            first, last = om.interval(name).extremal_vectors(None)
            for node in iv.node_set:
                assert first[node] == iv.first_at(node)
                assert last[node] == iv.last_at(node)

        # mid-stream verdicts between consecutive closed intervals
        # (disjoint by construction) == cold offline engine
        for a, b in zip(closed, closed[1:], strict=False):
            x = NonatomicEvent(cold_ex, tags[a])
            y = NonatomicEvent(cold_ex, tags[b])
            for rel in BASE_RELATIONS:
                assert om.holds(rel, a, b) == lin.evaluate(rel, x, y), rel
            for spec in FAMILY32[::5]:
                assert om.holds(spec, a, b) == lin.evaluate_spec(
                    spec, x, y
                ), spec

        # the zero-copy finalised context serves identical quadruples
        _assert_quadruples_match(om.to_context(), cold_ex, tags, closed)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(2, 4),
        k=st.integers(4, 8),
        chunk=st.integers(2, 4),
    )
    def test_extend_growth_invalidates_and_matches(
        self, seed, nodes, k, chunk
    ):
        """Phase 1 streams and is queried (filling the cut + verdict
        caches); phase 2 extends the same context; every refilled value
        matches a cold build of the full trace."""
        trace = random_trace(nodes, events_per_node=k, msg_prob=0.4,
                             seed=seed)
        order = _causal_order(trace)
        cut = max(1, len(order) // 2)  # prefix of a valid order: causal
        om = OnlineMonitor(nodes)
        state = ({}, [0] * nodes, {}, [])

        _feed(om, trace, order[:cut], chunk, state)
        _handles, _counts, tags, closed = state
        phase1 = list(closed)
        if len(phase1) < 2:
            return  # not enough closed intervals to query mid-stream
        context = om.to_context()
        an = SynchronizationAnalyzer(context, check_disjoint=False)
        x1 = NonatomicEvent(context.execution, tags[phase1[0]])
        y1 = NonatomicEvent(context.execution, tags[phase1[1]])
        before = an.all_relations(x1, y1)  # fills both caches
        assert an.verdict_cache is not None and an.verdict_cache.evals > 0

        _feed(om, trace, order[cut:], chunk, state)
        full_ex = om.to_execution()
        assert full_ex.trace.total_events == len(order)
        context.extend(full_ex.trace)  # CutCache + verdict invalidation

        cold_ex = Execution(full_ex.trace)
        cold = SynchronizationAnalyzer(cold_ex, check_disjoint=False)
        x = NonatomicEvent(context.execution, tags[phase1[0]])
        y = NonatomicEvent(context.execution, tags[phase1[1]])
        cx = NonatomicEvent(cold_ex, tags[phase1[0]])
        cy = NonatomicEvent(cold_ex, tags[phase1[1]])
        after = an.all_relations(x, y)
        assert after == cold.all_relations(cx, cy)
        # the phase-1 answers were computed on the prefix; re-asking on
        # the grown execution may legitimately differ (future-dependent
        # conditions), but never because stale verdicts were served:
        del before
        _assert_quadruples_match(context, cold_ex, tags, closed)
