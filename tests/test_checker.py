"""Tests for the offline condition checker."""

import pytest

from repro.core.evaluator import SynchronizationAnalyzer
from repro.monitor.checker import ConditionChecker
from repro.monitor.predicates import parse_condition
from repro.nonatomic.event import NonatomicEvent


@pytest.fixture
def checker_env(message_exec):
    an = SynchronizationAnalyzer(message_exec)
    checker = ConditionChecker(an)
    bindings = {
        "X": NonatomicEvent(message_exec, [(0, 1), (0, 2)], name="X"),
        "Y": NonatomicEvent(message_exec, [(1, 2), (1, 3)], name="Y"),
        "Z": NonatomicEvent(message_exec, [(1, 1)], name="Z"),
    }
    return checker, bindings


class TestCheck:
    def test_passing_condition(self, checker_env):
        checker, bindings = checker_env
        report = checker.check("R1(X, Y) and R4(X, Y)", bindings)
        assert report.passed
        assert len(report.atoms) == 2
        assert report.failing_atoms == ()

    def test_failing_condition_reports_atoms(self, checker_env):
        checker, bindings = checker_env
        report = checker.check("R1(X, Y) and R1(Y, X)", bindings)
        assert not report.passed
        failing = [str(a.atom) for a in report.failing_atoms]
        assert failing == ["R1(Y,X)"]

    def test_textual_and_ast_agree(self, checker_env):
        checker, bindings = checker_env
        text = "R1(X,Y) -> not R4(Y,X)"
        assert (
            checker.check(text, bindings).passed
            == checker.check(parse_condition(text), bindings).passed
        )

    def test_unbound_name_raises(self, checker_env):
        checker, bindings = checker_env
        with pytest.raises(KeyError, match="unbound"):
            checker.check("R1(X, W)", bindings)

    def test_atoms_deduplicated(self, checker_env):
        checker, bindings = checker_env
        report = checker.check("R4(X,Y) and (R4(X,Y) or R4(X,Y))", bindings)
        assert len(report.atoms) == 1

    def test_short_circuit_skips_atoms(self, checker_env):
        """`or` short-circuits, so later atoms are never evaluated."""
        checker, bindings = checker_env
        report = checker.check("R4(X,Y) or R1(Y,X)", bindings)
        assert report.passed
        assert [str(a.atom) for a in report.atoms] == ["R4(X,Y)"]

    def test_concurrent_intervals(self, checker_env):
        checker, bindings = checker_env
        # Z = {b1} is concurrent with X's node-0 events
        report = checker.check("not R4(X, Z) and not R4(Z, X)", bindings)
        assert report.passed


class TestCheckAll:
    def test_named_reports(self, checker_env):
        checker, bindings = checker_env
        reports = checker.check_all(
            {"order": "R1(X,Y)", "reverse": "R1(Y,X)"}, bindings
        )
        assert reports["order"].passed
        assert not reports["reverse"].passed

    def test_report_str(self, checker_env):
        checker, bindings = checker_env
        text = str(checker.check("R1(X,Y)", bindings))
        assert "PASS" in text and "R1(X,Y)" in text
