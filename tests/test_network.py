"""Tests for network latency models and delivery policy."""

import numpy as np
import pytest

from repro.simulation.network import (
    ConstantLatency,
    ExponentialLatency,
    Network,
    UniformLatency,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLatencyModels:
    def test_constant(self, rng):
        m = ConstantLatency(2.5)
        assert m.sample(rng, 0, 1) == 2.5

    def test_constant_positive(self):
        with pytest.raises(ValueError):
            ConstantLatency(0)

    def test_uniform_bounds(self, rng):
        m = UniformLatency(1.0, 3.0)
        samples = [m.sample(rng, 0, 1) for _ in range(200)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert max(samples) - min(samples) > 0.5  # actually varies

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(0.0, 1.0)

    def test_exponential_positive(self, rng):
        m = ExponentialLatency(mean=0.5)
        assert all(m.sample(rng, 0, 1) > 0 for _ in range(100))

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            ExponentialLatency(mean=-1)


class TestNetwork:
    def test_default_constant_fifo(self, rng):
        net = Network()
        t = net.delivery_time(rng, 0, 1, send_time=2.0)
        assert t == 3.0

    def test_fifo_monotone_per_channel(self, rng):
        net = Network(UniformLatency(0.1, 5.0), fifo=True)
        times = []
        for k in range(50):
            times.append(net.delivery_time(rng, 0, 1, send_time=float(k) * 0.01))
        assert times == sorted(times)

    def test_fifo_independent_channels(self, rng):
        net = Network(ConstantLatency(1.0), fifo=True)
        a = net.delivery_time(rng, 0, 1, send_time=10.0)
        b = net.delivery_time(rng, 0, 2, send_time=0.0)
        assert b < a  # different channel, unconstrained

    def test_non_fifo_can_reorder(self):
        rng = np.random.default_rng(3)
        net = Network(UniformLatency(0.1, 5.0), fifo=False)
        times = [
            net.delivery_time(rng, 0, 1, send_time=float(k) * 0.01)
            for k in range(50)
        ]
        assert times != sorted(times)

    def test_drops(self):
        rng = np.random.default_rng(1)
        net = Network(drop_prob=0.5)
        outcomes = [net.delivery_time(rng, 0, 1, 0.0) for _ in range(200)]
        dropped = sum(1 for o in outcomes if o is None)
        assert 50 < dropped < 150

    def test_drop_prob_validation(self):
        with pytest.raises(ValueError):
            Network(drop_prob=1.0)
        with pytest.raises(ValueError):
            Network(drop_prob=-0.1)

    def test_reset_clears_fifo_state(self, rng):
        net = Network(ConstantLatency(1.0), fifo=True)
        net.delivery_time(rng, 0, 1, send_time=100.0)
        net.reset()
        t = net.delivery_time(rng, 0, 1, send_time=0.0)
        assert t == 1.0
