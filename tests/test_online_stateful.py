"""Stateful property test: the online monitor vs offline recomputation.

A hypothesis rule-based machine drives an :class:`OnlineMonitor` with
an arbitrary interleaving of internal/send/receive observations and
checks, at every step, that the incrementally maintained vector clocks
match a from-scratch offline analysis of the trace so far.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.events.builder import TraceBuilder
from repro.events.poset import Execution
from repro.monitor.online import OnlineMonitor

NUM_NODES = 3


class OnlineMonitorMachine(RuleBasedStateMachine):
    """Feeds a random valid stream into monitor + shadow builder."""

    def __init__(self):
        super().__init__()
        self.monitor = OnlineMonitor(NUM_NODES)
        self.shadow = TraceBuilder(NUM_NODES)
        self.in_flight = []  # (monitor_handle, shadow_handle)
        self.steps = 0

    @rule(node=st.integers(0, NUM_NODES - 1))
    def observe_internal(self, node):
        self.monitor.internal(node)
        self.shadow.internal(node)
        self.steps += 1

    @rule(node=st.integers(0, NUM_NODES - 1))
    def observe_send(self, node):
        mh = self.monitor.send(node)
        sh = self.shadow.send(node)
        self.in_flight.append((mh, sh))
        self.steps += 1

    @precondition(lambda self: self.in_flight)
    @rule(node=st.integers(0, NUM_NODES - 1), pick=st.integers(0, 10))
    def observe_recv(self, node, pick):
        mh, sh = self.in_flight.pop(pick % len(self.in_flight))
        if mh.send[0] == node and mh.send[1] >= self.shadow.count(node) + 1:
            # would be an invalid (backwards) self-message; skip
            self.in_flight.append((mh, sh))
            return
        self.monitor.recv(node, mh)
        self.shadow.recv(node, sh)
        self.steps += 1

    @invariant()
    def clocks_match_offline(self):
        if self.steps == 0 or self.steps % 5:
            return  # check every 5th step to keep the machine fast
        ex = Execution(self.shadow.build())
        for eid in ex.iter_ids():
            assert list(self.monitor.clock(eid)) == list(ex.clock(eid)), eid

    def teardown(self):
        if self.steps:
            ex = Execution(self.shadow.build())
            for eid in ex.iter_ids():
                assert list(self.monitor.clock(eid)) == list(ex.clock(eid))
            assert self.monitor.to_execution().trace == ex.trace


TestOnlineMonitorMachine = OnlineMonitorMachine.TestCase
TestOnlineMonitorMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
