"""The shared ``≪``-subtest verdict cache (Theorem 19/20 factoring).

Accounting properties of
:class:`~repro.core.evaluator.SharedVerdictCache`: a whole-family query
on one ordered pair costs a bounded number of distinct subtest
evaluations (24 total, of which 12 are genuine cut-pair ``≪`` tests —
well under the 16 ordered Table-2 cut pairs), repeat queries are pure
cache hits, verdicts are dropped when the execution version bumps, and
configurations whose semantics the factoring does not cover bypass the
cache entirely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.context import AnalysisContext
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.relations import BASE_RELATIONS, FAMILY32, SUBTEST_KEYS
from repro.events.builder import TraceBuilder
from repro.events.poset import Execution
from repro.nonatomic.proxies import ProxyDefinition
from repro.nonatomic.selection import random_disjoint_pair
from repro.simulation.workloads import random_execution


def _pair(seed=7, nodes=6, k=6):
    ex = random_execution(nodes, events_per_node=k, msg_prob=0.35, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x, y = random_disjoint_pair(ex, rng, events_per_node=2)
    return ex, x, y


class TestAccounting:
    def test_subtest_key_space(self):
        assert len(SUBTEST_KEYS) == 24
        from repro.core.relations import SubtestKind, subtest_key

        cut_pair = [k for k in SUBTEST_KEYS if k[0] is SubtestKind.EXISTS_CUT]
        assert len(cut_pair) == 12  # <= the 16 ordered Table-2 cut pairs
        # the 8 base relations introduce zero keys beyond the family's
        family_keys = {subtest_key(s) for s in FAMILY32}
        assert {subtest_key(r) for r in BASE_RELATIONS} <= family_keys

    def test_all_relations_bounded_cut_pair_evals(self):
        """The whole 40-spec surface on one ordered pair costs at most
        16 distinct cut-pair ``≪`` evaluations (measured: 12)."""
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex)
        vc = an.verdict_cache
        assert vc is not None and vc.evals == 0

        an.all_relations(x, y)
        an.base_relations(x, y)
        an.strongest(x, y)
        assert vc.evals == 24
        assert vc.cut_pair_evals == 12
        assert vc.cut_pair_evals <= 16

        hits = vc.hits
        an.all_relations(x, y)  # repeat: pure hits, no new evaluations
        assert vc.evals == 24 and vc.cut_pair_evals == 12
        assert vc.hits == hits + 32

    def test_reverse_pair_is_a_separate_fill(self):
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex)
        an.all_relations(x, y)
        an.all_relations(y, x)  # ordered pairs: (y, x) needs its own fill
        assert an.verdict_cache.evals == 48

    def test_cache_shared_across_analyzers(self):
        """Analyzers over the same context share one verdict cache."""
        ex, x, y = _pair()
        context = AnalysisContext(ex)
        a1 = SynchronizationAnalyzer(context)
        a2 = SynchronizationAnalyzer(context)
        assert a1.verdict_cache is a2.verdict_cache
        a1.all_relations(x, y)
        hits = a1.verdict_cache.hits
        a2.all_relations(x, y)
        assert a2.verdict_cache.evals == 24
        assert a2.verdict_cache.hits == hits + 32


class TestInvalidation:
    def test_version_bump_drops_verdicts(self):
        b = TraceBuilder(2)
        e0 = b.internal(0)
        m = b.send(0)
        r = b.recv(1, m)
        ex = Execution(b.build())
        an = SynchronizationAnalyzer(ex)
        x = an.interval([e0])
        y = an.interval([r])
        first = an.all_relations(x, y)
        vc = an.verdict_cache
        assert vc.evals == 24

        e1 = b.internal(1)
        an.context.extend(b.build())
        y2 = an.interval([r, e1])
        again = an.all_relations(x, y2)  # refill on the grown execution
        assert vc.evals == 48  # the old fill was dropped, not reused

        cold = SynchronizationAnalyzer(
            Execution(b.build()), engine="naive"
        )
        cx = cold.interval([e0])
        assert again == {
            spec: cold.holds(spec, cx, cold.interval([r, e1]))
            for spec in FAMILY32
        }
        # the pre-growth result set is still internally consistent
        assert set(first) == set(FAMILY32)

    def test_noop_growth_still_invalidates_conservatively(self):
        """Even a no-event extension bumps the version: invalidation is
        keyed on the bump, never on guessing which verdicts survive."""
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex)
        before = an.all_relations(x, y)
        an.context.extend(ex.trace)
        vc = an.verdict_cache
        assert an.all_relations(x, y) == before  # refilled, identical
        assert vc.evals == 48


class TestBypass:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(engine="naive"),
            dict(engine="polynomial"),
            dict(counted=True),
            dict(proxy_definition=ProxyDefinition.GLOBAL),
        ],
        ids=["naive", "polynomial", "counted", "global-proxies"],
    )
    def test_uncovered_configurations_bypass(self, kwargs):
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex, check_disjoint=False, **kwargs)
        assert an.verdict_cache is None

    def test_bypassed_results_still_agree(self):
        ex, x, y = _pair()
        cached = SynchronizationAnalyzer(ex)
        naive = SynchronizationAnalyzer(ex, engine="naive")
        assert cached.all_relations(x, y) == naive.all_relations(x, y)
        assert cached.strongest(x, y) == naive.strongest(x, y)
