"""The shared ``≪``-subtest verdict cache (Theorem 19/20 factoring).

Accounting properties of
:class:`~repro.core.evaluator.SharedVerdictCache`: a whole-family query
on one ordered pair costs a bounded number of distinct subtest
evaluations (24 total, of which 12 are genuine cut-pair ``≪`` tests —
well under the 16 ordered Table-2 cut pairs), repeat queries are pure
cache hits, verdicts are dropped when the execution version bumps, and
configurations whose semantics the factoring does not cover bypass the
cache entirely.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.context import AnalysisContext
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.relations import BASE_RELATIONS, FAMILY32, SUBTEST_KEYS
from repro.events.builder import TraceBuilder
from repro.events.poset import Execution
from repro.nonatomic.proxies import ProxyDefinition
from repro.nonatomic.selection import random_disjoint_pair
from repro.simulation.workloads import random_execution

from .strategies import execution_with_pair


def _pair(seed=7, nodes=6, k=6):
    ex = random_execution(nodes, events_per_node=k, msg_prob=0.35, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x, y = random_disjoint_pair(ex, rng, events_per_node=2)
    return ex, x, y


class TestAccounting:
    def test_subtest_key_space(self):
        assert len(SUBTEST_KEYS) == 24
        from repro.core.relations import SubtestKind, subtest_key

        cut_pair = [k for k in SUBTEST_KEYS if k[0] is SubtestKind.EXISTS_CUT]
        assert len(cut_pair) == 12  # <= the 16 ordered Table-2 cut pairs
        # the 8 base relations introduce zero keys beyond the family's
        family_keys = {subtest_key(s) for s in FAMILY32}
        assert {subtest_key(r) for r in BASE_RELATIONS} <= family_keys

    def test_all_relations_bounded_cut_pair_evals(self):
        """The whole 40-spec surface on one ordered pair costs at most
        16 distinct cut-pair ``≪`` evaluations (measured: 12)."""
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex)
        vc = an.verdict_cache
        assert vc is not None and vc.evals == 0

        an.all_relations(x, y)
        an.base_relations(x, y)
        an.strongest(x, y)
        assert vc.evals == 24
        assert vc.cut_pair_evals == 12
        assert vc.cut_pair_evals <= 16

        hits = vc.hits
        an.all_relations(x, y)  # repeat: one verdict-row hit, no evals
        assert vc.evals == 24 and vc.cut_pair_evals == 12
        assert vc.hits == hits + 1

    def test_reverse_pair_is_a_separate_fill(self):
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex)
        an.all_relations(x, y)
        an.all_relations(y, x)  # ordered pairs: (y, x) needs its own fill
        assert an.verdict_cache.evals == 48

    def test_cache_shared_across_analyzers(self):
        """Analyzers over the same context share one verdict cache."""
        ex, x, y = _pair()
        context = AnalysisContext(ex)
        a1 = SynchronizationAnalyzer(context)
        a2 = SynchronizationAnalyzer(context)
        assert a1.verdict_cache is a2.verdict_cache
        a1.all_relations(x, y)
        hits = a1.verdict_cache.hits
        a2.all_relations(x, y)
        assert a2.verdict_cache.evals == 24
        assert a2.verdict_cache.hits == hits + 1


class TestInvalidation:
    def test_version_bump_drops_verdicts(self):
        b = TraceBuilder(2)
        e0 = b.internal(0)
        m = b.send(0)
        r = b.recv(1, m)
        ex = Execution(b.build())
        an = SynchronizationAnalyzer(ex)
        x = an.interval([e0])
        y = an.interval([r])
        first = an.all_relations(x, y)
        vc = an.verdict_cache
        assert vc.evals == 24

        e1 = b.internal(1)
        an.context.extend(b.build())
        y2 = an.interval([r, e1])
        again = an.all_relations(x, y2)  # refill on the grown execution
        assert vc.evals == 48  # the old fill was dropped, not reused

        cold = SynchronizationAnalyzer(
            Execution(b.build()), engine="naive"
        )
        cx = cold.interval([e0])
        assert again == {
            spec: cold.holds(spec, cx, cold.interval([r, e1]))
            for spec in FAMILY32
        }
        # the pre-growth result set is still internally consistent
        assert set(first) == set(FAMILY32)

    def test_noop_growth_still_invalidates_conservatively(self):
        """Even a no-event extension bumps the version: invalidation is
        keyed on the bump, never on guessing which verdicts survive."""
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex)
        before = an.all_relations(x, y)
        an.context.extend(ex.trace)
        vc = an.verdict_cache
        assert an.all_relations(x, y) == before  # refilled, identical
        assert vc.evals == 48


class TestBatchedKernel:
    """The one-pass ``(pairs, 24)`` fill behind the ``*_batch`` APIs."""

    def test_batch_matches_per_pair(self):
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex)
        ref = SynchronizationAnalyzer(Execution(ex.trace))
        rx = ref.interval(sorted(x.ids))
        ry = ref.interval(sorted(y.ids))
        fam = an.all_relations_batch([(x, y), (y, x), (x, y)])
        assert fam[0] == fam[2] == ref.all_relations(rx, ry)
        assert fam[1] == ref.all_relations(ry, rx)
        assert an.base_relations_batch([(x, y)])[0] == ref.base_relations(rx, ry)
        assert an.strongest_batch([(x, y), (y, x)]) == [
            ref.strongest(rx, ry), ref.strongest(ry, rx)
        ]

    def test_batch_fill_is_one_pass(self):
        """N distinct pairs cost one kernel fill (24·N evals), and the
        reads afterwards are pure verdict-row hits."""
        ex = random_execution(6, events_per_node=6, msg_prob=0.35, seed=3)
        rng = np.random.default_rng(4)
        pairs = [
            random_disjoint_pair(ex, rng, events_per_node=2) for _ in range(5)
        ]
        an = SynchronizationAnalyzer(ex)
        vc = an.verdict_cache
        an.all_relations_batch(pairs + pairs)  # duplicates dedup in-fill
        assert vc.fills == 1
        assert vc.evals == 24 * len(pairs)
        assert vc.cut_pair_evals == 12 * len(pairs)
        assert vc.pairs_cached == len(pairs)
        hits = vc.hits
        an.strongest_batch(pairs)  # already filled: hits only
        assert vc.fills == 1 and vc.hits == hits + len(pairs)

    def test_batch_bypass_configuration_falls_back(self):
        ex, x, y = _pair()
        scalar = SynchronizationAnalyzer(ex, engine="polynomial")
        cached = SynchronizationAnalyzer(ex)
        assert scalar.verdict_cache is None
        assert scalar.all_relations_batch([(x, y)]) == \
            cached.all_relations_batch([(x, y)])
        assert scalar.base_relations_batch([(x, y)]) == \
            cached.base_relations_batch([(x, y)])
        assert scalar.strongest_batch([(x, y)]) == \
            cached.strongest_batch([(x, y)])

    def test_batch_refills_after_extend(self):
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex)
        before = an.all_relations_batch([(x, y)])[0]
        an.context.extend(ex.trace)  # no-op growth still bumps version
        vc = an.verdict_cache
        assert vc.pairs_cached == 0
        assert an.all_relations_batch([(x, y)])[0] == before
        assert vc.evals == 48  # refilled: the old row was dropped, not reused


#: per-pair scalar-oracle analyzer config: linear engine, counted → the
#: verdict cache is bypassed and every spec runs the scalar path.
_ORACLE = dict(counted=True)


class TestVectorizedOracleEquivalence:
    """Hypothesis: the vectorized ``(pairs, 24)`` verdict matrix is
    bit-identical to scalar per-pair evaluation over all 40 specs, on
    both backends, including across ``extend()`` invalidation."""

    @pytest.mark.parametrize("backend", ["vector", "reachability"])
    @settings(max_examples=15, deadline=None)
    @given(exy=execution_with_pair(max_nodes=4, max_ops=25))
    def test_all_40_specs_match_scalar(self, backend, exy):
        ex, x, y = exy
        ctx = AnalysisContext(Execution(ex.trace), backend=backend)
        x = ctx.interval(sorted(x.ids), name="X")
        y = ctx.interval(sorted(y.ids), name="Y")
        cached = SynchronizationAnalyzer(ctx)
        oracle = SynchronizationAnalyzer(ctx, **_ORACLE)
        assert cached.verdict_cache is not None
        assert oracle.verdict_cache is None
        fam = cached.all_relations_batch([(x, y), (y, x)])
        base = cached.base_relations_batch([(x, y), (y, x)])
        for (a, b), f, bs in zip([(x, y), (y, x)], fam, base, strict=True):
            assert f == {s: oracle.holds(s, a, b) for s in FAMILY32}
            assert bs == {r: oracle.holds(r, a, b) for r in BASE_RELATIONS}
        # growth invalidation: the refilled rows must still agree
        ctx.extend(ctx.execution.trace)
        assert cached.verdict_cache.pairs_cached == 0
        assert cached.all_relations_batch([(x, y)])[0] == fam[0]


class TestBypass:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(engine="naive"),
            dict(engine="polynomial"),
            dict(counted=True),
            dict(proxy_definition=ProxyDefinition.GLOBAL),
        ],
        ids=["naive", "polynomial", "counted", "global-proxies"],
    )
    def test_uncovered_configurations_bypass(self, kwargs):
        ex, x, y = _pair()
        an = SynchronizationAnalyzer(ex, check_disjoint=False, **kwargs)
        assert an.verdict_cache is None

    def test_bypassed_results_still_agree(self):
        ex, x, y = _pair()
        cached = SynchronizationAnalyzer(ex)
        naive = SynchronizationAnalyzer(ex, engine="naive")
        assert cached.all_relations(x, y) == naive.all_relations(x, y)
        assert cached.strongest(x, y) == naive.strongest(x, y)
