"""Tests for the SynchronizationAnalyzer facade (Problem 4 API)."""

import pytest
from hypothesis import given, settings

from repro.core.evaluator import ENGINES, SynchronizationAnalyzer
from repro.core.relations import FAMILY32, Relation, RelationSpec
from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.proxies import Proxy

from .strategies import execution_with_pair


class TestConstruction:
    def test_engine_registry(self):
        assert set(ENGINES) == {"naive", "polynomial", "linear"}

    def test_unknown_engine(self, message_exec):
        with pytest.raises(ValueError, match="unknown engine"):
            SynchronizationAnalyzer(message_exec, engine="quantum")

    def test_interval_helper(self, message_exec):
        an = SynchronizationAnalyzer(message_exec)
        x = an.interval([(0, 1)], name="X")
        assert isinstance(x, NonatomicEvent)
        assert x.name == "X"


class TestHolds:
    @pytest.fixture
    def analyzer(self, message_exec):
        return SynchronizationAnalyzer(message_exec)

    @pytest.fixture
    def xy(self, message_exec):
        x = NonatomicEvent(message_exec, [(0, 1), (0, 2)])
        y = NonatomicEvent(message_exec, [(1, 2), (1, 3)])
        return x, y

    def test_base_by_enum(self, analyzer, xy):
        assert analyzer.holds(Relation.R1, *xy)

    def test_base_by_string(self, analyzer, xy):
        assert analyzer.holds("R1", *xy)
        assert analyzer.holds("R2'", *xy)

    def test_spec_by_string(self, analyzer, xy):
        assert analyzer.holds("R1(U,L)", *xy)

    def test_spec_by_object(self, analyzer, xy):
        assert analyzer.holds(RelationSpec(Relation.R1, Proxy.U, Proxy.L), *xy)

    def test_bad_string(self, analyzer, xy):
        with pytest.raises(ValueError):
            analyzer.holds("R9", *xy)

    def test_disjointness_enforced(self, message_exec):
        an = SynchronizationAnalyzer(message_exec)
        x = NonatomicEvent(message_exec, [(0, 1)])
        y = NonatomicEvent(message_exec, [(0, 1), (1, 1)])
        with pytest.raises(ValueError, match="share atomic events"):
            an.holds("R4", x, y)

    def test_disjointness_opt_out(self, message_exec):
        an = SynchronizationAnalyzer(message_exec, check_disjoint=False)
        x = NonatomicEvent(message_exec, [(0, 1)])
        y = NonatomicEvent(message_exec, [(0, 1), (1, 1)])
        assert isinstance(an.holds("R4", x, y), bool)


class TestBatchEvaluation:
    def test_base_relations_shape(self, message_exec):
        an = SynchronizationAnalyzer(message_exec)
        x = an.interval([(0, 1)])
        y = an.interval([(1, 2)])
        results = an.base_relations(x, y)
        assert len(results) == 8
        assert all(results.values())  # x < y

    def test_all_relations_shape(self, message_exec):
        an = SynchronizationAnalyzer(message_exec)
        x = an.interval([(0, 1)])
        y = an.interval([(1, 2)])
        results = an.all_relations(x, y)
        assert len(results) == 32
        assert set(results) == set(FAMILY32)

    @settings(max_examples=40, deadline=None)
    @given(pair=execution_with_pair())
    def test_prune_equivalence(self, pair):
        ex, x, y = pair
        an = SynchronizationAnalyzer(ex)
        assert an.all_relations(x, y) == an.all_relations(x, y, prune=True)

    @settings(max_examples=30, deadline=None)
    @given(pair=execution_with_pair())
    def test_engines_agree_through_facade(self, pair):
        ex, x, y = pair
        results = [
            SynchronizationAnalyzer(ex, engine=e).all_relations(x, y)
            for e in ENGINES
        ]
        assert results[0] == results[1] == results[2]

    def test_strongest(self, message_exec):
        an = SynchronizationAnalyzer(message_exec)
        x = an.interval([(0, 1)])
        y = an.interval([(1, 2)])
        top = an.strongest(x, y)
        assert RelationSpec(Relation.R1, Proxy.U, Proxy.L) in top


class TestCounting:
    def test_counter_off_by_default(self, message_exec):
        an = SynchronizationAnalyzer(message_exec)
        assert an.counter is None
        assert an.comparisons == 0

    def test_counter_accumulates(self, message_exec):
        an = SynchronizationAnalyzer(message_exec, counted=True)
        x = an.interval([(0, 1)])
        y = an.interval([(1, 2)])
        an.holds("R1", x, y)
        first = an.comparisons
        assert first >= 1
        an.holds("R2", x, y)
        assert an.comparisons > first
