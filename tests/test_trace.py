"""Unit tests for Trace construction and validation."""

import pytest

from repro.events.event import Event, EventKind
from repro.events.trace import Message, Trace, TraceError


def _ev(node, index, kind=EventKind.INTERNAL):
    return Event(node=node, index=index, kind=kind)


class TestTraceValidation:
    def test_empty_trace(self):
        tr = Trace([[], []])
        assert tr.num_nodes == 2
        assert tr.total_events == 0

    def test_wrong_node_rejected(self):
        with pytest.raises(TraceError, match="claims node"):
            Trace([[_ev(1, 1)]])

    def test_wrong_index_rejected(self):
        with pytest.raises(TraceError, match="must have index"):
            Trace([[_ev(0, 2)]])

    def test_dummy_event_rejected(self):
        with pytest.raises(TraceError, match="dummy"):
            Trace([[Event(0, 1, kind=EventKind.BOTTOM)]])

    def test_message_endpoints_must_exist(self):
        events = [[_ev(0, 1, EventKind.SEND)], []]
        with pytest.raises(TraceError, match="no such event"):
            Trace(events, [Message((0, 1), (1, 1))])
        with pytest.raises(TraceError, match="no such node"):
            Trace(events, [Message((0, 1), (7, 1))])

    def test_message_kind_checked(self):
        events = [[_ev(0, 1)], [_ev(1, 1, EventKind.RECV)]]
        with pytest.raises(TraceError, match="not a SEND"):
            Trace(events, [Message((0, 1), (1, 1))])
        events = [[_ev(0, 1, EventKind.SEND)], [_ev(1, 1)]]
        with pytest.raises(TraceError, match="not a RECV"):
            Trace(events, [Message((0, 1), (1, 1))])

    def test_double_send_rejected(self):
        events = [
            [_ev(0, 1, EventKind.SEND)],
            [_ev(1, 1, EventKind.RECV), _ev(1, 2, EventKind.RECV)],
        ]
        msgs = [Message((0, 1), (1, 1)), Message((0, 1), (1, 2))]
        with pytest.raises(TraceError, match="sends two"):
            Trace(events, msgs)

    def test_double_recv_rejected(self):
        events = [
            [_ev(0, 1, EventKind.SEND), _ev(0, 2, EventKind.SEND)],
            [_ev(1, 1, EventKind.RECV)],
        ]
        msgs = [Message((0, 1), (1, 1)), Message((0, 2), (1, 1))]
        with pytest.raises(TraceError, match="receives two"):
            Trace(events, msgs)

    def test_backwards_self_message_rejected(self):
        events = [[_ev(0, 1, EventKind.RECV), _ev(0, 2, EventKind.SEND)]]
        with pytest.raises(TraceError, match="self-message"):
            Trace(events, [Message((0, 2), (0, 1))])

    def test_forwards_self_message_allowed(self):
        events = [[_ev(0, 1, EventKind.SEND), _ev(0, 2, EventKind.RECV)]]
        tr = Trace(events, [Message((0, 1), (0, 2))])
        assert tr.send_of((0, 2)) == (0, 1)


class TestTraceAccessors:
    @pytest.fixture
    def trace(self):
        events = [
            [_ev(0, 1, EventKind.SEND), _ev(0, 2)],
            [_ev(1, 1, EventKind.RECV)],
        ]
        return Trace(events, [Message((0, 1), (1, 1))])

    def test_counts(self, trace):
        assert trace.num_nodes == 2
        assert trace.num_real(0) == 2
        assert trace.num_real(1) == 1
        assert trace.total_events == 3

    def test_event_lookup(self, trace):
        assert trace.event((0, 2)).index == 2
        with pytest.raises(KeyError):
            trace.event((0, 3))
        with pytest.raises(KeyError):
            trace.event((5, 1))
        with pytest.raises(KeyError):
            trace.event((0, 0))

    def test_message_lookup(self, trace):
        assert trace.recv_of((0, 1)) == (1, 1)
        assert trace.send_of((1, 1)) == (0, 1)
        assert trace.recv_of((0, 2)) is None
        assert trace.send_of((0, 2)) is None

    def test_iteration(self, trace):
        assert [e.eid for e in trace.iter_events()] == [(0, 1), (0, 2), (1, 1)]
        assert list(trace.iter_ids()) == [(0, 1), (0, 2), (1, 1)]

    def test_equality_and_hash(self, trace):
        events = [
            [_ev(0, 1, EventKind.SEND), _ev(0, 2)],
            [_ev(1, 1, EventKind.RECV)],
        ]
        same = Trace(events, [Message((0, 1), (1, 1))])
        assert trace == same
        assert hash(trace) == hash(same)
        different = Trace(events, [])  # note: kind mismatch ok without msg
        assert trace != different

    def test_unreceived_send_allowed(self):
        tr = Trace([[_ev(0, 1, EventKind.SEND)]])
        assert tr.recv_of((0, 1)) is None
