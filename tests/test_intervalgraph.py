"""Tests for interval-level precedence graphs and layering."""

import networkx as nx
import pytest

from repro.analysis.intervalgraph import (
    concurrent_pairs,
    interval_order_graph,
    serialization_layers,
)
from repro.core.relations import Relation
from repro.events.poset import Execution
from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.selection import by_label
from repro.simulation.workloads import barrier_trace, pipeline_trace


@pytest.fixture
def phases():
    ex = Execution(barrier_trace(3, phases=4, work_per_phase=1))
    return [by_label(ex, f"phase{p}") for p in range(4)]


class TestOrderGraph:
    def test_barrier_chain(self, phases):
        g = interval_order_graph(phases)
        # phases form a total order: transitive tournament edges
        assert g.number_of_edges() == 6
        assert g.has_edge("phase0", "phase3")
        assert not g.has_edge("phase3", "phase0")
        assert nx.is_directed_acyclic_graph(g)

    def test_node_attributes(self, phases):
        g = interval_order_graph(phases)
        assert g.nodes["phase0"]["interval"] is phases[0]

    def test_spec_choice(self, phases):
        g4 = interval_order_graph(phases, Relation.R4)
        assert g4.number_of_edges() >= 6

    def test_string_spec(self, phases):
        g = interval_order_graph(phases, "R1(U,L)")
        assert g.has_edge("phase0", "phase1")

    def test_duplicate_names_rejected(self, phases):
        ex = phases[0].execution
        dup = NonatomicEvent(ex, sorted(phases[0].ids), name="phase1")
        with pytest.raises(ValueError, match="unique"):
            interval_order_graph([dup, phases[1]])

    def test_single_interval(self, phases):
        g = interval_order_graph(phases[:1])
        assert g.number_of_nodes() == 1
        assert g.number_of_edges() == 0

    def test_anonymous_names(self, phases):
        anon = [
            NonatomicEvent(phases[0].execution, sorted(p.ids))
            for p in phases[:2]
        ]
        g = interval_order_graph(anon)
        assert set(g.nodes) == {"I0", "I1"}


class TestConcurrentPairs:
    def test_barrier_has_none(self, phases):
        assert concurrent_pairs(phases) == []

    def test_independent_branches(self, diamond_exec):
        left = NonatomicEvent(diamond_exec, [(1, 1), (1, 2)], name="left")
        right = NonatomicEvent(diamond_exec, [(2, 1), (2, 2)], name="right")
        assert concurrent_pairs([left, right]) == [("left", "right")]

    def test_empty_input(self):
        assert concurrent_pairs([]) == []


class TestSerializationLayers:
    def test_barrier_layers_are_singletons(self, phases):
        layers = serialization_layers(phases)
        assert layers == [["phase0"], ["phase1"], ["phase2"], ["phase3"]]

    def test_pipeline_items_overlap(self):
        ex = Execution(pipeline_trace(3, items=3))
        from repro.nonatomic.selection import by_label_prefix

        items = sorted(by_label_prefix(ex, "item").values(),
                       key=lambda iv: iv.name)
        layers = serialization_layers(items)
        # consecutive pipeline items are not R1(U,L)-ordered (they
        # overlap in the pipe), so fewer layers than items
        assert len(layers) < len(items)

    def test_cyclic_relation_rejected(self, diamond_exec):
        # R4 both ways between interleaved intervals -> cycle
        a = NonatomicEvent(diamond_exec, [(0, 1), (3, 2)], name="a")
        b = NonatomicEvent(diamond_exec, [(1, 1), (1, 2)], name="b")
        g = interval_order_graph([a, b], Relation.R4)
        if not nx.is_directed_acyclic_graph(g):
            with pytest.raises(ValueError, match="cyclic"):
                serialization_layers([a, b], Relation.R4)
        else:  # pragma: no cover - defensive for layout drift
            serialization_layers([a, b], Relation.R4)
