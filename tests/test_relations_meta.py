"""Tests for relation metadata, spec parsing and quantifier semantics."""

import pytest

from repro.core.counting import NULL_COUNTER, ComparisonCounter
from repro.core.relations import (
    BASE_RELATIONS,
    FAMILY32,
    Relation,
    RelationSpec,
    parse_spec,
    quantifier_eval,
)
from repro.nonatomic.proxies import Proxy


class TestRelationEnum:
    def test_eight_relations(self):
        assert len(BASE_RELATIONS) == 8

    def test_display(self):
        assert Relation.R2P.display == "R2'"
        assert Relation.R1.display == "R1"

    def test_quantifiers(self):
        assert Relation.R2P.quantifiers == "∃y∀x"
        assert Relation.R3.quantifiers == "∃x∀y"

    def test_universal_family(self):
        assert Relation.R1.is_universal_family
        assert Relation.R2.is_universal_family
        assert Relation.R3P.is_universal_family
        assert not Relation.R4.is_universal_family
        assert not Relation.R2P.is_universal_family

    def test_synonyms(self):
        assert Relation.R1.synonym is Relation.R1P
        assert Relation.R4P.synonym is Relation.R4
        assert Relation.R2.synonym is None


class TestFamily32:
    def test_size_and_uniqueness(self):
        assert len(FAMILY32) == 32
        assert len(set(FAMILY32)) == 32

    def test_display(self):
        spec = RelationSpec(Relation.R2P, Proxy.U, Proxy.L)
        assert spec.display == "R2'(U,L)"
        assert str(spec) == "R2'(U,L)"

    def test_orderable(self):
        assert sorted(FAMILY32)  # no TypeError


class TestParseSpec:
    @pytest.mark.parametrize("text", ["R1", "R2'", "R4'", " R3 "])
    def test_base_forms(self, text):
        assert isinstance(parse_spec(text), Relation)

    @pytest.mark.parametrize(
        "text,rel,px,py",
        [
            ("R1(L,U)", Relation.R1, Proxy.L, Proxy.U),
            ("R2'(U,L)", Relation.R2P, Proxy.U, Proxy.L),
            ("R4' ( U , U )", Relation.R4P, Proxy.U, Proxy.U),
        ],
    )
    def test_spec_forms(self, text, rel, px, py):
        spec = parse_spec(text)
        assert spec == RelationSpec(rel, px, py)

    @pytest.mark.parametrize(
        "text", ["R9", "R1(X,Y)", "R1(L)", "", "hello", "R2''"]
    )
    def test_malformed(self, text):
        with pytest.raises(ValueError):
            parse_spec(text)

    def test_round_trip_all_32(self):
        for spec in FAMILY32:
            assert parse_spec(spec.display) == spec


class TestQuantifierEval:
    @staticmethod
    def prec(a, b):
        return a < b

    def test_r1(self):
        assert quantifier_eval(self.prec, Relation.R1, [1, 2], [3, 4])
        assert not quantifier_eval(self.prec, Relation.R1, [1, 3], [2, 4])

    def test_r2_vs_r2p(self):
        # every x below some y, but no single y above all x
        xs, ys = [1, 3], [2, 4]
        assert quantifier_eval(self.prec, Relation.R2, xs, ys)
        assert quantifier_eval(self.prec, Relation.R2P, xs, ys)  # y=4 works
        # with ys=[2, 2] R2' fails if some x >= 2... use xs=[1,3], ys=[2,9]
        assert quantifier_eval(self.prec, Relation.R2P, [1, 3], [4])

    def test_r3_vs_r3p(self):
        assert quantifier_eval(self.prec, Relation.R3, [0, 5], [1, 2])
        assert not quantifier_eval(self.prec, Relation.R3, [3, 5], [1, 4])
        assert not quantifier_eval(self.prec, Relation.R3P, [3, 5], [1, 4])
        assert quantifier_eval(self.prec, Relation.R3P, [0, 3], [1, 4])

    def test_r4(self):
        assert quantifier_eval(self.prec, Relation.R4, [5, 1], [2, 0])
        assert not quantifier_eval(self.prec, Relation.R4, [5, 6], [1, 2])

    def test_empty_domains_follow_fo_convention(self):
        assert quantifier_eval(self.prec, Relation.R1, [], [1])
        assert quantifier_eval(self.prec, Relation.R2, [], [1])
        assert not quantifier_eval(self.prec, Relation.R4, [], [1])
        assert not quantifier_eval(self.prec, Relation.R2P, [1], [])
        assert quantifier_eval(self.prec, Relation.R3P, [1], [])


class TestComparisonCounter:
    def test_add_and_total(self):
        c = ComparisonCounter()
        c.add()
        c.add(3, category="setup")
        assert c.total == 4
        assert c.by_category == {"setup": 3}

    def test_reset(self):
        c = ComparisonCounter()
        c.add(5, category="test")
        c.reset()
        assert c.total == 0
        assert c.by_category == {}

    def test_int_conversion(self):
        c = ComparisonCounter()
        c.add(7)
        assert int(c) == 7
        assert c.snapshot() == 7

    def test_null_counter_ignores(self):
        before = NULL_COUNTER.total
        NULL_COUNTER.add(100)
        assert NULL_COUNTER.total == before
