"""Shared interval/workload construction and timing helpers.

The benchmark modules (and ``scripts/bench_report.py``) used to carry
private copies of the same three idioms — partitioning an execution
into disjoint intervals, sampling random interval sets, and best-of-N
wall-clock timing.  They live here once; ``conftest.py`` keeps the
pytest fixtures.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

import numpy as np

from repro.events.poset import Execution
from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.selection import random_interval

__all__ = [
    "disjoint_intervals",
    "random_intervals",
    "spanning_interval",
    "best_of",
]


def disjoint_intervals(ex: Execution, k: int) -> List[NonatomicEvent]:
    """Partition the execution's events into ``k`` disjoint intervals.

    Every ordered pair from the result satisfies the evaluation
    precondition (X ∩ Y = ∅), so all-pairs query batches need no
    per-query disjointness checks.
    """
    ids = sorted(ex.iter_ids())
    chunks = np.array_split(np.arange(len(ids)), k)
    return [
        NonatomicEvent(ex, [ids[i] for i in chunk], name=f"I{n}")
        for n, chunk in enumerate(chunks)
    ]


def random_intervals(
    ex: Execution, count: int, events_per_node: int = 2, seed: int = 14
) -> List[NonatomicEvent]:
    """``count`` independently sampled random intervals over ``ex``."""
    rng = np.random.default_rng(seed)
    return [
        random_interval(ex, rng, events_per_node=events_per_node)
        for _ in range(count)
    ]


def spanning_interval(
    ex: Execution, events_per_node: int, seed: int | None = None
) -> NonatomicEvent:
    """One interval with ``events_per_node`` random events on *every*
    node (``N_X = P``), for cut-construction population sweeps."""
    rng = np.random.default_rng(events_per_node if seed is None else seed)
    ids = []
    for node in range(ex.num_nodes):
        picks = rng.choice(ex.num_real(node), size=events_per_node, replace=False)
        ids.extend((node, int(j) + 1) for j in picks)
    return NonatomicEvent(ex, ids)


def best_of(fn: Callable, reps: int = 5) -> Tuple[float, object]:
    """``(best wall-clock seconds, last result)`` over ``reps`` runs."""
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result
