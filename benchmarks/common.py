"""Shared interval/workload construction and timing helpers.

The benchmark modules (and ``scripts/bench_report.py``) used to carry
private copies of the same three idioms — partitioning an execution
into disjoint intervals, sampling random interval sets, and best-of-N
wall-clock timing.  They live here once; ``conftest.py`` keeps the
pytest fixtures.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable

import numpy as np

from repro.events.poset import Execution
from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.selection import random_interval

__all__ = [
    "disjoint_intervals",
    "random_intervals",
    "spanning_interval",
    "family_pairs",
    "best_of",
    "stream_schedule",
    "stream_online",
    "stream_rebuild_baseline",
]


def disjoint_intervals(ex: Execution, k: int) -> list[NonatomicEvent]:
    """Partition the execution's events into ``k`` disjoint intervals.

    Every ordered pair from the result satisfies the evaluation
    precondition (X ∩ Y = ∅), so all-pairs query batches need no
    per-query disjointness checks.
    """
    ids = sorted(ex.iter_ids())
    chunks = np.array_split(np.arange(len(ids)), k)
    return [
        NonatomicEvent(ex, [ids[i] for i in chunk], name=f"I{n}")
        for n, chunk in enumerate(chunks)
    ]


def random_intervals(
    ex: Execution, count: int, events_per_node: int = 2, seed: int = 14
) -> list[NonatomicEvent]:
    """``count`` independently sampled random intervals over ``ex``."""
    rng = np.random.default_rng(seed)
    return [
        random_interval(ex, rng, events_per_node=events_per_node)
        for _ in range(count)
    ]


def spanning_interval(
    ex: Execution, events_per_node: int, seed: int | None = None
) -> NonatomicEvent:
    """One interval with ``events_per_node`` random events on *every*
    node (``N_X = P``), for cut-construction population sweeps."""
    rng = np.random.default_rng(events_per_node if seed is None else seed)
    ids = []
    for node in range(ex.num_nodes):
        picks = rng.choice(ex.num_real(node), size=events_per_node, replace=False)
        ids.extend((node, int(j) + 1) for j in picks)
    return NonatomicEvent(ex, ids)


def family_pairs(
    nodes: int, events: int, pairs: int, seed: int = 11
) -> tuple[Execution, list[tuple[NonatomicEvent, NonatomicEvent]]]:
    """The family-query benchmark workload: one execution plus ``pairs``
    random disjoint ordered interval pairs.

    Shared by ``scripts/bench_report.py`` (the ``family_query`` section)
    and the standalone ``benchmarks/bench_family32_batch.py`` gate so
    both measure the identical surface.  Default seeds reproduce the
    workload every recorded ``BENCH_PR*.json`` family section ran on.
    """
    from repro.nonatomic.selection import random_disjoint_pair
    from repro.simulation.workloads import random_trace

    ex = Execution(
        random_trace(nodes, events_per_node=events, msg_prob=0.3, seed=seed)
    )
    rng = np.random.default_rng(seed + 1)
    return ex, [
        random_disjoint_pair(
            ex, rng, num_nodes_x=nodes, num_nodes_y=nodes, events_per_node=2
        )
        for _ in range(pairs)
    ]


def best_of(
    fn: Callable, reps: int = 5, backend: "str | None" = None
) -> tuple[float, object]:
    """``(best wall-clock seconds, last result)`` over ``reps`` runs.

    ``backend`` pins the process-default causality backend
    (``$REPRO_BACKEND``) for the duration of the runs, so any
    :class:`~repro.core.context.AnalysisContext` built inside ``fn``
    answers through that backend; the prior environment is restored
    afterwards.  None leaves the ambient default untouched.
    """
    prior = os.environ.get("REPRO_BACKEND")
    if backend is not None:
        os.environ["REPRO_BACKEND"] = backend
    try:
        best, result = float("inf"), None
        for _ in range(reps):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return best, result
    finally:
        if backend is not None:
            if prior is None:
                os.environ.pop("REPRO_BACKEND", None)
            else:
                os.environ["REPRO_BACKEND"] = prior


# ----------------------------------------------------------------------
# streaming-ingestion workloads (bench_online_monitor + bench_report)
# ----------------------------------------------------------------------
def stream_schedule(trace) -> list[tuple]:
    """A causally valid global replay order for a recorded trace.

    Returns ``(node, event, send_eid)`` triples — exactly what a
    monitoring point would observe: per-node program order, every
    receive after its send.  Thin alias of
    :func:`repro.events.trace.causal_schedule` (the one shared
    implementation, also behind the ``stream`` CLI command and the
    networked service's trace replay).
    """
    from repro.events.trace import causal_schedule

    return causal_schedule(trace)


def _chunk_name(node: int, count: int, chunk: int) -> str:
    return f"I{node}.{count // chunk}"


def stream_online(trace, chunk: int, spec: str = "R2"):
    """Stream a trace through :class:`~repro.monitor.online.OnlineMonitor`.

    Each node's events are tagged into consecutive intervals of
    ``chunk`` events, each interval is closed the moment its last event
    arrives, and at every close (after the first) ``spec`` is evaluated
    between the previously closed interval and the new one — the
    monitor's zero-re-scan past-only path.  Returns
    ``(verdicts, execution)`` with the execution finalised zero-copy
    from the live clock table.
    """
    from repro.monitor.online import OnlineMonitor

    om = OnlineMonitor(trace.num_nodes)
    handles = {}
    counts = [0] * trace.num_nodes
    closed: list[str] = []
    done = set()
    verdicts: list[bool] = []
    for node, ev, send in stream_schedule(trace):
        iname = _chunk_name(node, counts[node], chunk)
        if ev.kind.name == "SEND":
            handles[ev.eid] = om.send(node, interval=iname)
        elif send is not None:
            om.recv(node, handles[send], interval=iname)
        else:
            om.internal(node, interval=iname)
        counts[node] += 1
        boundary = (
            counts[node] % chunk == 0
            or counts[node] == trace.num_real(node)
        )
        if boundary and iname not in done:
            done.add(iname)
            om.close(iname)
            if closed:
                verdicts.append(om.holds(spec, closed[-1], iname))
            closed.append(iname)
    return verdicts, om.to_execution()


def stream_rebuild_baseline(trace, chunk: int, spec: str = "R2"):
    """The rebuild-per-close baseline for :func:`stream_online`.

    Identical observation stream and identical verdicts, but evaluated
    the way the pre-streaming monitor had to: every close builds a cold
    offline :class:`~repro.events.poset.Execution` from the trace so
    far (a full forward clock pass over every event observed to date)
    and queries the offline analyzer.
    """
    from repro.core.evaluator import SynchronizationAnalyzer
    from repro.events.builder import TraceBuilder

    b = TraceBuilder(trace.num_nodes)
    handles = {}
    counts = [0] * trace.num_nodes
    tags: dict = {}
    closed: list[str] = []
    done = set()
    verdicts: list[bool] = []
    for node, ev, send in stream_schedule(trace):
        iname = _chunk_name(node, counts[node], chunk)
        if ev.kind.name == "SEND":
            h = b.send(node)
            handles[ev.eid] = h
            eid = h.send
        elif send is not None:
            eid = b.recv(node, handles[send])
        else:
            eid = b.internal(node)
        tags.setdefault(iname, []).append(eid)
        counts[node] += 1
        boundary = (
            counts[node] % chunk == 0
            or counts[node] == trace.num_real(node)
        )
        if boundary and iname not in done:
            done.add(iname)
            if closed:
                ex = Execution(b.build())  # the per-close rebuild
                an = SynchronizationAnalyzer(ex)
                verdicts.append(an.holds(
                    spec,
                    an.interval(tags[closed[-1]]),
                    an.interval(tags[iname]),
                ))
            closed.append(iname)
    ex = Execution(b.build())
    ex.forward_table  # the finalisation pass
    return verdicts, ex
