"""E-SET — §2.3's claim: timestamp/cut setup cost is negligible.

The paper asserts (deferring to [8]) that *"the overhead of setting up
the timestamp structure is negligible in comparison with the overhead
of the evaluation conditions themselves"* once cuts are reused across
queries (Key Idea 1).  This module measures:

* the one-time clock construction for the whole execution;
* the one-time per-interval cut construction;
* the per-query evaluation cost against many other intervals;
* the :class:`~repro.core.context.CutCache` hit path vs a cold fold;
* :meth:`SynchronizationAnalyzer.batch_holds` vs the scalar query loop
  over a large interval batch (the planner's headline speedup);

and prints the break-even query count.
"""

import time

import numpy as np

from repro.core.context import AnalysisContext, CutCache
from repro.core.cuts import cut_stats, cuts_of
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS, parse_spec
from repro.events.poset import Execution
from repro.simulation.workloads import random_trace

from .common import best_of, disjoint_intervals
from .conftest import fresh_intervals, make_pairs

TRACE = random_trace(16, events_per_node=12, msg_prob=0.3, seed=21)
EX = Execution(TRACE)
PAIRS = make_pairs(EX, 30)


def test_clock_setup(benchmark):
    """One-time cost: both timestamp structures for the full trace."""
    benchmark(lambda: Execution(TRACE))


def test_cut_setup_per_interval(benchmark):
    """One-time cost per interval: the four cut timestamps."""
    x, _y = PAIRS[0]

    def run():
        fresh = fresh_intervals(x)
        return cuts_of(fresh)

    benchmark(run)


def test_query_cost_with_reuse(benchmark):
    """Steady-state: all 8 relations over 30 pairs with warm cuts."""
    ev = LinearEvaluator(EX)
    for x, y in PAIRS:
        cuts_of(x), cuts_of(y)

    def run():
        total = 0
        for x, y in PAIRS:
            for rel in BASE_RELATIONS:
                total += ev.evaluate(rel, x, y)
        return total

    benchmark(run)


def test_amortization_report(benchmark):
    """Break-even analysis: queries needed to amortize the setup."""
    import time

    t0 = time.perf_counter()
    Execution(TRACE)
    clock_setup = time.perf_counter() - t0

    x0, y0 = PAIRS[0]
    t0 = time.perf_counter()
    for _ in range(100):
        cuts_of(fresh_intervals(x0))
    cut_setup = (time.perf_counter() - t0) / 100

    ev = LinearEvaluator(EX)
    cuts_of(x0), cuts_of(y0)
    t0 = time.perf_counter()
    reps = 2000
    for _ in range(reps):
        for rel in BASE_RELATIONS:
            ev.evaluate(rel, x0, y0)
    per_query = (time.perf_counter() - t0) / (reps * len(BASE_RELATIONS))

    print(
        f"\nsetup amortization: clock setup {clock_setup * 1e3:.2f} ms "
        f"(whole trace, {TRACE.total_events} events), cut setup "
        f"{cut_setup * 1e6:.1f} us/interval, query {per_query * 1e6:.2f} "
        f"us/relation -> cut setup amortized after "
        f"{cut_setup / per_query:.0f} queries"
    )
    benchmark.extra_info["clock_setup_ms"] = clock_setup * 1e3
    benchmark.extra_info["cut_setup_us"] = cut_setup * 1e6
    benchmark.extra_info["query_us"] = per_query * 1e6
    benchmark(lambda: ev.evaluate(BASE_RELATIONS[0], x0, y0))


def test_cut_cache_hit_vs_cold(benchmark):
    """CutCache: serving a memoized quadruple vs paying the fold."""
    x, _y = PAIRS[0]

    cold_reps = 200
    t0 = time.perf_counter()
    for _ in range(cold_reps):
        cache = CutCache(EX)
        cache.quadruple(fresh_intervals(x))
    cold = (time.perf_counter() - t0) / cold_reps

    warm_cache = CutCache(EX)
    warm_cache.quadruple(x)
    hit_reps = 2000
    t0 = time.perf_counter()
    for _ in range(hit_reps):
        warm_cache.quadruple(fresh_intervals(x))
    hit = (time.perf_counter() - t0) / hit_reps

    print(
        f"\ncut cache: cold miss {cold * 1e6:.1f} us/quadruple, "
        f"hit {hit * 1e6:.2f} us/quadruple ({cold / hit:.0f}x)"
    )
    benchmark.extra_info["cold_miss_us"] = cold * 1e6
    benchmark.extra_info["hit_us"] = hit * 1e6
    benchmark.extra_info["hit_speedup"] = cold / hit
    benchmark(lambda: warm_cache.quadruple(x))


def test_batch_holds_vs_scalar_loop(benchmark):
    """Planner speedup: batch_holds vs the scalar loop, k = 32 intervals.

    All C(32, 2) ordered ``R1(U,L)`` queries over one execution; both
    paths run against warm cut caches, so the comparison isolates
    query-time cost (one NumPy broadcast vs ~1k engine calls).  The
    acceptance bar is a >= 5x win for the batch path.
    """
    intervals = disjoint_intervals(EX, 32)
    spec = parse_spec("R1(U,L)")
    queries = [
        (spec, x, y) for x in intervals for y in intervals if x is not y
    ]
    # the intervals partition the trace, so per-query disjointness
    # validation is redundant in both paths
    an = SynchronizationAnalyzer(AnalysisContext(EX), check_disjoint=False)

    an.batch_holds(queries)  # warm the cut cache for both paths

    batch_t, batched = best_of(lambda: an.batch_holds(queries))
    scalar_t, scalar = best_of(
        lambda: [an.holds(s, x, y) for s, x, y in queries]
    )

    assert batched == scalar
    speedup = scalar_t / batch_t
    print(
        f"\nbatch planner: {len(queries)} queries over "
        f"{len(intervals)} intervals -> scalar {scalar_t * 1e3:.1f} ms, "
        f"batched {batch_t * 1e3:.2f} ms ({speedup:.1f}x)"
    )
    benchmark.extra_info["num_queries"] = len(queries)
    benchmark.extra_info["scalar_ms"] = scalar_t * 1e3
    benchmark.extra_info["batch_ms"] = batch_t * 1e3
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 5.0, (
        f"batch_holds only {speedup:.1f}x faster than the scalar loop"
    )
    benchmark(lambda: an.batch_holds(queries))


def test_columnar_cut_fill_vs_folds(benchmark):
    """Columnar batch cut fill vs per-interval folds, k = 256 intervals.

    Both paths run over warm clock tables and time only the cut
    construction (interval objects are built outside the timed region;
    the fold path gets fresh clones per repetition so the per-instance
    cut cache cannot serve it).  The acceptance bar is a >= 5x win for
    the one-pass columnar fill (:func:`repro.core.cuts.cut_stats`).
    """
    k = 256
    ex = Execution(random_trace(16, events_per_node=64, msg_prob=0.3, seed=9))
    base = disjoint_intervals(ex, k)
    ex.forward_table, ex.reverse_table  # warm the clocks for both paths

    reps = 5
    fold_sets = [[fresh_intervals(iv) for iv in base] for _ in range(reps)]
    fold_t = float("inf")
    for ivs in fold_sets:
        t0 = time.perf_counter()
        quads = [cuts_of(iv) for iv in ivs]
        fold_t = min(fold_t, time.perf_counter() - t0)
    batch_t, stats = best_of(lambda: cut_stats(ex, base), reps=reps)

    # cross-check a sample of rows against the fold path
    for i in range(0, k, 37):
        assert np.array_equal(stats.c1[i], quads[i].c1.vector)
        assert np.array_equal(stats.c4[i], quads[i].c4.vector)

    speedup = fold_t / batch_t
    print(
        f"\ncolumnar cut fill: {k} intervals -> per-interval folds "
        f"{fold_t * 1e3:.1f} ms, columnar {batch_t * 1e3:.2f} ms "
        f"({speedup:.1f}x)"
    )
    benchmark.extra_info["num_intervals"] = k
    benchmark.extra_info["fold_ms"] = fold_t * 1e3
    benchmark.extra_info["columnar_ms"] = batch_t * 1e3
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 5.0, (
        f"columnar cut fill only {speedup:.1f}x faster than folds"
    )
    benchmark(lambda: cut_stats(ex, base))
