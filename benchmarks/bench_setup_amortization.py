"""E-SET — §2.3's claim: timestamp/cut setup cost is negligible.

The paper asserts (deferring to [8]) that *"the overhead of setting up
the timestamp structure is negligible in comparison with the overhead
of the evaluation conditions themselves"* once cuts are reused across
queries (Key Idea 1).  This module measures:

* the one-time clock construction for the whole execution;
* the one-time per-interval cut construction;
* the per-query evaluation cost against many other intervals;

and prints the break-even query count.
"""

import numpy as np
import pytest

from repro.core.cuts import cuts_of
from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS
from repro.events.poset import Execution
from repro.simulation.workloads import random_trace

from .conftest import fresh_intervals, make_pairs

TRACE = random_trace(16, events_per_node=12, msg_prob=0.3, seed=21)
EX = Execution(TRACE)
PAIRS = make_pairs(EX, 30)


def test_clock_setup(benchmark):
    """One-time cost: both timestamp structures for the full trace."""
    benchmark(lambda: Execution(TRACE))


def test_cut_setup_per_interval(benchmark):
    """One-time cost per interval: the four cut timestamps."""
    x, _y = PAIRS[0]

    def run():
        fresh = fresh_intervals(x)
        return cuts_of(fresh)

    benchmark(run)


def test_query_cost_with_reuse(benchmark):
    """Steady-state: all 8 relations over 30 pairs with warm cuts."""
    ev = LinearEvaluator(EX)
    for x, y in PAIRS:
        cuts_of(x), cuts_of(y)

    def run():
        total = 0
        for x, y in PAIRS:
            for rel in BASE_RELATIONS:
                total += ev.evaluate(rel, x, y)
        return total

    benchmark(run)


def test_amortization_report(benchmark):
    """Break-even analysis: queries needed to amortize the setup."""
    import time

    t0 = time.perf_counter()
    Execution(TRACE)
    clock_setup = time.perf_counter() - t0

    x0, y0 = PAIRS[0]
    t0 = time.perf_counter()
    for _ in range(100):
        cuts_of(fresh_intervals(x0))
    cut_setup = (time.perf_counter() - t0) / 100

    ev = LinearEvaluator(EX)
    cuts_of(x0), cuts_of(y0)
    t0 = time.perf_counter()
    reps = 2000
    for _ in range(reps):
        for rel in BASE_RELATIONS:
            ev.evaluate(rel, x0, y0)
    per_query = (time.perf_counter() - t0) / (reps * len(BASE_RELATIONS))

    print(
        f"\nsetup amortization: clock setup {clock_setup * 1e3:.2f} ms "
        f"(whole trace, {TRACE.total_events} events), cut setup "
        f"{cut_setup * 1e6:.1f} us/interval, query {per_query * 1e6:.2f} "
        f"us/relation -> cut setup amortized after "
        f"{cut_setup / per_query:.0f} queries"
    )
    benchmark.extra_info["clock_setup_ms"] = clock_setup * 1e3
    benchmark.extra_info["cut_setup_us"] = cut_setup * 1e6
    benchmark.extra_info["query_us"] = per_query * 1e6
    benchmark(lambda: ev.evaluate(BASE_RELATIONS[0], x0, y0))
