"""E-32 — §2.5: evaluating the whole 32-relation family (Problem 4 ii).

Measures the facade's ``all_relations`` under each engine, and the
hierarchy-pruned variant, over a shared workload.  The 1-1 equivalence
``r(X,Y) = R(X̂,Ŷ)`` means the 32 queries reuse the 8 proxy cuts of
each side (Key Idea 1): the linear engine's batch cost stays linear in
the node sets.

:func:`test_shared_verdict_cache_ll_reduction` measures the Theorem
19/20 subtest factoring: the whole-family query surface
(``all_relations`` + ``base_relations`` + ``strongest``) through the
shared ``≪``-subtest verdict cache costs a fixed 24 subtest
evaluations per ordered pair, against the ``≪``-test count of the
per-spec scalar loop — with verdict identity across all 40 specs.
"""

import pytest

from repro.core.context import AnalysisContext
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.hierarchy import evaluate_all_pruned, maximal_true
from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS, FAMILY32

from .conftest import make_pair


@pytest.mark.parametrize("engine", ["naive", "polynomial", "linear"])
def test_all_32_relations(benchmark, engine):
    ex, x, y = make_pair(12, events_per_node=8, seed=11)
    an = SynchronizationAnalyzer(ex, engine=engine)
    an.all_relations(x, y)  # warm caches
    result = benchmark(lambda: an.all_relations(x, y))
    assert len(result) == 32


def test_all_32_with_pruning(benchmark):
    ex, x, y = make_pair(12, events_per_node=8, seed=11)
    an = SynchronizationAnalyzer(ex)
    plain = an.all_relations(x, y)
    result = benchmark(lambda: an.all_relations(x, y, prune=True))
    assert result == plain


def test_strongest_relations(benchmark):
    ex, x, y = make_pair(12, events_per_node=8, seed=11)
    an = SynchronizationAnalyzer(ex)
    an.strongest(x, y)
    benchmark(lambda: an.strongest(x, y))


def test_shared_verdict_cache_ll_reduction():
    """The verdict cache answers the whole-family surface with ≥2.5x
    fewer ``≪`` evaluations than the per-spec loop, verdicts identical.
    """
    ex, x, y = make_pair(12, events_per_node=8, seed=11)

    # per-spec scalar loop: every family/base spec through the linear
    # engine, plus the strongest query (pruned pass + maximality)
    eng = LinearEvaluator(AnalysisContext(ex))
    scalar = {spec: eng.evaluate_spec(spec, x, y) for spec in FAMILY32}
    scalar_base = {rel: eng.evaluate(rel, x, y) for rel in BASE_RELATIONS}
    pruned, _ = evaluate_all_pruned(
        lambda spec: eng.evaluate_spec(spec, x, y), FAMILY32
    )
    scalar_strongest = maximal_true(pruned)
    scalar_ll = eng.ll_tests

    an = SynchronizationAnalyzer(AnalysisContext(ex))
    assert an.all_relations(x, y) == scalar
    assert an.base_relations(x, y) == scalar_base
    assert an.strongest(x, y) == scalar_strongest
    vc = an.verdict_cache
    assert vc is not None and vc.evals == 24 and vc.cut_pair_evals == 12

    reduction = scalar_ll / vc.evals
    print(f"\n≪ evals: per-spec loop {scalar_ll}, cached {vc.evals} "
          f"({reduction:.1f}x fewer; {vc.hits} cache hits)")
    assert reduction >= 2.5, (
        f"≪-eval reduction only {reduction:.1f}x "
        f"({scalar_ll} -> {vc.evals})"
    )
