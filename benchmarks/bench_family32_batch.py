"""E-32 — §2.5: evaluating the whole 32-relation family (Problem 4 ii).

Measures the facade's ``all_relations`` under each engine, the
hierarchy-pruned variant, and the batched ``(pairs, 24)`` family kernel
over a shared workload.  The 1-1 equivalence ``r(X,Y) = R(X̂,Ŷ)``
means the 32 queries reuse the 8 proxy cuts of each side (Key Idea 1):
the linear engine's batch cost stays linear in the node sets, and the
batched kernel answers every queried pair's 24 ``≪``-subtests in one
NumPy pass.

:func:`test_shared_verdict_cache_ll_reduction` measures the Theorem
19/20 subtest factoring: the whole-family query surface
(``all_relations`` + ``base_relations`` + ``strongest``) through the
shared ``≪``-subtest verdict cache costs a fixed 24 subtest
evaluations per ordered pair, against the ``≪``-test count of the
per-spec scalar loop — with verdict identity across all 40 specs.

:func:`test_batched_kernel_wall_clock_and_evals` reports wall-clock
and ``≪``-eval counts *side by side* and fails on an inversion: a
strategy that wins on operation count but loses on wall-clock must
never pass silently.

Standalone perf gate (what CI's bench-smoke job runs)::

    PYTHONPATH=src python benchmarks/bench_family32_batch.py [--quick]

The full run uses the exact ``BENCH_PR4.json`` family workload
(12 nodes, 16 pairs) and enforces the acceptance floors: cached
>= 1.2x the per-spec loop, batched >= 3x the recorded PR4 cached rate.
``--quick`` shrinks the workload and relaxes the floors (cached
>= 1.0x, batched >= 1.5x vs per-spec; no PR4 comparison).
"""

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # standalone: python benchmarks/bench_...
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sys.path.insert(0, _ROOT)
    sys.path.insert(0, os.path.join(_ROOT, "src"))

import pytest

from repro.core.context import AnalysisContext
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.hierarchy import evaluate_all_pruned, maximal_true
from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS, FAMILY32

from benchmarks.common import best_of, family_pairs
from benchmarks.conftest import make_pair


@pytest.mark.parametrize("engine", ["naive", "polynomial", "linear"])
def test_all_32_relations(benchmark, engine):
    ex, x, y = make_pair(12, events_per_node=8, seed=11)
    an = SynchronizationAnalyzer(ex, engine=engine)
    an.all_relations(x, y)  # warm caches
    result = benchmark(lambda: an.all_relations(x, y))
    assert len(result) == 32


def test_all_32_with_pruning(benchmark):
    ex, x, y = make_pair(12, events_per_node=8, seed=11)
    an = SynchronizationAnalyzer(ex)
    plain = an.all_relations(x, y)
    result = benchmark(lambda: an.all_relations(x, y, prune=True))
    assert result == plain


def test_strongest_relations(benchmark):
    ex, x, y = make_pair(12, events_per_node=8, seed=11)
    an = SynchronizationAnalyzer(ex)
    an.strongest(x, y)
    benchmark(lambda: an.strongest(x, y))


def test_strongest_batched_cold(benchmark):
    """Cold whole-surface batch: one kernel fill for all 8 pairs."""
    ex, pairs = family_pairs(12, 8, 8)

    def run():
        an = SynchronizationAnalyzer(AnalysisContext(ex))
        return an.strongest_batch(pairs)

    result = benchmark(run)
    assert len(result) == len(pairs)


def test_shared_verdict_cache_ll_reduction():
    """The verdict cache answers the whole-family surface with ≥2.5x
    fewer ``≪`` evaluations than the per-spec loop, verdicts identical.
    """
    ex, x, y = make_pair(12, events_per_node=8, seed=11)

    # per-spec scalar loop: every family/base spec through the linear
    # engine, plus the strongest query (pruned pass + maximality)
    eng = LinearEvaluator(AnalysisContext(ex))
    scalar = {spec: eng.evaluate_spec(spec, x, y) for spec in FAMILY32}
    scalar_base = {rel: eng.evaluate(rel, x, y) for rel in BASE_RELATIONS}
    pruned, _ = evaluate_all_pruned(
        lambda spec: eng.evaluate_spec(spec, x, y), FAMILY32
    )
    scalar_strongest = maximal_true(pruned)
    scalar_ll = eng.ll_tests

    an = SynchronizationAnalyzer(AnalysisContext(ex))
    assert an.all_relations(x, y) == scalar
    assert an.base_relations(x, y) == scalar_base
    assert an.strongest(x, y) == scalar_strongest
    vc = an.verdict_cache
    assert vc is not None and vc.evals == 24 and vc.cut_pair_evals == 12

    # the batched entry points serve the identical verdicts
    ban = SynchronizationAnalyzer(AnalysisContext(ex))
    assert ban.all_relations_batch([(x, y)]) == [scalar]
    assert ban.base_relations_batch([(x, y)]) == [scalar_base]
    assert ban.strongest_batch([(x, y)]) == [scalar_strongest]
    assert ban.verdict_cache.fills == 1

    reduction = scalar_ll / vc.evals
    print(f"\n≪ evals: per-spec loop {scalar_ll}, cached {vc.evals} "
          f"({reduction:.1f}x fewer; {vc.hits} cache hits)")
    assert reduction >= 2.5, (
        f"≪-eval reduction only {reduction:.1f}x "
        f"({scalar_ll} -> {vc.evals})"
    )


# ----------------------------------------------------------------------
# side-by-side measurement (shared by the pytest gate and __main__)
# ----------------------------------------------------------------------
def measure_family_surface(
    nodes: int, events: int, pairs: int, reps: int,
    backend: "str | None" = None,
) -> dict:
    """Wall-clock *and* ``≪``-eval counts for the three strategies that
    answer the whole-family surface over the shared
    :func:`~benchmarks.common.family_pairs` workload."""
    ex, pair_list = family_pairs(nodes, events, pairs)

    def per_spec_loop():
        eng = LinearEvaluator(AnalysisContext(ex))  # private context: cold
        for x, y in pair_list:
            for spec in FAMILY32:
                eng.evaluate_spec(spec, x, y)
            for rel in BASE_RELATIONS:
                eng.evaluate(rel, x, y)
            results, _ = evaluate_all_pruned(
                lambda spec: eng.evaluate_spec(spec, x, y), FAMILY32
            )
            maximal_true(results)
        return eng

    def cached_family():
        an = SynchronizationAnalyzer(AnalysisContext(ex))
        for x, y in pair_list:
            an.all_relations(x, y)
            an.base_relations(x, y)
            an.strongest(x, y)
        return an

    def batched_family():
        an = SynchronizationAnalyzer(AnalysisContext(ex))
        an.all_relations_batch(pair_list)
        an.base_relations_batch(pair_list)
        an.strongest_batch(pair_list)
        return an

    loop_t, eng = best_of(per_spec_loop, reps=reps, backend=backend)
    cached_t, can = best_of(cached_family, reps=reps, backend=backend)
    batched_t, ban = best_of(batched_family, reps=reps, backend=backend)
    # verdicts surfaced per pair: 40 specs + the 32-entry family map
    # behind the strongest query (matches scripts/bench_report.py)
    verdicts = (len(FAMILY32) * 2 + len(BASE_RELATIONS)) * len(pair_list)
    return {
        "nodes": nodes,
        "pairs": len(pair_list),
        "verdicts": verdicts,
        "per_spec_s": loop_t,
        "cached_s": cached_t,
        "batched_s": batched_t,
        "ll_per_spec": eng.ll_tests,
        "ll_cached": can.verdict_cache.evals,
        "ll_batched": ban.verdict_cache.evals,
        "fills_batched": ban.verdict_cache.fills,
    }


def side_by_side_lines(m: dict) -> list[str]:
    """The wall-clock / op-count table — both axes, always together."""
    v = m["verdicts"]
    rows = [
        ("per-spec loop", m["per_spec_s"], m["ll_per_spec"], ""),
        ("cached", m["cached_s"], m["ll_cached"], ""),
        ("batched", m["batched_s"], m["ll_batched"],
         f"{m['fills_batched']} fill(s)"),
    ]
    lines = [
        f"family surface: {m['pairs']} pairs x 40 specs + strongest "
        f"({v} verdicts) on {m['nodes']} nodes",
        f"  {'strategy':<14} {'wall ms':>9} {'verdicts/s':>12} "
        f"{'ll evals':>9}",
    ]
    for name, t, ll, extra in rows:
        lines.append(
            f"  {name:<14} {t * 1e3:>9.2f} {v / t:>12,.0f} {ll:>9}"
            + (f"  {extra}" if extra else "")
        )
    return lines


def assert_no_inversion(m: dict) -> None:
    """An op-count win must come with a wall-clock win.  Fewer ``≪``
    evals than the per-spec loop while *slower* in wall-clock is the
    failure mode this gate exists to catch — never let it pass."""
    for name in ("cached", "batched"):
        if m[f"ll_{name}"] < m["ll_per_spec"]:
            assert m[f"{name}_s"] <= m["per_spec_s"], (
                f"{name}: {m[f'll_{name}']} ≪ evals vs per-spec loop's "
                f"{m['ll_per_spec']}, yet slower in wall-clock "
                f"({m[f'{name}_s'] * 1e3:.2f} ms vs "
                f"{m['per_spec_s'] * 1e3:.2f} ms) — op-count win with a "
                f"wall-clock loss must not pass silently"
            )


def test_batched_kernel_wall_clock_and_evals():
    """Both axes reported side by side, no silent inversion."""
    m = measure_family_surface(8, 6, 6, reps=2)
    print()
    for line in side_by_side_lines(m):
        print(line)
    assert_no_inversion(m)
    assert m["ll_batched"] < m["ll_per_spec"]
    assert m["per_spec_s"] / m["batched_s"] >= 1.5


# ----------------------------------------------------------------------
# standalone perf gate
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="Batched family-kernel perf gate"
    )
    ap.add_argument("--quick", action="store_true",
                    help="reduced workload + relaxed floors (CI smoke); "
                         "skips the BENCH_PR4.json comparison")
    ap.add_argument("--reps", type=int, default=None,
                    help="best-of repetitions (default: 3 quick, 5 full)")
    args = ap.parse_args(argv)

    if args.quick:
        nodes, events, pairs = 8, 6, 6
        reps = args.reps or 3
        min_cached, min_batched_vs_loop = 1.0, 1.5
    else:
        # the exact BENCH_PR4.json family_query workload
        nodes, events, pairs = 12, 8, 16
        reps = args.reps or 5
        min_cached, min_batched_vs_loop = 1.2, 2.0

    m = measure_family_surface(nodes, events, pairs, reps)
    for line in side_by_side_lines(m):
        print(line)
    assert_no_inversion(m)

    failures = []
    cached_speedup = m["per_spec_s"] / m["cached_s"]
    batched_vs_loop = m["per_spec_s"] / m["batched_s"]
    print(f"  cached  speedup vs per-spec loop: {cached_speedup:.2f}x "
          f"(floor {min_cached:.1f}x)")
    print(f"  batched speedup vs per-spec loop: {batched_vs_loop:.2f}x "
          f"(floor {min_batched_vs_loop:.1f}x)")
    if cached_speedup < min_cached:
        failures.append(
            f"cached path only {cached_speedup:.2f}x vs per-spec loop "
            f"(floor {min_cached:.1f}x)"
        )
    if batched_vs_loop < min_batched_vs_loop:
        failures.append(
            f"batched kernel only {batched_vs_loop:.2f}x vs per-spec "
            f"loop (floor {min_batched_vs_loop:.1f}x)"
        )

    if not args.quick:
        pr4_path = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..",
            "BENCH_PR4.json",
        )
        pr4 = None
        if os.path.exists(pr4_path):
            with open(pr4_path) as fh:
                pr4 = json.load(fh).get("family_query")
        if (
            isinstance(pr4, dict)
            and pr4.get("nodes") == nodes
            and pr4.get("pairs") == pairs
        ):
            batched_rate = m["verdicts"] / m["batched_s"]
            vs_pr4 = batched_rate / pr4["cached_verdicts_per_sec"]
            print(f"  batched vs PR4 cached rate: {vs_pr4:.2f}x "
                  f"({pr4['cached_verdicts_per_sec']:,.0f} -> "
                  f"{batched_rate:,.0f} verdicts/s; floor 3.0x)")
            if vs_pr4 < 3.0:
                failures.append(
                    f"batched rate only {vs_pr4:.2f}x the recorded PR4 "
                    f"cached rate (floor 3.0x)"
                )
        else:
            print("  BENCH_PR4.json baseline unavailable or "
                  "size-mismatched — PR4 comparison skipped")

    if failures:
        print("FAIL:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
