"""E-32 — §2.5: evaluating the whole 32-relation family (Problem 4 ii).

Measures the facade's ``all_relations`` under each engine, and the
hierarchy-pruned variant, over a shared workload.  The 1-1 equivalence
``r(X,Y) = R(X̂,Ŷ)`` means the 32 queries reuse the 8 proxy cuts of
each side (Key Idea 1): the linear engine's batch cost stays linear in
the node sets.
"""

import pytest

from repro.core.evaluator import SynchronizationAnalyzer

from .conftest import make_pair


@pytest.mark.parametrize("engine", ["naive", "polynomial", "linear"])
def test_all_32_relations(benchmark, engine):
    ex, x, y = make_pair(12, events_per_node=8, seed=11)
    an = SynchronizationAnalyzer(ex, engine=engine)
    an.all_relations(x, y)  # warm caches
    result = benchmark(lambda: an.all_relations(x, y))
    assert len(result) == 32


def test_all_32_with_pruning(benchmark):
    ex, x, y = make_pair(12, events_per_node=8, seed=11)
    an = SynchronizationAnalyzer(ex)
    plain = an.all_relations(x, y)
    result = benchmark(lambda: an.all_relations(x, y, prune=True))
    assert result == plain


def test_strongest_relations(benchmark):
    ex, x, y = make_pair(12, events_per_node=8, seed=11)
    an = SynchronizationAnalyzer(ex)
    an.strongest(x, y)
    benchmark(lambda: an.strongest(x, y))
