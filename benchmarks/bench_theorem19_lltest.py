"""E-19 — Theorem 19: the restricted ``≪̸`` test.

Measures the single ``≪̸(↓Y, X↑)`` decision (the R4 cut pair, where
both sides are anchored) with the scan restricted to min(N_X, N_Y)
versus the full |P| scan, across node counts.  The restricted scan's
cost tracks the interval width, not the system size.
"""

import pytest

from repro.core.counting import ComparisonCounter
from repro.core.cuts import cut_C2, cut_C3
from repro.core.linear import not_ll_restricted

from .conftest import make_pair

SYSTEM_SIZES = [8, 32, 128]
SPREAD = 4  # |N_X| = |N_Y| = 4 regardless of |P|


@pytest.mark.parametrize("num_nodes", SYSTEM_SIZES, ids=lambda n: f"P={n}")
def test_restricted_scan(benchmark, num_nodes):
    ex, x, y = make_pair(num_nodes, seed=num_nodes, spread=SPREAD)
    past, fut = cut_C2(y), cut_C3(x)
    nodes = x.node_set if x.width <= y.width else y.node_set
    counter = ComparisonCounter()
    not_ll_restricted(past, fut, nodes, counter)
    benchmark(lambda: not_ll_restricted(past, fut, nodes))
    benchmark.extra_info["comparisons"] = counter.total
    assert counter.total <= min(x.width, y.width)


@pytest.mark.parametrize("num_nodes", SYSTEM_SIZES, ids=lambda n: f"P={n}")
def test_full_scan(benchmark, num_nodes):
    ex, x, y = make_pair(num_nodes, seed=num_nodes, spread=SPREAD)
    past, fut = cut_C2(y), cut_C3(x)
    all_nodes = range(ex.num_nodes)
    # answers must agree (Key Idea 2)
    assert not_ll_restricted(past, fut, all_nodes) == not_ll_restricted(
        past, fut, x.node_set
    )
    benchmark(lambda: not_ll_restricted(past, fut, all_nodes))
