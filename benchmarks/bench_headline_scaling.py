"""E-HL — the abstract's headline: polynomial → linear evaluation.

Sweeps the node count (with X and Y spanning all nodes, so
``|N_X| = |N_Y| = |P|``) and measures all-8-relation evaluation under
each engine.  The expected shape, which EXPERIMENTS.md records:

* naive counts grow with ``|X| · |Y|`` (quadratic in P here, with a
  large constant from the per-node populations);
* polynomial counts fit ``count ~ P^2``;
* linear counts fit ``count ~ P^1`` — the paper's contribution —
  so the linear engine wins everywhere and the gap widens linearly.

The companion (non-benchmark) assertions fit the exponents explicitly.
"""

import pytest

from repro.analysis.complexity import fit_power_law, measure_comparisons
from repro.core.linear import LinearEvaluator
from repro.core.naive import NaiveEvaluator
from repro.core.polynomial import PolynomialEvaluator
from repro.core.relations import BASE_RELATIONS

from .conftest import SCALING_NODES, make_pair

ENGINES = {
    "naive": NaiveEvaluator,
    "polynomial": PolynomialEvaluator,
    "linear": LinearEvaluator,
}


@pytest.mark.parametrize("num_nodes", SCALING_NODES, ids=lambda n: f"P={n}")
@pytest.mark.parametrize("engine", list(ENGINES))
def test_scaling_sweep(benchmark, engine, num_nodes):
    ex, x, y = make_pair(num_nodes, events_per_node=6, seed=num_nodes)
    ev = ENGINES[engine](ex)
    from repro.core.cuts import cuts_of

    cuts_of(x), cuts_of(y)

    def run():
        return [ev.evaluate(rel, x, y) for rel in BASE_RELATIONS]

    benchmark(run)


def test_fit_exponents(benchmark):
    """The shape claim, asserted: linear engine ≈ P^1, polynomial ≈ P^2.

    Uses barrier phases as X and Y: the barrier guarantees R1(X, Y), so
    the universal relations (R1, R1', R2, R3') cannot short-circuit and
    pay their full worst-case comparison bill at every size.
    """
    from repro.events.poset import Execution
    from repro.nonatomic.selection import by_label
    from repro.simulation.workloads import barrier_trace

    totals = {"polynomial": [], "linear": []}
    for num_nodes in SCALING_NODES:
        ex = Execution(barrier_trace(num_nodes, phases=2, work_per_phase=1))
        x = by_label(ex, "phase0")
        y = by_label(ex, "phase1")
        assert x.width == y.width == num_nodes
        for name in totals:
            counts = measure_comparisons(
                lambda e, c, cls=ENGINES[name]: cls(e, counter=c), ex, [(x, y)]
            )
            totals[name].append(sum(v[0] for v in counts.values()))
    b_poly, _ = fit_power_law(SCALING_NODES, totals["polynomial"])
    b_lin, _ = fit_power_law(SCALING_NODES, totals["linear"])
    benchmark.extra_info["exponent_polynomial"] = round(b_poly, 3)
    benchmark.extra_info["exponent_linear"] = round(b_lin, 3)
    benchmark(lambda: fit_power_law(SCALING_NODES, totals["linear"]))
    print(f"\nscaling exponents: polynomial={b_poly:.2f}, linear={b_lin:.2f}")
    print(f"polynomial counts: {totals['polynomial']}")
    print(f"linear counts:     {totals['linear']}")
    assert b_poly > 1.6, totals["polynomial"]
    assert b_lin < 1.3, totals["linear"]
    # and the linear engine never loses
    for p, l in zip(totals["polynomial"], totals["linear"], strict=True):
        assert l <= p
