"""E-T1 — Table 1: per-relation evaluation cost by engine.

One benchmark per (engine, relation) over a shared 16-node workload.
The paper's claim reproduced here: the linear conditions answer the
same queries as the definition-level evaluation, at a per-query cost
independent of ``|X| · |Y|`` and linear in the node sets.
"""

import pytest

from repro.core.linear import LinearEvaluator
from repro.core.naive import NaiveEvaluator
from repro.core.polynomial import PolynomialEvaluator
from repro.core.relations import BASE_RELATIONS
from repro.core.cuts import cuts_of

ENGINES = {
    "naive": NaiveEvaluator,
    "polynomial": PolynomialEvaluator,
    "linear": LinearEvaluator,
}


@pytest.mark.parametrize("engine", list(ENGINES))
@pytest.mark.parametrize("relation", BASE_RELATIONS, ids=lambda r: r.display)
def test_relation_engine(benchmark, medium_workload, engine, relation):
    ex, pairs = medium_workload
    ev = ENGINES[engine](ex)
    for x, y in pairs:  # pre-warm cut caches (one-time cost, Key Idea 1)
        cuts_of(x), cuts_of(y)

    def run():
        out = 0
        for x, y in pairs:
            out += ev.evaluate(relation, x, y)
        return out

    result = benchmark(run)
    benchmark.extra_info["true_fraction"] = result / len(pairs)
    # engines must agree — benchmarks double as integration checks
    ref = NaiveEvaluator(ex)
    for x, y in pairs:
        assert ev.evaluate(relation, x, y) == ref.evaluate(relation, x, y)
