"""Benchmark harness reproducing every table, theorem and figure."""
