"""Online (past-only) vs offline relation evaluation.

The online monitor trades the reverse-timestamp structure for
past-only conditions; this module measures the per-query costs of the
two paths on closed intervals, and the R2'/R3' polynomial fallback the
module docstring of :mod:`repro.monitor.online` quantifies.

The headline streaming measurement
(:func:`test_streaming_vs_rebuild_per_close`) replays a 10k-event trace
through the growable-clock ingest path — per-close verdicts served from
incrementally maintained cuts, finalisation zero-copy — against the
rebuild-per-close baseline (a cold offline
:class:`~repro.events.poset.Execution` per close, i.e. a full forward
clock pass over every event observed so far).
"""

import time

import numpy as np
import pytest

from repro.core.linear import LinearEvaluator
from repro.core.relations import Relation
from repro.events.clocks import clock_pass_counts, reset_clock_pass_counts
from repro.monitor.online import OnlineMonitor
from repro.nonatomic.selection import random_disjoint_pair
from repro.simulation.workloads import random_trace

from .common import stream_online, stream_rebuild_baseline


def _build(num_nodes=8, events=12, seed=6):
    trace = random_trace(num_nodes, events_per_node=events, msg_prob=0.35,
                         seed=seed)
    om = OnlineMonitor(num_nodes)
    pos = [0] * num_nodes
    handles = {}
    progressed = True
    while progressed:
        progressed = False
        for node in range(num_nodes):
            while pos[node] < trace.num_real(node):
                ev = trace.events_of(node)[pos[node]]
                send = trace.send_of(ev.eid)
                if send is not None and send not in handles:
                    break
                if ev.kind.name == "SEND":
                    handles[ev.eid] = om.send(node)
                elif ev.kind.name == "RECV":
                    om.recv(node, handles[send])
                else:
                    om.internal(node)
                pos[node] += 1
                progressed = True
    ex = om.to_execution()
    rng = np.random.default_rng(seed)
    x, y = random_disjoint_pair(ex, rng, events_per_node=2)
    for eid in sorted(x.ids):
        om.interval("X").add(eid)
    for eid in sorted(y.ids):
        om.interval("Y").add(eid)
    om.close("X")
    om.close("Y")
    return om, ex, x, y


OM, EX, X, Y = _build()
LINEAR_RELS = [Relation.R1, Relation.R2, Relation.R3, Relation.R4]
POLY_RELS = [Relation.R2P, Relation.R3P]


@pytest.mark.parametrize("rel", LINEAR_RELS, ids=lambda r: r.display)
def test_online_linear_rows(benchmark, rel):
    lin = LinearEvaluator(EX)
    assert OM.holds(rel, "X", "Y") == lin.evaluate(rel, X, Y)
    benchmark(lambda: OM.holds(rel, "X", "Y"))


@pytest.mark.parametrize("rel", POLY_RELS, ids=lambda r: r.display)
def test_online_polynomial_fallback(benchmark, rel):
    lin = LinearEvaluator(EX)
    assert OM.holds(rel, "X", "Y") == lin.evaluate(rel, X, Y)
    benchmark(lambda: OM.holds(rel, "X", "Y"))


@pytest.mark.parametrize("rel", LINEAR_RELS + POLY_RELS,
                         ids=lambda r: r.display)
def test_offline_reference(benchmark, rel):
    lin = LinearEvaluator(EX)
    from repro.core.cuts import cuts_of

    cuts_of(X), cuts_of(Y)
    benchmark(lambda: lin.evaluate(rel, X, Y))


def test_streaming_vs_rebuild_per_close():
    """Headline: streaming ingest+finalize ≥5x the rebuild baseline at
    10k events, with the clock-pass counters proving the zero-copy path.

    The baseline rebuilds the execution at every interval close (80
    closes here), so its cost is quadratic in the stream length; the
    streaming path writes forward clocks into the growable table once
    per event and finalises without any rebuild.  Verdict identity is
    asserted, so both sides answer the same per-close R2 queries.
    """
    trace = random_trace(8, events_per_node=1250, msg_prob=0.3, seed=31)
    chunk = 125  # 80 closes over the 10k events

    reset_clock_pass_counts()
    t0 = time.perf_counter()
    online_verdicts, ex = stream_online(trace, chunk)
    online_t = time.perf_counter() - t0
    passes = clock_pass_counts()
    # ingest + per-close verdicts + finalisation ran entirely on the
    # live growable table: no forward rebuild, no extend copy, and the
    # past-only per-close queries never needed the reverse table
    assert passes == {"forward": 0, "reverse": 0, "extend": 0}, passes
    ex.reverse_table  # full-family finalisation: exactly one reverse pass
    assert clock_pass_counts() == {"forward": 0, "reverse": 1, "extend": 0}

    t0 = time.perf_counter()
    rebuild_verdicts, _ = stream_rebuild_baseline(trace, chunk)
    rebuild_t = time.perf_counter() - t0

    assert online_verdicts == rebuild_verdicts
    speedup = rebuild_t / online_t
    print(f"\nstreaming 10k events: online {online_t*1e3:.1f} ms, "
          f"rebuild-per-close {rebuild_t*1e3:.1f} ms, {speedup:.1f}x")
    assert speedup >= 5.0, (
        f"streaming path only {speedup:.1f}x vs rebuild-per-close"
    )
