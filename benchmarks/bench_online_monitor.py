"""Online (past-only) vs offline relation evaluation.

The online monitor trades the reverse-timestamp structure for
past-only conditions; this module measures the per-query costs of the
two paths on closed intervals, and the R2'/R3' polynomial fallback the
module docstring of :mod:`repro.monitor.online` quantifies.
"""

import numpy as np
import pytest

from repro.core.linear import LinearEvaluator
from repro.core.relations import Relation
from repro.monitor.online import OnlineMonitor
from repro.nonatomic.selection import random_disjoint_pair
from repro.simulation.workloads import random_trace


def _build(num_nodes=8, events=12, seed=6):
    trace = random_trace(num_nodes, events_per_node=events, msg_prob=0.35,
                         seed=seed)
    om = OnlineMonitor(num_nodes)
    pos = [0] * num_nodes
    handles = {}
    progressed = True
    while progressed:
        progressed = False
        for node in range(num_nodes):
            while pos[node] < trace.num_real(node):
                ev = trace.events_of(node)[pos[node]]
                send = trace.send_of(ev.eid)
                if send is not None and send not in handles:
                    break
                if ev.kind.name == "SEND":
                    handles[ev.eid] = om.send(node)
                elif ev.kind.name == "RECV":
                    om.recv(node, handles[send])
                else:
                    om.internal(node)
                pos[node] += 1
                progressed = True
    ex = om.to_execution()
    rng = np.random.default_rng(seed)
    x, y = random_disjoint_pair(ex, rng, events_per_node=2)
    for eid in sorted(x.ids):
        om.interval("X").add(eid)
    for eid in sorted(y.ids):
        om.interval("Y").add(eid)
    om.close("X")
    om.close("Y")
    return om, ex, x, y


OM, EX, X, Y = _build()
LINEAR_RELS = [Relation.R1, Relation.R2, Relation.R3, Relation.R4]
POLY_RELS = [Relation.R2P, Relation.R3P]


@pytest.mark.parametrize("rel", LINEAR_RELS, ids=lambda r: r.display)
def test_online_linear_rows(benchmark, rel):
    lin = LinearEvaluator(EX)
    assert OM.holds(rel, "X", "Y") == lin.evaluate(rel, X, Y)
    benchmark(lambda: OM.holds(rel, "X", "Y"))


@pytest.mark.parametrize("rel", POLY_RELS, ids=lambda r: r.display)
def test_online_polynomial_fallback(benchmark, rel):
    lin = LinearEvaluator(EX)
    assert OM.holds(rel, "X", "Y") == lin.evaluate(rel, X, Y)
    benchmark(lambda: OM.holds(rel, "X", "Y"))


@pytest.mark.parametrize("rel", LINEAR_RELS + POLY_RELS,
                         ids=lambda r: r.display)
def test_offline_reference(benchmark, rel):
    lin = LinearEvaluator(EX)
    from repro.core.cuts import cuts_of

    cuts_of(X), cuts_of(Y)
    benchmark(lambda: lin.evaluate(rel, X, Y))
