"""E-20 — Theorem 20: the per-relation comparison-count table.

Regenerates the theorem's table empirically: for |N_X| = 4, |N_Y| = 8
(and the transpose), measures the worst-case comparison count of each
relation under the linear engine and prints the reproduction table
alongside the paper's claim and this implementation's amended bound.

Run with ``-s`` to see the table; it is also recorded in
``benchmark.extra_info`` and asserted exactly.
"""

import numpy as np
import pytest

from repro.analysis.complexity import measure_comparisons, predicted_comparisons
from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS, Relation
from repro.nonatomic.selection import random_disjoint_pair
from repro.simulation.workloads import random_execution

_PAPER_CLAIM = {
    Relation.R1: "min(|N_X|,|N_Y|)",
    Relation.R1P: "min(|N_X|,|N_Y|)",
    Relation.R2: "|N_X|",
    Relation.R2P: "min(|N_X|,|N_Y|)",
    Relation.R3: "min(|N_X|,|N_Y|)",
    Relation.R3P: "|N_Y|",
    Relation.R4: "min(|N_X|,|N_Y|)",
    Relation.R4P: "min(|N_X|,|N_Y|)",
}
_OURS = {
    Relation.R1: "min(|N_X|,|N_Y|)",
    Relation.R1P: "min(|N_X|,|N_Y|)",
    Relation.R2: "|N_X|",
    Relation.R2P: "|N_Y|",
    Relation.R3: "|N_X|",
    Relation.R3P: "|N_Y|",
    Relation.R4: "min(|N_X|,|N_Y|)",
    Relation.R4P: "min(|N_X|,|N_Y|)",
}


@pytest.mark.parametrize(
    "n_x,n_y", [(4, 8), (8, 4)], ids=["NX4-NY8", "NX8-NY4"]
)
def test_theorem20_table(benchmark, n_x, n_y):
    ex = random_execution(12, events_per_node=8, msg_prob=0.3, seed=3)
    rng = np.random.default_rng(9)
    pairs = [
        random_disjoint_pair(ex, rng, num_nodes_x=n_x, num_nodes_y=n_y)
        for _ in range(30)
    ]
    pairs = [(x, y) for x, y in pairs if x.width == n_x and y.width == n_y]
    assert pairs, "workload generation failed to hit requested widths"

    counts = measure_comparisons(
        lambda e, c: LinearEvaluator(e, counter=c), ex, pairs
    )

    def run():
        ev = LinearEvaluator(ex)
        total = 0
        for x, y in pairs:
            for rel in BASE_RELATIONS:
                total += ev.evaluate(rel, x, y)
        return total

    benchmark(run)

    header = (
        f"\nTheorem 20 reproduction (|N_X|={n_x}, |N_Y|={n_y}, "
        f"{len(pairs)} pairs)\n"
        f"{'rel':5} {'paper claim':20} {'this repro':18} "
        f"{'bound':>5} {'max measured':>13}"
    )
    print(header)
    for rel in BASE_RELATIONS:
        bound = predicted_comparisons(rel, n_x, n_y)
        worst = max(counts[rel])
        print(
            f"{rel.display:5} {_PAPER_CLAIM[rel]:20} {_OURS[rel]:18} "
            f"{bound:5d} {worst:13d}"
        )
        assert worst <= bound, rel
        benchmark.extra_info[rel.display] = worst
