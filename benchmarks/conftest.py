"""Shared workloads and helpers for the benchmark harness.

Each benchmark module reproduces one experiment from DESIGN.md §4
(tables, theorems, figures, ablations).  Workload sizes are chosen so
the full harness completes in well under a minute while still spanning
two orders of magnitude in the node count for scaling fits.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.events.poset import Execution
from repro.nonatomic.event import NonatomicEvent
from repro.nonatomic.selection import random_disjoint_pair
from repro.simulation.workloads import random_execution

#: node counts for scaling sweeps (|N_X| = |N_Y| = |P|)
SCALING_NODES = [2, 4, 8, 16, 32, 64]


def make_pair(
    num_nodes: int,
    events_per_node: int = 6,
    seed: int = 0,
    spread: int | None = None,
) -> tuple[Execution, NonatomicEvent, NonatomicEvent]:
    """One execution plus a disjoint X/Y pair spanning ``spread`` nodes
    (default: all of them)."""
    ex = random_execution(
        num_nodes, events_per_node=events_per_node, msg_prob=0.3, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    spread = spread if spread is not None else num_nodes
    x, y = random_disjoint_pair(
        ex, rng, num_nodes_x=spread, num_nodes_y=spread, events_per_node=2
    )
    return ex, x, y


def make_pairs(
    ex: Execution, count: int, seed: int = 7
) -> list[tuple[NonatomicEvent, NonatomicEvent]]:
    """A batch of disjoint pairs over one execution."""
    rng = np.random.default_rng(seed)
    return [random_disjoint_pair(ex, rng, events_per_node=2) for _ in range(count)]


@pytest.fixture(scope="session")
def medium_workload():
    """A 16-node execution with 20 pairs (the default query workload)."""
    ex = random_execution(16, events_per_node=8, msg_prob=0.3, seed=42)
    return ex, make_pairs(ex, 20)


def fresh_intervals(x: NonatomicEvent) -> NonatomicEvent:
    """Clone an interval without its cut cache (for no-reuse baselines)."""
    return NonatomicEvent(x.execution, x.ids, name=x.name)
