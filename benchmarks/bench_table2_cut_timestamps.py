"""E-T2 — Table 2: computing the cut timestamps C1(X)–C4(X).

Benchmarks the condensed (Lemma 16 min/max fold over per-node extremal
events) construction against the literal set-based fold of Definition
10, at several interval populations.  The condensed form's cost depends
only on ``|N_X| · |P|`` — not on ``|X|`` — which is the paper's point
about proxies condensing causal information.
"""

import pytest

from repro.core.cuts import (
    cut_from_event_set,
    cut_intersection,
    cuts_of,
    reference_past_set,
)
from repro.simulation.workloads import random_execution

from .common import spanning_interval

EX = random_execution(8, events_per_node=40, msg_prob=0.3, seed=5)


def _interval(events_per_node: int):
    return spanning_interval(EX, events_per_node)


@pytest.mark.parametrize("population", [1, 5, 20], ids=lambda p: f"|X_i|={p}")
def test_condensed_cut_construction(benchmark, population):
    """Timestamp folds: cost must be flat in the per-node population."""
    x = _interval(population)

    def run():
        x.cache.clear()
        return cuts_of(x)

    benchmark(run)


@pytest.mark.parametrize("population", [1, 5], ids=lambda p: f"|X_i|={p}")
def test_reference_set_construction(benchmark, population):
    """Baseline: literal ∩ of reference past sets (no condensation)."""
    x = _interval(population)
    ids = sorted(x.ids)

    def run():
        pasts = [
            cut_from_event_set(EX, reference_past_set(EX, e)) for e in ids
        ]
        return cut_intersection(pasts)

    result = benchmark(run)
    assert result == cuts_of(x).c1  # same cut, much slower to build


def test_timestamp_reuse_is_free(benchmark):
    """Key Idea 1: re-reading cached cuts costs nothing measurable."""
    x = _interval(5)
    cuts_of(x)
    benchmark(lambda: cuts_of(x))
