"""Sustained ingest throughput of the live monitoring service.

Measures events/sec over loopback TCP with N concurrent clients, each
streaming one node-shard of a recorded trace into a
:class:`~repro.service.server.MonitorService` (the full path: blocking
client sockets -> length-prefixed frames -> asyncio sessions ->
:class:`~repro.service.core.MonitorCore` -> streaming clock table),
including per-chunk interval closes and the final stats barrier that
confirms every frame was applied.

The measured run must stay on the growable clock table: the section
records the service's clock-pass counters and the harness asserts they
are zero (ingest never falls back to an offline rebuild).

``scripts/bench_report.py`` imports :func:`run_service_ingest` for the
``service_ingest`` section of ``BENCH_PR8.json``; the pytest entry
below runs a smoke-sized version of the identical surface.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from repro.events.trace import Trace
from repro.service import MonitorClient, MonitorService, ServiceHandle
from repro.service.client import replay_trace
from repro.simulation.workloads import random_trace


def chunked_labels(trace: Trace, chunk: int) -> Trace:
    """Tag every event into per-node intervals of ``chunk`` events.

    The returned trace labels event ``j`` of node ``i`` as
    ``f"c{i}.{j // chunk}"`` — the streaming-interval workload shape of
    :func:`benchmarks.common.stream_online`, expressed as labels so the
    service's :func:`~repro.service.client.plan_replay` machinery
    derives the interval tags and close frames from the trace itself.
    """
    return Trace(
        [
            [
                dataclasses.replace(ev, label=f"c{node}.{j // chunk}")
                for j, ev in enumerate(trace.events_of(node))
            ]
            for node in range(trace.num_nodes)
        ],
        trace.messages,
    )


def run_service_ingest(
    nodes: int,
    events_per_node: int,
    clients: int,
    chunk: int,
    reps: int = 3,
    seed: int = 31,
) -> dict:
    """Best-of-``reps`` sustained ingest rate; see the module docstring.

    Every rep starts a fresh service and ``clients`` fresh sessions,
    streams the whole trace (events + interval closes), and stops the
    clock after a ``stats`` barrier on each client confirms the
    service applied everything it sent.
    """
    trace = chunked_labels(
        random_trace(nodes, events_per_node=events_per_node, msg_prob=0.3,
                     seed=seed),
        chunk,
    )
    total = trace.total_events
    best = float("inf")
    stats: dict = {}
    for _ in range(reps):
        handle = ServiceHandle(
            lambda: MonitorService(nodes, throttle_at=1 << 14,
                                   disconnect_at=1 << 16)
        ).start()
        try:
            host, port = handle.address
            conns = [
                MonitorClient(host, port, num_nodes=nodes, timeout=120.0)
                for _ in range(clients)
            ]
            barrier = threading.Barrier(clients + 1)

            def stream(shard: int, client: MonitorClient) -> None:
                barrier.wait()
                replay_trace(client, trace, shard, clients)
                client.stats()  # per-client applied barrier

            threads = [
                threading.Thread(target=stream, args=(s, c))
                for s, c in enumerate(conns)
            ]
            for t in threads:
                t.start()
            barrier.wait()
            t0 = time.perf_counter()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - t0
            stats = conns[0].stats()
            assert stats["events_applied"] == total, (
                f"applied {stats['events_applied']} of {total} events"
            )
            best = min(best, elapsed)
            for c in conns:
                c.close()
        finally:
            handle.stop()
    return {
        "nodes": nodes,
        "events": total,
        "clients": clients,
        "chunk": chunk,
        "closes": stats["closes_applied"],
        "ingest_ms": best * 1e3,
        "events_per_sec": total / best,
        "throttles": stats["throttles"],
        "queued_peak": max(s["queued_peak"] for s in stats["shards"]),
        "clock_passes": stats["clock_passes"],
    }


def test_service_ingest_smoke():
    """Smoke-sized run of the exact measured surface: the rate is
    positive, every event lands, and ingest stays streaming (zero
    offline clock passes)."""
    result = run_service_ingest(
        nodes=4, events_per_node=40, clients=2, chunk=20, reps=1
    )
    assert result["events_per_sec"] > 0
    assert result["events"] == 4 * 40
    assert result["clock_passes"] == {
        "forward": 0, "reverse": 0, "extend": 0,
    }


if __name__ == "__main__":
    print(run_service_ingest(nodes=8, events_per_node=1250, clients=4,
                             chunk=125))
