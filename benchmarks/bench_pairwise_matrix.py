"""Vectorised all-pairs evaluation vs the scalar per-pair loop.

Not a paper experiment — an engineering extension exercised by the
mutual-exclusion verifier: answering one relation for all k² interval
pairs through NumPy broadcasting vs k² linear-engine calls.  Expected
shape: same answers, with the matrix path ahead by 1–2 orders of
magnitude once k² dominates Python call overhead.
"""

from repro.apps.mutex import MutualExclusionChecker, token_mutex_trace
from repro.core.linear import LinearEvaluator
from repro.core.pairwise import IntervalSetMatrices
from repro.core.relations import Relation
from repro.simulation.workloads import random_execution

from .common import random_intervals

K = 40
EX = random_execution(8, events_per_node=30, msg_prob=0.3, seed=33)
INTERVALS = random_intervals(EX, K, events_per_node=2, seed=14)


def test_scalar_loop(benchmark):
    lin = LinearEvaluator(EX)
    IntervalSetMatrices(INTERVALS)  # warm cut caches for parity

    def run():
        return [
            lin.evaluate(Relation.R4, x, y)
            for x in INTERVALS
            for y in INTERVALS
            if x is not y
        ]

    benchmark(run)


def test_vectorised_matrix(benchmark):
    mats = IntervalSetMatrices(INTERVALS)
    m = benchmark(lambda: mats.relation_matrix(Relation.R4))
    # cross-check a sample against the scalar engine
    lin = LinearEvaluator(EX)
    for i in range(0, K, 7):
        for j in range(0, K, 7):
            if i != j:
                assert bool(m[i, j]) == lin.evaluate(
                    Relation.R4, INTERVALS[i], INTERVALS[j]
                )


def test_vectorised_including_setup(benchmark):
    """Matrix path with the stacking cost included (cold start)."""
    benchmark(
        lambda: IntervalSetMatrices(INTERVALS).relation_matrix(Relation.R4)
    )


class TestMutexVerifier:
    def test_scalar_checker(self, benchmark):
        ex, _ = token_mutex_trace(6, occupancies=20, replicas=2, seed=2)
        checker = MutualExclusionChecker(ex)
        result = benchmark(checker.check)
        assert result == []

    def test_vectorised_checker(self, benchmark):
        ex, _ = token_mutex_trace(6, occupancies=20, replicas=2, seed=2)
        checker = MutualExclusionChecker(ex)
        result = benchmark(checker.check_vectorised)
        assert result == []
