"""Wall-clock smoke for the linter: the project phase must stay cheap.

The whole-program phase (symbol index + call graph + REP007-REP009)
runs in CI on every push, so its cost is a tax on every contributor.
This benchmark times both phases over the real ``src`` tree and fails
if the project pass blows its budget — catching an accidentally
quadratic resolution step before it lands.

Usage::

    python benchmarks/bench_lint.py           # 3 repeats, best-of
    python benchmarks/bench_lint.py --quick   # 1 repeat (CI smoke)
    python benchmarks/bench_lint.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Seconds allowed for one full run over ``src`` (generous: the
#: measured pass is well under 2s on a cold 1-core container).
PROJECT_BUDGET_S = 20.0
PER_FILE_BUDGET_S = 10.0


def _time_pass(paths: list[Path], *, project: bool, repeats: int) -> tuple[float, int]:
    from repro.lint import run_paths

    best = float("inf")
    count = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        findings = run_paths(paths, project=project)
        best = min(best, time.perf_counter() - t0)
        count = len(findings)
    return best, count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="single repeat (CI smoke)"
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write timings to a JSON file"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    src = REPO / "src"
    repeats = 1 if args.quick else 3

    per_file_s, per_file_n = _time_pass([src], project=False, repeats=repeats)
    project_s, project_n = _time_pass([src], project=True, repeats=repeats)
    graph_s = project_s - per_file_s

    report = {
        "repeats": repeats,
        "per_file_s": round(per_file_s, 4),
        "project_s": round(project_s, 4),
        "graph_overhead_s": round(graph_s, 4),
        "per_file_findings": per_file_n,
        "project_findings": project_n,
        "per_file_budget_s": PER_FILE_BUDGET_S,
        "project_budget_s": PROJECT_BUDGET_S,
    }
    print(
        f"lint per-file pass: {per_file_s:.3f}s  "
        f"(+graph {graph_s:.3f}s -> project {project_s:.3f}s, "
        f"budget {PROJECT_BUDGET_S:.0f}s)"
    )
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")

    ok = per_file_s <= PER_FILE_BUDGET_S and project_s <= PROJECT_BUDGET_S
    if not ok:
        print(
            f"FAIL: lint pass over budget "
            f"(per-file {per_file_s:.2f}s/{PER_FILE_BUDGET_S:.0f}s, "
            f"project {project_s:.2f}s/{PROJECT_BUDGET_S:.0f}s)",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
