"""Parallel batch executor vs the serial planner on large query sets.

Not a paper experiment — the scaling extension for "millions of users"
workloads: :class:`~repro.core.parallel.ParallelBatchExecutor` shards a
``batch_holds`` query set across worker processes that map the columnar
clock matrices zero-copy from shared memory.  Expected shape: identical
verdicts always; wall-clock ahead of the serial planner once the batch
is large enough to amortize pool dispatch, approaching the worker count
on unloaded multi-core hosts.

The >= 3x speedup assertion is gated on ``os.cpu_count() >= 4``: a
process pool cannot beat the serial planner without cores to run on,
and this harness must stay honest on constrained CI boxes.  The
measured numbers are always recorded in ``extra_info`` (and surfaced by
``scripts/bench_report.py``) either way.
"""

import os

import pytest

from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.parallel import ParallelBatchExecutor
from repro.core.relations import parse_spec
from repro.events.poset import Execution
from repro.simulation.workloads import random_trace

from .common import best_of, disjoint_intervals

JOBS = 4
EX = Execution(random_trace(16, events_per_node=64, msg_prob=0.3, seed=11))
INTERVALS = disjoint_intervals(EX, 128)
SPEC = parse_spec("R1(U,L)")
#: all ordered pairs of 128 disjoint intervals: 16256 queries (>= 10k)
QUERIES = [(SPEC, x, y) for x in INTERVALS for y in INTERVALS if x is not y]


@pytest.fixture(scope="module")
def executor():
    ex = ParallelBatchExecutor(EX, jobs=JOBS, min_parallel=1)
    yield ex
    ex.close()


def test_parallel_matches_serial_planner(executor, benchmark):
    """Verdict equality on the full 16k-query batch, plus the speedup
    measurement (asserted only when the host has >= 4 cores)."""
    an = SynchronizationAnalyzer(EX, check_disjoint=False)
    an.batch_holds(QUERIES)  # warm the serial planner's caches
    executor.execute(QUERIES[:64])  # spin up pool + shared memory

    serial_t, serial = best_of(lambda: an.batch_holds(QUERIES), reps=3)
    parallel_t, parallel = best_of(lambda: executor.execute(QUERIES), reps=3)

    assert parallel == serial  # identical verdicts, always

    speedup = serial_t / parallel_t
    cores = os.cpu_count() or 1
    print(
        f"\nparallel batch: {len(QUERIES)} queries, jobs={JOBS} on "
        f"{cores} cores -> serial {serial_t * 1e3:.1f} ms, parallel "
        f"{parallel_t * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    benchmark.extra_info["num_queries"] = len(QUERIES)
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["serial_ms"] = serial_t * 1e3
    benchmark.extra_info["parallel_ms"] = parallel_t * 1e3
    benchmark.extra_info["speedup"] = speedup
    if cores >= JOBS:
        assert speedup >= 3.0, (
            f"parallel executor only {speedup:.2f}x on {cores} cores"
        )
    benchmark(lambda: executor.execute(QUERIES))


def test_serial_fallback_below_threshold(benchmark):
    """Batches under ``min_parallel`` never pay pool/publication cost."""
    ex = ParallelBatchExecutor(EX, jobs=JOBS, min_parallel=10**6)
    try:
        verdicts = ex.execute(QUERIES[:512])
        assert ex._resources["pool"] is None  # nothing was spun up
        an = SynchronizationAnalyzer(EX, check_disjoint=False)
        assert verdicts == an.batch_holds(QUERIES[:512])
        benchmark(lambda: ex.execute(QUERIES[:512]))
    finally:
        ex.close()


def test_worker_shard_kernel(executor, benchmark):
    """Steady-state per-dispatch cost with pool and caches warm."""
    executor.execute(QUERIES[:2048])
    benchmark(lambda: executor.execute(QUERIES[:2048]))
