"""Substrate benchmarks: simulator throughput, clock passes, online
monitor ingestion.

Not paper experiments — capacity characterisation of the layers the
experiments stand on, so regressions in the substrate are visible.
"""


from repro.events.clocks import compute_forward_clocks, compute_reverse_clocks
from repro.events.poset import Execution
from repro.monitor.online import OnlineMonitor
from repro.simulation.engine import simulate
from repro.simulation.network import Network, UniformLatency
from repro.simulation.process import Process
from repro.simulation.workloads import random_trace


class _Gossip(Process):
    def __init__(self, rounds: int) -> None:
        self.rounds = rounds

    def on_start(self, ctx):
        ctx.set_timer(0.1, tag=0)

    def on_timer(self, ctx, tag):
        dst = (ctx.node + 1 + int(ctx.rng.integers(0, ctx.num_nodes - 1))) \
            % ctx.num_nodes
        ctx.send(dst, payload=tag)
        if tag + 1 < self.rounds:
            ctx.set_timer(1.0, tag=tag + 1)

    def on_message(self, ctx, payload, label, src):
        ctx.internal()


def test_simulator_throughput(benchmark):
    """Events simulated per second on a gossip workload."""

    def run():
        return simulate(
            [_Gossip(20) for _ in range(8)],
            network=Network(UniformLatency(0.2, 2.0)),
            seed=4,
        )

    result = benchmark(run)
    benchmark.extra_info["events"] = result.trace.total_events
    assert result.trace.total_events > 100


TRACE = random_trace(16, events_per_node=50, msg_prob=0.35, seed=10)


def test_forward_clock_pass(benchmark):
    benchmark(lambda: compute_forward_clocks(TRACE))


def test_reverse_clock_pass(benchmark):
    benchmark(lambda: compute_reverse_clocks(TRACE))


def test_full_execution_analysis(benchmark):
    benchmark(lambda: Execution(TRACE))


def test_online_ingestion(benchmark):
    """Streaming a whole trace through the online monitor."""

    def run():
        om = OnlineMonitor(TRACE.num_nodes)
        pos = [0] * TRACE.num_nodes
        handles = {}
        progressed = True
        while progressed:
            progressed = False
            for node in range(TRACE.num_nodes):
                while pos[node] < TRACE.num_real(node):
                    ev = TRACE.events_of(node)[pos[node]]
                    send = TRACE.send_of(ev.eid)
                    if send is not None and send not in handles:
                        break
                    if ev.kind.name == "SEND":
                        handles[ev.eid] = om.send(node)
                    elif ev.kind.name == "RECV":
                        om.recv(node, handles[send])
                    else:
                        om.internal(node)
                    pos[node] += 1
                    progressed = True
        return om

    benchmark(run)
