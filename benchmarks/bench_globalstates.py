"""Global-state lattice enumeration vs conjunctive fast-path detection.

Engineering extension behind the [11] predicate-specification use
case: the Cooper–Marzullo sweep's cost tracks the (potentially
exponential) lattice size, while the Garg–Waldecker fast path stays
linear in the trace — the expected shape this module measures.
"""

import pytest

from repro.globalstates import (
    GlobalStateLattice,
    possibly,
    possibly_conjunctive,
)
from repro.simulation.workloads import random_execution

SIZES = [(2, 8), (3, 8), (4, 8)]


def _workload(num_nodes, events):
    ex = random_execution(num_nodes, events_per_node=events,
                          msg_prob=0.35, seed=num_nodes)
    locals_ = {
        n: (lambda n_, i, t=events // 2: i >= t) for n in range(num_nodes)
    }
    return ex, locals_


@pytest.mark.parametrize("num_nodes,events", SIZES,
                         ids=lambda v: str(v))
def test_lattice_enumeration(benchmark, num_nodes, events):
    ex, _ = _workload(num_nodes, events)
    lattice = GlobalStateLattice(ex, limit=2_000_000)
    size = benchmark(lattice.count)
    benchmark.extra_info["lattice_size"] = size


@pytest.mark.parametrize("num_nodes,events", SIZES,
                         ids=lambda v: str(v))
def test_possibly_sweep(benchmark, num_nodes, events):
    ex, locals_ = _workload(num_nodes, events)

    def phi(state):
        return all(p(n, state[n]) for n, p in locals_.items())

    benchmark(lambda: possibly(ex, phi, limit=2_000_000))


@pytest.mark.parametrize("num_nodes,events", SIZES,
                         ids=lambda v: str(v))
def test_possibly_conjunctive_fast_path(benchmark, num_nodes, events):
    ex, locals_ = _workload(num_nodes, events)
    fast = benchmark(lambda: possibly_conjunctive(ex, locals_))

    def phi(state):
        return all(p(n, state[n]) for n, p in locals_.items())

    assert fast == possibly(ex, phi, limit=2_000_000)
