"""F-1/F-2/F-3 — regenerating the paper's figures.

Benchmarks the scripted figure reconstructions end-to-end (execution,
interval, cuts, proxies) and asserts their structural invariants — the
machine-checkable content of the drawings.
"""


from repro.simulation.scenarios import figure1, figure2, figure3
from repro.viz.spacetime import render


def test_figure1_construction(benchmark):
    fig = benchmark(figure1)
    assert fig.x.node_set == (0, 1, 2)
    assert fig.y.node_set == (1, 2, 3)


def test_figure2_construction(benchmark):
    fig = benchmark(figure2)
    assert len(fig.x) == 8
    assert fig.cuts.c1.issubset(fig.cuts.c2)
    assert fig.cuts.c3.issubset(fig.cuts.c4)


def test_figure3_construction(benchmark):
    fig = benchmark(figure3)
    assert fig.cuts_lx.c1 == fig.cuts_x.c1
    assert fig.cuts_ux.c4 == fig.cuts_x.c4


def test_figure2_render(benchmark):
    fig = figure2()
    out = benchmark(
        lambda: render(
            fig.execution,
            intervals={"X": fig.x},
            cuts={
                "C1": fig.cuts.c1,
                "C2": fig.cuts.c2,
                "C3": fig.cuts.c3,
                "C4": fig.cuts.c4,
            },
        )
    )
    assert out.count("X") == 8
