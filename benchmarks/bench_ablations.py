"""Ablations A-1 … A-4: the design choices DESIGN.md calls out.

A-1  Key Idea 1 — reuse precomputed cuts vs recompute per query.
A-2  Key Idea 2 — restricted ``≪̸`` scans vs full-|P| scans.
A-3  hierarchy pruning when evaluating all 32 relations.
A-4  Definition-2 vs Definition-3 proxies.
"""

import pytest

from repro.core.cuts import cuts_of
from repro.core.evaluator import SynchronizationAnalyzer
from repro.core.linear import LinearEvaluator
from repro.core.relations import BASE_RELATIONS
from repro.nonatomic.proxies import ProxyDefinition

from .conftest import fresh_intervals, make_pair


# ----------------------------------------------------------------------
# A-1: cut reuse
# ----------------------------------------------------------------------
class TestAblationCutReuse:
    def test_with_reuse(self, benchmark, medium_workload):
        ex, pairs = medium_workload
        ev = LinearEvaluator(ex)
        for x, y in pairs:
            cuts_of(x), cuts_of(y)

        def run():
            return [
                ev.evaluate(rel, x, y)
                for x, y in pairs
                for rel in BASE_RELATIONS
            ]

        benchmark(run)

    def test_without_reuse(self, benchmark, medium_workload):
        ex, pairs = medium_workload
        ev = LinearEvaluator(ex)

        def run():
            out = []
            for x, y in pairs:
                fx, fy = fresh_intervals(x), fresh_intervals(y)
                out.extend(ev.evaluate(rel, fx, fy) for rel in BASE_RELATIONS)
            return out

        benchmark(run)


# ----------------------------------------------------------------------
# A-2: Key Idea 2 node restriction
# ----------------------------------------------------------------------
class TestAblationKeyIdea2:
    @pytest.mark.parametrize("restricted", [True, False],
                             ids=["restricted", "full-P"])
    def test_scan_mode(self, benchmark, restricted):
        ex, x, y = make_pair(64, events_per_node=4, seed=13, spread=4)
        ev = LinearEvaluator(ex, node_restriction=restricted)
        ref = LinearEvaluator(ex)
        cuts_of(x), cuts_of(y)
        for rel in BASE_RELATIONS:  # answers identical either way
            assert ev.evaluate(rel, x, y) == ref.evaluate(rel, x, y)

        def run():
            return [ev.evaluate(rel, x, y) for rel in BASE_RELATIONS]

        benchmark(run)


# ----------------------------------------------------------------------
# A-3: hierarchy pruning
# ----------------------------------------------------------------------
class TestAblationHierarchy:
    @pytest.mark.parametrize("prune", [False, True], ids=["exhaustive", "pruned"])
    def test_batch_mode(self, benchmark, prune):
        ex, x, y = make_pair(12, events_per_node=8, seed=17)
        an = SynchronizationAnalyzer(ex)
        an.all_relations(x, y)  # warm cuts
        benchmark(lambda: an.all_relations(x, y, prune=prune))


# ----------------------------------------------------------------------
# A-4: proxy definition
# ----------------------------------------------------------------------
class TestAblationProxyDefinition:
    def test_def2_per_node(self, benchmark):
        ex, x, y = make_pair(8, events_per_node=8, seed=19)
        an = SynchronizationAnalyzer(
            ex, proxy_definition=ProxyDefinition.PER_NODE
        )
        benchmark(lambda: an.all_relations(x, y))

    def test_def3_global_where_defined(self, benchmark):
        """Definition-3 proxies on a totally ordered interval (the case
        where they exist): a pipeline item's per-stage events."""
        from repro.events.poset import Execution
        from repro.nonatomic.selection import by_label_prefix
        from repro.simulation.workloads import pipeline_trace

        ex = Execution(pipeline_trace(6, items=2))
        items = by_label_prefix(ex, "item")
        x, y = items["item0"], items["item1"]
        an = SynchronizationAnalyzer(
            ex, proxy_definition=ProxyDefinition.GLOBAL
        )
        result = benchmark(lambda: an.all_relations(x, y))
        assert len(result) == 32
