"""Distributed mutual exclusion verification.

[11] demonstrates the use of the synchronization relations in
*distributed mutual exclusion*: each occupancy of a (possibly
replicated) critical section is a nonatomic event — the set of
lock-hold events across every replica node — and safety demands that
two occupancies never causally interleave.

In relation terms, occupancies X and Y are safely serialised iff one
completely precedes the other through its proxies:

    ``R1(U,L)(X, Y)  or  R1(U,L)(Y, X)``

i.e. the *end* proxy of one occupancy happens before the *begin* proxy
of the other on every node pair.  :class:`MutualExclusionChecker`
verifies this for every pair of occupancies in a trace; a
token-ring-based workload generator produces correct executions, with
an optional fault injection that violates exclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.evaluator import SynchronizationAnalyzer
from ..core.relations import Relation, RelationSpec
from ..events.builder import TraceBuilder
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import Proxy
from ..nonatomic.selection import by_label_prefix

__all__ = [
    "ExclusionViolation",
    "MutualExclusionChecker",
    "token_mutex_trace",
]

_R1_UL = RelationSpec(Relation.R1, Proxy.U, Proxy.L)


@dataclass(frozen=True, slots=True)
class ExclusionViolation:
    """Two critical-section occupancies that causally interleave."""

    first: NonatomicEvent
    second: NonatomicEvent

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"occupancies {self.first.name!r} and {self.second.name!r} "
            "are not serialised"
        )


class MutualExclusionChecker:
    """Check pairwise serialisation of critical-section occupancies.

    Parameters
    ----------
    execution:
        The recorded execution.
    engine:
        Relation engine to use (default: the paper's linear evaluator).
    """

    def __init__(self, execution: Execution, engine: str = "linear") -> None:
        from ..core.context import AnalysisContext

        self.execution = execution
        self.context = AnalysisContext.of(execution)
        self.analyzer = SynchronizationAnalyzer(self.context, engine=engine)

    def occupancies(self, prefix: str = "cs:") -> dict[str, NonatomicEvent]:
        """Collect occupancies: one interval per distinct ``prefix``
        label in the trace."""
        return by_label_prefix(self.execution, prefix)

    def serialised(self, x: NonatomicEvent, y: NonatomicEvent) -> bool:
        """True iff X wholly precedes Y or Y wholly precedes X
        (``R1(U,L)`` one way or the other)."""
        return self.analyzer.holds(_R1_UL, x, y) or self.analyzer.holds(
            _R1_UL, y, x
        )

    def check(self, prefix: str = "cs:") -> list[ExclusionViolation]:
        """All violating occupancy pairs (empty = exclusion holds).

        The 2·C(k,2) ``R1(U,L)`` queries are answered through
        :meth:`SynchronizationAnalyzer.batch_holds`, which stacks the
        occupancies' cut timestamps once and broadcasts — the planner's
        canonical workload.
        """
        occs = sorted(self.occupancies(prefix).values(), key=lambda o: o.name or "")
        pairs = [
            (occs[i], occs[j])
            for i in range(len(occs))
            for j in range(i + 1, len(occs))
        ]
        queries = [(_R1_UL, x, y) for x, y in pairs]
        queries += [(_R1_UL, y, x) for x, y in pairs]
        answers = self.analyzer.batch_holds(queries)
        n = len(pairs)
        return [
            ExclusionViolation(x, y)
            for i, (x, y) in enumerate(pairs)
            if not (answers[i] or answers[n + i])
        ]

    def check_vectorised(self, prefix: str = "cs:") -> list[ExclusionViolation]:
        """Same verdicts as :meth:`check` via one all-pairs matrix.

        Builds the ``R1(U,L)`` matrix over all occupancies with
        :mod:`repro.core.pairwise` (one NumPy broadcast instead of k²
        engine calls) — the fast path for large occupancy counts.
        """
        occs = sorted(self.occupancies(prefix).values(), key=lambda o: o.name or "")
        if len(occs) < 2:
            return []
        m = self.context.matrices(occs).spec_matrix(_R1_UL)
        serialised = m | m.T
        violations: list[ExclusionViolation] = []
        for i in range(len(occs)):
            for j in range(i + 1, len(occs)):
                if not serialised[i, j]:
                    violations.append(ExclusionViolation(occs[i], occs[j]))
        return violations


def token_mutex_trace(
    num_nodes: int,
    occupancies: int = 4,
    replicas: int = 2,
    violate: bool = False,
    seed: int | np.random.Generator = 0,
) -> tuple[Execution, dict[str, NonatomicEvent]]:
    """Token-based mutual exclusion over a replicated resource.

    A token circulates; the holder of occupancy ``j`` performs
    lock-hold events (labelled ``f"cs:{j}"``) on its own node and on
    ``replicas - 1`` replica nodes (reached by request/ack messages
    inside the occupancy), then passes the token on.  With
    ``violate=True``, the final occupancy starts *without* waiting for
    the token — a race that breaks serialisation and is caught by
    :class:`MutualExclusionChecker`.

    Returns the analysed execution and the occupancy intervals.
    """
    if num_nodes < 2 or replicas < 1 or replicas > num_nodes:
        raise ValueError("need num_nodes >= 2 and 1 <= replicas <= num_nodes")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    b = TraceBuilder(num_nodes)
    t = 0.0
    token = None
    holders = [int(rng.integers(0, num_nodes)) for _ in range(occupancies)]
    if violate and len(holders) >= 2 and holders[-1] == holders[-2]:
        # the race is only observable when the offending occupancy runs
        # on a different node (program order would serialise it otherwise)
        holders[-1] = (holders[-2] + 1) % num_nodes
    for j, holder in enumerate(holders):
        label = f"cs:{j}"
        last_occupancy = j == len(holders) - 1
        if token is not None and not (violate and last_occupancy):
            t += 1.0
            b.recv(holder, token, label="token", time=t)
        # lock-hold on the holder's own node
        t += 1.0
        b.internal(holder, label=label, time=t)
        # touch replica nodes inside the occupancy
        others = [n for n in range(num_nodes) if n != holder]
        rng.shuffle(others)
        for rep in others[: replicas - 1]:
            t += 1.0
            req = b.send(holder, label="lock-req", time=t)
            t += 1.0
            b.recv(rep, req, label=label, time=t)
            t += 1.0
            ack = b.send(rep, label=label, time=t)
            t += 1.0
            b.recv(holder, ack, label="lock-ack", time=t)
        t += 1.0
        b.internal(holder, label=label, time=t)  # unlock marker
        t += 1.0
        token = b.send(holder, label="token", time=t)
    ex = b.execute()
    return ex, by_label_prefix(ex, "cs:")
