"""Air-defence coordination scenario.

[11] motivates the relation family with a real-time *air defence
control system*: radar sites jointly observe a track, a fusion centre
confirms it, and interceptor batteries launch.  The safety-critical
synchronization conditions are naturally fine-grained relation
conditions between nonatomic events:

* ``detection`` — the radar plots across all sites observing the track;
* ``confirmation`` — the fusion centre's correlate/confirm processing;
* ``launch_i`` — battery *i*'s arming and firing sequence.

Required conditions (checked by :meth:`AirDefenseScenario.check`):

1. *confirmed-after-detected*: confirmation begins only after at least
   one radar plot — ``R3'(detection, confirmation)`` (every
   confirmation event follows some detection event);
2. *launch-after-confirmation*: every launch event follows the entire
   confirmation — ``R1(U,L)(confirmation, launch_i)``;
3. *no premature launch*: no launch event precedes any detection event
   — ``not R4(launch_i, detection)``.

:func:`air_defense_scenario` builds the execution with the
discrete-event simulator (radars emit periodic plots; fusion confirms
after a quorum; batteries fire on command), with an optional fault that
makes one battery fire on a stale cue before confirmation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.evaluator import SynchronizationAnalyzer
from ..events.poset import Execution
from ..monitor.checker import CheckReport, ConditionChecker
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.selection import by_label
from ..simulation.engine import simulate
from ..simulation.network import ConstantLatency, Network
from ..simulation.process import Context, Process

__all__ = ["AirDefenseScenario", "air_defense_scenario"]


class _Radar(Process):
    """Emits ``plots`` radar plots, each reported to the fusion centre."""

    def __init__(self, fusion: int, plots: int) -> None:
        self.fusion = fusion
        self.plots = plots

    def on_start(self, ctx: Context) -> None:
        ctx.set_timer(0.5 + 0.1 * ctx.node, tag=0)

    def on_timer(self, ctx: Context, tag: int) -> None:
        ctx.internal(label="detect", payload={"plot": tag})
        ctx.send(self.fusion, payload={"plot": tag}, label="report")
        if tag + 1 < self.plots:
            ctx.set_timer(1.0, tag=tag + 1)


class _Fusion(Process):
    """Confirms the track after a quorum of plots, then commands fire."""

    def __init__(self, quorum: int, batteries: tuple[int, ...]) -> None:
        self.quorum = quorum
        self.batteries = batteries
        self.reports = 0
        self.confirmed = False

    def on_message(self, ctx: Context, payload, label, src) -> None:
        if label != "report" or self.confirmed:
            return
        self.reports += 1
        ctx.internal(label="correlate")
        if self.reports >= self.quorum:
            self.confirmed = True
            ctx.internal(label="confirm")
            for bat in self.batteries:
                ctx.send(bat, label="fire-cmd")


class _Battery(Process):
    """Arms and fires on command; optionally fires early on a stale cue."""

    def __init__(self, premature: bool = False) -> None:
        self.premature = premature
        self.fired = False

    def on_start(self, ctx: Context) -> None:
        if self.premature:
            # fault: fires at t=0.1 on a stale cue, before any command
            ctx.set_timer(0.1, tag="stale-cue")

    def on_timer(self, ctx: Context, tag) -> None:
        if tag == "stale-cue" and not self.fired:
            self._fire(ctx)

    def on_message(self, ctx: Context, payload, label, src) -> None:
        if label == "fire-cmd" and not self.fired:
            self._fire(ctx)

    def _fire(self, ctx: Context) -> None:
        self.fired = True
        ctx.internal(label="arm")
        ctx.internal(label="launch")


@dataclass(frozen=True, slots=True)
class AirDefenseScenario:
    """A built air-defence execution with its named intervals."""

    execution: Execution
    detection: NonatomicEvent
    confirmation: NonatomicEvent
    launches: tuple[NonatomicEvent, ...]

    def bindings(self) -> dict[str, NonatomicEvent]:
        """Interval bindings for the condition checker."""
        out = {"detection": self.detection, "confirmation": self.confirmation}
        for i, l in enumerate(self.launches):
            out[f"launch{i}"] = l
        return out

    def conditions(self) -> dict[str, str]:
        """The scenario's safety conditions (textual specs)."""
        conds = {
            "confirmed-after-detected": "R3'(detection, confirmation)",
        }
        for i in range(len(self.launches)):
            conds[f"launch{i}-after-confirmation"] = (
                f"R1(U,L)(confirmation, launch{i})"
            )
            conds[f"launch{i}-not-premature"] = f"not R4(launch{i}, detection)"
        return conds

    @property
    def context(self):
        """The scenario's shared analysis context (one cut cache)."""
        from ..core.context import AnalysisContext

        return AnalysisContext.of(self.execution)

    def check(self, engine: str = "linear") -> dict[str, CheckReport]:
        """Evaluate every safety condition; returns per-condition reports.

        All engines (and repeat checks) share the scenario's context,
        so each interval's cut fold is paid once across the run.
        """
        checker = ConditionChecker(
            SynchronizationAnalyzer(self.context, engine=engine)
        )
        return checker.check_all(self.conditions(), self.bindings())

    def all_safe(self, engine: str = "linear") -> bool:
        """True iff every safety condition passes."""
        return all(r.passed for r in self.check(engine).values())


def air_defense_scenario(
    num_radars: int = 3,
    num_batteries: int = 2,
    plots_per_radar: int = 2,
    quorum: int | None = None,
    premature_battery: int | None = None,
    seed: int = 0,
) -> AirDefenseScenario:
    """Simulate the air-defence engagement and collect its intervals.

    Node layout: radars ``0..R-1``, fusion centre ``R``, batteries
    ``R+1..R+B``.  ``premature_battery`` (an index in ``0..B-1``)
    injects the early-launch fault, making conditions 2 and 3 fail for
    that battery.
    """
    if num_radars < 1 or num_batteries < 1:
        raise ValueError("need >= 1 radar and >= 1 battery")
    quorum = quorum if quorum is not None else num_radars
    if quorum > num_radars * plots_per_radar:
        raise ValueError(
            f"quorum={quorum} can never be reached with "
            f"{num_radars} radars x {plots_per_radar} plots"
        )
    fusion = num_radars
    batteries = tuple(fusion + 1 + i for i in range(num_batteries))
    processes: list[Process] = [
        _Radar(fusion, plots_per_radar) for _ in range(num_radars)
    ]
    processes.append(_Fusion(quorum, batteries))
    processes.extend(
        _Battery(premature=(premature_battery == i)) for i in range(num_batteries)
    )
    result = simulate(
        processes, network=Network(ConstantLatency(0.3)), seed=seed
    )
    ex = result.execute()
    detection = by_label(ex, "detect", name="detection")
    confirm_ids = [
        ev.eid for ev in ex.trace.iter_events()
        if ev.label in ("correlate", "confirm")
    ]
    confirmation = NonatomicEvent(ex, confirm_ids, name="confirmation")
    launches = []
    for i, bat in enumerate(batteries):
        ids = [
            ev.eid
            for ev in ex.trace.events_of(bat)
            if ev.label in ("arm", "launch")
        ]
        launches.append(NonatomicEvent(ex, ids, name=f"launch{i}"))
    return AirDefenseScenario(
        execution=ex,
        detection=detection,
        confirmation=confirmation,
        launches=tuple(launches),
    )
