"""Worked application layers from the paper's motivating domains."""

from .airdefense import AirDefenseScenario, air_defense_scenario
from .mobile import RoamingScenario, roaming_scenario
from .multimedia import StreamSyncChecker, SyncViolation, stream_trace
from .mutex import ExclusionViolation, MutualExclusionChecker, token_mutex_trace
from .process_control import ControlLoop, control_loop

__all__ = [
    "MutualExclusionChecker",
    "ExclusionViolation",
    "token_mutex_trace",
    "StreamSyncChecker",
    "SyncViolation",
    "stream_trace",
    "AirDefenseScenario",
    "air_defense_scenario",
    "ControlLoop",
    "control_loop",
    "RoamingScenario",
    "roaming_scenario",
]
