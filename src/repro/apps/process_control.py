"""Industrial process-control loop verification.

The paper's first motivating domain is *industrial process control*:
periodic sensor → controller → actuator rounds with relative timing
constraints between rounds.  Each phase of each period is a nonatomic
event (samples occur on all sensor nodes; actuations on all actuator
nodes), and the loop invariants are relation conditions:

1. *causal round* — actuation of period ``p`` follows the entire
   sample set of period ``p``: ``R1(U,L)(sample_p, apply_p)``;
2. *freshness* — actuation of period ``p`` must not be causally ahead
   of period ``p+1``'s samples finishing everywhere, i.e. period
   ``p+1`` samples never precede period ``p`` actuation:
   ``not R4(apply_{p+1}, sample_{p+1})`` would be vacuous — instead we
   require ordering of consecutive rounds:
   ``R1(U,L)(apply_p, apply_{p+1})``;
3. *no stale actuation* — period ``p``'s actuation does not follow
   period ``p+1``'s samples: ``not R4(sample_{p+1}, apply_p)``.

The workload is :func:`repro.simulation.workloads.layered_trace`; this
module wraps it with interval extraction and checking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.evaluator import SynchronizationAnalyzer
from ..events.poset import Execution
from ..monitor.checker import CheckReport, ConditionChecker
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.selection import by_label
from ..simulation.workloads import layered_trace

__all__ = ["ControlLoop", "control_loop"]


@dataclass(frozen=True, slots=True)
class ControlLoop:
    """An analysed control-loop execution with per-period intervals."""

    execution: Execution
    periods: int
    samples: tuple[NonatomicEvent, ...]
    applies: tuple[NonatomicEvent, ...]

    def bindings(self) -> dict[str, NonatomicEvent]:
        """Named intervals for the condition checker."""
        out: dict[str, NonatomicEvent] = {}
        for p in range(self.periods):
            out[f"sample{p}"] = self.samples[p]
            out[f"apply{p}"] = self.applies[p]
        return out

    def conditions(self) -> dict[str, str]:
        """The loop's invariants as textual specs."""
        conds: dict[str, str] = {}
        for p in range(self.periods):
            conds[f"round{p}-causal"] = f"R1(U,L)(sample{p}, apply{p})"
        for p in range(self.periods - 1):
            conds[f"round{p}-ordered"] = f"R1(U,L)(apply{p}, apply{p + 1})"
            conds[f"round{p}-fresh"] = f"not R4(sample{p + 1}, apply{p})"
        return conds

    @property
    def context(self):
        """The loop's shared analysis context (one cut cache)."""
        from ..core.context import AnalysisContext

        return AnalysisContext.of(self.execution)

    def check(self, engine: str = "linear") -> dict[str, CheckReport]:
        """Evaluate every invariant (cuts shared through the context)."""
        checker = ConditionChecker(
            SynchronizationAnalyzer(self.context, engine=engine)
        )
        return checker.check_all(self.conditions(), self.bindings())

    def all_safe(self, engine: str = "linear") -> bool:
        """True iff every invariant passes."""
        return all(r.passed for r in self.check(engine).values())


def control_loop(
    num_sensors: int = 3,
    num_actuators: int = 2,
    periods: int = 4,
) -> ControlLoop:
    """Build and analyse a periodic control loop execution."""
    ex = Execution(layered_trace(num_sensors, num_actuators, periods))
    samples = tuple(
        by_label(ex, f"sample{p}", name=f"sample{p}") for p in range(periods)
    )
    applies = tuple(
        by_label(ex, f"apply{p}", name=f"apply{p}") for p in range(periods)
    )
    return ControlLoop(
        execution=ex, periods=periods, samples=samples, applies=applies
    )
