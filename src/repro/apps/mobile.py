"""Mobile-computing handoff coordination.

Another of the paper's motivating domains: *coordination in mobile
computing*.  A mobile host roams between base stations; each **handoff**
is a nonatomic event spanning three nodes (old station, new station,
and the mobile's home agent that reroutes traffic).  Correctness of a
roaming trace is a set of relation conditions:

1. *handoffs are serialised* — handoff ``k`` completes everywhere
   before handoff ``k+1`` begins: ``R1(U,L)(h_k, h_{k+1})``;
2. *no data before reroute* — the home agent's reroute of handoff
   ``k`` precedes every data delivery of epoch ``k+1``:
   ``R1(U,L)(reroute_k, epoch_{k+1})``;
3. *data continuity* — every epoch's deliveries causally follow the
   session setup: ``R3'(setup, epoch_k)``.

:func:`roaming_scenario` builds the trace with the simulator; with
``premature_data=True`` the new station starts forwarding data before
the home agent's reroute acknowledgement — condition 2 then fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.evaluator import SynchronizationAnalyzer
from ..events.builder import TraceBuilder
from ..events.poset import Execution
from ..monitor.checker import CheckReport, ConditionChecker
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.selection import by_label

__all__ = ["RoamingScenario", "roaming_scenario"]

#: node roles: 0 = home agent, 1.. = base stations
HOME = 0


@dataclass(frozen=True, slots=True)
class RoamingScenario:
    """A built roaming execution with its named intervals."""

    execution: Execution
    setup: NonatomicEvent
    handoffs: tuple[NonatomicEvent, ...]  # station-side handoff steps
    reroutes: tuple[NonatomicEvent, ...]  # home-agent reroute steps
    epochs: tuple[NonatomicEvent, ...]  # data deliveries per residency

    def bindings(self) -> dict[str, NonatomicEvent]:
        """Interval bindings for the condition checker."""
        out = {"setup": self.setup}
        for k, h in enumerate(self.handoffs):
            out[f"handoff{k}"] = h
        for k, r in enumerate(self.reroutes):
            out[f"reroute{k}"] = r
        for k, e in enumerate(self.epochs):
            out[f"epoch{k}"] = e
        return out

    def conditions(self) -> dict[str, str]:
        """The roaming-correctness conditions."""
        conds: dict[str, str] = {}
        for k in range(len(self.handoffs) - 1):
            conds[f"handoff{k}-serialised"] = (
                f"R1(U,L)(handoff{k}, handoff{k + 1})"
            )
        for k in range(len(self.reroutes)):
            if k + 1 < len(self.epochs):
                conds[f"epoch{k + 1}-after-reroute{k}"] = (
                    f"R1(U,L)(reroute{k}, epoch{k + 1})"
                )
        for k in range(len(self.epochs)):
            conds[f"epoch{k}-after-setup"] = f"R3'(setup, epoch{k})"
        return conds

    @property
    def context(self):
        """The scenario's shared analysis context (one cut cache)."""
        from ..core.context import AnalysisContext

        return AnalysisContext.of(self.execution)

    def check(self, engine: str = "linear") -> dict[str, CheckReport]:
        """Evaluate every condition (cuts shared through the context)."""
        checker = ConditionChecker(
            SynchronizationAnalyzer(self.context, engine=engine)
        )
        return checker.check_all(self.conditions(), self.bindings())

    def all_safe(self, engine: str = "linear") -> bool:
        """True iff every condition passes."""
        return all(r.passed for r in self.check(engine).values())


def roaming_scenario(
    num_stations: int = 3,
    data_per_epoch: int = 2,
    premature_data: bool = False,
) -> RoamingScenario:
    """A mobile host visiting ``num_stations`` stations in sequence.

    Node layout: node 0 is the home agent; nodes ``1..num_stations``
    are base stations.  The session starts at station 1; each handoff
    ``k`` moves service from station ``k+1`` to station ``k+2`` through
    a context-transfer message and a home-agent reroute (all labelled
    ``f"handoff{k}"``).  During each residency the serving station
    delivers ``data_per_epoch`` units (labelled ``f"epoch{k}"``),
    forwarded by the home agent.

    With ``premature_data=True`` the *last* epoch's first delivery is
    emitted by the new station before the home agent's reroute ack —
    breaking the epoch-after-handoff condition.
    """
    if num_stations < 2:
        raise ValueError("need at least two base stations")
    b = TraceBuilder(num_stations + 1)
    t = iter(range(1, 10_000))

    def deliver_epoch(station: int, epoch: int, via_home: bool = True) -> None:
        for _ in range(data_per_epoch):
            if via_home:
                h = b.send(HOME, label=f"fwd{epoch}", time=next(t))
                b.recv(station, h, label=f"epoch{epoch}", time=next(t))
            else:
                b.internal(station, label=f"epoch{epoch}", time=next(t))

    # session setup: home agent registers the mobile at station 1
    s = b.send(HOME, label="setup", time=next(t))
    b.recv(1, s, label="setup", time=next(t))
    ack = b.send(1, label="setup", time=next(t))
    b.recv(HOME, ack, label="setup", time=next(t))

    deliver_epoch(1, 0)

    num_handoffs = num_stations - 1
    for k in range(num_handoffs):
        old, new = k + 1, k + 2
        label = f"handoff{k}"
        last = k == num_handoffs - 1
        # old station hands context to the new one
        ctx = b.send(old, label=label, time=next(t))
        b.recv(new, ctx, label=label, time=next(t))
        if premature_data and last:
            # fault: new station starts serving from its own buffer
            # before the home agent reroutes
            deliver_epoch(new, k + 1, via_home=False)
        # new station asks the home agent to reroute
        req = b.send(new, label=label, time=next(t))
        b.recv(HOME, req, label=f"reroute{k}", time=next(t))
        reroute = b.send(HOME, label=f"reroute{k}", time=next(t))
        b.recv(new, reroute, label=label, time=next(t))
        if not (premature_data and last):
            deliver_epoch(new, k + 1)

    ex = b.execute()
    setup = by_label(ex, "setup", name="setup")
    handoffs = tuple(
        by_label(ex, f"handoff{k}", name=f"handoff{k}")
        for k in range(num_handoffs)
    )
    reroutes = tuple(
        by_label(ex, f"reroute{k}", name=f"reroute{k}")
        for k in range(num_handoffs)
    )
    epochs = tuple(
        by_label(ex, f"epoch{k}", name=f"epoch{k}")
        for k in range(num_handoffs + 1)
    )
    return RoamingScenario(
        execution=ex, setup=setup, handoffs=handoffs, reroutes=reroutes,
        epochs=epochs,
    )
