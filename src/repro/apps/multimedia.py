"""Distributed multimedia stream synchronization.

One of the paper's motivating domains is *distributed multimedia
support*: media units (video frames, audio blocks) are produced by a
source, replicated to several sinks, and played out under inter- and
intra-stream synchronization constraints.  The delivery of one media
unit to all its sinks is a natural nonatomic event (it occurs at every
sink node), and the constraints are relation conditions:

* **intra-stream order** — every delivery of unit ``k`` causally
  precedes a delivery of unit ``k + lag``: ``R2(unit_k, unit_{k+lag})``.
  Deliveries at distinct sinks are concurrent (the only causal chains
  run along each sink's local order), so R2 — *for all x there is a
  later y* — is exactly "each sink got unit ``k`` before it got unit
  ``k + lag``"; the stronger R1 can never hold across ≥ 2 sinks;
* **inter-stream sync (lip-sync)** — some delivery of lead-stream unit
  ``k`` precedes some delivery of follower unit ``k + skew`` (``R4``
  between the begin/end proxies).

:func:`stream_trace` generates a source→sinks delivery execution with a
configurable out-of-order window, and :class:`StreamSyncChecker`
verifies the constraints, returning the offending unit pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.evaluator import SynchronizationAnalyzer
from ..core.relations import Relation, RelationSpec
from ..events.builder import TraceBuilder
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import Proxy
from ..nonatomic.selection import by_label_prefix

__all__ = ["SyncViolation", "StreamSyncChecker", "stream_trace"]


@dataclass(frozen=True, slots=True)
class SyncViolation:
    """A violated ordering between two media units."""

    earlier: str
    later: str
    constraint: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.constraint}: {self.earlier} !< {self.later}"


def stream_trace(
    num_sinks: int,
    units: int = 6,
    streams: Sequence[str] = ("video",),
    disorder: int = 0,
    seed: int | np.random.Generator = 0,
) -> tuple[Execution, dict[str, NonatomicEvent]]:
    """A source (node 0) delivering stream units to every sink.

    Each unit ``k`` of stream ``s`` is sent from the source to all
    sinks; the delivery events are labelled ``f"{s}:{k}"`` and the
    interval of that label is the unit's nonatomic delivery event.
    Units are sent in order, but with ``disorder > 0`` each unit's
    per-sink deliveries may be delayed past up to ``disorder``
    subsequent units on a random sink — modelling network reordering
    that breaks the intra-stream constraint.

    Returns the analysed execution and the unit intervals keyed by
    label.
    """
    if num_sinks < 1:
        raise ValueError("need at least one sink")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    b = TraceBuilder(num_sinks + 1)
    t = 0.0
    # queue[(sink)] holds (deliver_after_unit, handle, label)
    pending: list[tuple[int, int, object, str]] = []  # (due_unit, sink, handle, label)
    total_units = 0
    for k in range(units):
        for s in streams:
            label = f"{s}:{k}"
            for sink in range(1, num_sinks + 1):
                t += 1.0
                h = b.send(0, label=label, time=t)
                delay = int(rng.integers(0, disorder + 1)) if disorder else 0
                pending.append((total_units + delay, sink, h, label))
            total_units += 1
        # deliver everything due by now, in due order
        due = [p for p in pending if p[0] <= total_units - 1]
        pending = [p for p in pending if p[0] > total_units - 1]
        due.sort(key=lambda p: p[0])
        for _, sink, h, label in due:
            t += 1.0
            b.recv(sink, h, label=label, time=t)
    for _, sink, h, label in sorted(pending, key=lambda p: p[0]):
        t += 1.0
        b.recv(sink, h, label=label, time=t)
    ex = b.execute()
    intervals: dict[str, NonatomicEvent] = {}
    for s in streams:
        intervals.update(by_label_prefix(ex, f"{s}:"))
    # restrict each unit interval to its delivery (receive) events
    out: dict[str, NonatomicEvent] = {}
    for label, iv in intervals.items():
        recv_ids = [
            eid for eid in iv.ids
            if ex.event(eid).kind.name == "RECV"
        ]
        out[label] = NonatomicEvent(ex, recv_ids, name=label)
    return ex, out


class StreamSyncChecker:
    """Verify stream synchronization constraints over delivered units."""

    def __init__(self, execution: Execution, engine: str = "linear") -> None:
        from ..core.context import AnalysisContext

        self.execution = execution
        self.context = AnalysisContext.of(execution)
        self.analyzer = SynchronizationAnalyzer(self.context, engine=engine)

    def check_intra_stream(
        self,
        units: dict[str, NonatomicEvent],
        stream: str,
        lag: int = 1,
    ) -> list[SyncViolation]:
        """Check ``R2(unit_k, unit_{k+lag})`` for every ``k``.

        R2 (*every delivery of unit k precedes some delivery of unit
        k+lag*) captures per-sink delivery order, since cross-sink
        deliveries are concurrent.  ``units`` maps labels
        (``f"{stream}:{k}"``) to delivery intervals, as returned by
        :func:`stream_trace`.
        """
        if lag < 1:
            raise ValueError("lag must be >= 1")
        ks = sorted(
            int(lbl.split(":")[1]) for lbl in units if lbl.startswith(f"{stream}:")
        )
        checks = []
        for k in ks:
            a, bb = f"{stream}:{k}", f"{stream}:{k + lag}"
            if bb in units:
                checks.append((a, bb))
        answers = self.analyzer.batch_holds(
            [(Relation.R2, units[a], units[bb]) for a, bb in checks]
        )
        return [
            SyncViolation(a, bb, f"intra-stream lag-{lag}")
            for (a, bb), ok in zip(checks, answers, strict=True)
            if not ok
        ]

    def check_inter_stream(
        self,
        units: dict[str, NonatomicEvent],
        lead_stream: str,
        follow_stream: str,
        skew: int = 0,
    ) -> list[SyncViolation]:
        """Lip-sync style check: unit ``k`` of the lead stream must begin
        delivering before the following stream finishes unit ``k + skew``
        everywhere (``R4`` from lead proxies into follower's end proxy —
        the weakest sensible coupling; tighten by editing the spec)."""
        spec = RelationSpec(Relation.R4, Proxy.L, Proxy.U)
        ks = sorted(
            int(lbl.split(":")[1])
            for lbl in units
            if lbl.startswith(f"{lead_stream}:")
        )
        checks = []
        for k in ks:
            a, bb = f"{lead_stream}:{k}", f"{follow_stream}:{k + skew}"
            if bb in units:
                checks.append((a, bb))
        answers = self.analyzer.batch_holds(
            [(spec, units[a], units[bb]) for a, bb in checks]
        )
        return [
            SyncViolation(a, bb, f"inter-stream skew-{skew}")
            for (a, bb), ok in zip(checks, answers, strict=True)
            if not ok
        ]
