"""repro — testing synchronization conditions for distributed real-time
applications.

A complete, from-scratch reproduction of:

    A. D. Kshemkalyani, "Testing of Synchronization Conditions for
    Distributed Real-Time Applications", IPPS/SPDP Workshops, 1998.

The library provides:

* an execution substrate — traces, vector clocks (forward and reverse),
  the happened-before poset (:mod:`repro.events`);
* a discrete-event message-passing simulator and workload generators
  producing such traces (:mod:`repro.simulation`);
* nonatomic poset events, proxies and cuts (:mod:`repro.nonatomic`,
  :mod:`repro.core.cuts`);
* the 32 synchronization relations with three interchangeable
  evaluation engines — naive ``O(|X|·|Y|)``, polynomial
  ``O(|N_X|·|N_Y|)``, and the paper's linear-time conditions
  (:mod:`repro.core`);
* a synchronization-condition specification language and trace checker
  for real-time applications (:mod:`repro.monitor`), plus worked
  application layers (:mod:`repro.apps`).

Quickstart
----------
>>> from repro import TraceBuilder, SynchronizationAnalyzer
>>> b = TraceBuilder(2)
>>> x1 = b.internal(0)
>>> m = b.send(0)
>>> _ = b.recv(1, m)
>>> y1 = b.internal(1)
>>> an = SynchronizationAnalyzer(b.execute())
>>> an.holds("R1", an.interval([x1]), an.interval([y1]))
True
"""

from .core import (
    BASE_RELATIONS,
    FAMILY32,
    AnalysisContext,
    ComparisonCounter,
    Cut,
    CutCache,
    LinearEvaluator,
    NaiveEvaluator,
    PolynomialEvaluator,
    Relation,
    RelationSpec,
    SynchronizationAnalyzer,
    cut_C1,
    cut_C2,
    cut_C3,
    cut_C4,
    cuts_of,
    future_cut,
    implies,
    ll,
    not_ll,
    parse_spec,
    past_cut,
)
from .events import (
    Event,
    EventId,
    EventKind,
    Execution,
    Message,
    Trace,
    TraceBuilder,
)
from .globalstates import (
    GlobalStateLattice,
    definitely,
    possibly,
    possibly_conjunctive,
)
from .nonatomic import (
    NonatomicEvent,
    Proxy,
    ProxyDefinition,
    ProxyUndefinedError,
    proxy_of,
)
from .realtime import (
    RealTimeChecker,
    TimedConstraint,
    interval_span,
    latency,
    periodic_jitter,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # events
    "Event",
    "EventId",
    "EventKind",
    "Message",
    "Trace",
    "TraceBuilder",
    "Execution",
    # nonatomic
    "NonatomicEvent",
    "Proxy",
    "ProxyDefinition",
    "ProxyUndefinedError",
    "proxy_of",
    # core
    "AnalysisContext",
    "CutCache",
    "Relation",
    "RelationSpec",
    "BASE_RELATIONS",
    "FAMILY32",
    "parse_spec",
    "implies",
    "Cut",
    "past_cut",
    "future_cut",
    "cut_C1",
    "cut_C2",
    "cut_C3",
    "cut_C4",
    "cuts_of",
    "ll",
    "not_ll",
    "ComparisonCounter",
    "NaiveEvaluator",
    "PolynomialEvaluator",
    "LinearEvaluator",
    "SynchronizationAnalyzer",
    # global states
    "GlobalStateLattice",
    "possibly",
    "definitely",
    "possibly_conjunctive",
    # real time
    "interval_span",
    "latency",
    "periodic_jitter",
    "TimedConstraint",
    "RealTimeChecker",
]
