"""Synchronization-condition specification language.

Real-time applications express their synchronization requirements as
boolean combinations of the 32 relations over named nonatomic events —
e.g. *"the track must be fully confirmed before any interceptor
launches, and the two launches must not causally interfere"*:

.. code-block:: text

    R1(U,L)(track, launch1) and R1(U,L)(track, launch2)
        and not R4(launch1, launch2) and not R4(launch2, launch1)

This module defines the condition AST and a small recursive-descent
parser for the textual syntax:

.. code-block:: text

    expr    := implies
    implies := or ( '->' or )?
    or      := and ( 'or' and )*
    and     := unary ( 'and' unary )*
    unary   := 'not' unary | '(' expr ')' | atom
    atom    := RELATION [ '(' PROXY ',' PROXY ')' ] '(' NAME ',' NAME ')'
    RELATION := 'R1' | "R1'" | ... | "R4'"
    PROXY    := 'L' | 'U'

A bare ``RELATION(X, Y)`` applies the base relation to the full
intervals; with a proxy clause it names a 32-family member.
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass

from ..core.relations import Relation, RelationSpec, parse_spec

__all__ = [
    "Condition",
    "Atom",
    "Not",
    "And",
    "Or",
    "Implies",
    "parse_condition",
    "ParseError",
]


class ParseError(ValueError):
    """Raised on malformed condition syntax."""


class Condition(abc.ABC):
    """A boolean synchronization condition over named intervals."""

    @abc.abstractmethod
    def names(self) -> frozenset[str]:
        """All interval names the condition mentions."""

    @abc.abstractmethod
    def evaluate(self, atom_eval) -> bool:
        """Evaluate given ``atom_eval(atom) -> bool``."""

    def __and__(self, other: "Condition") -> "Condition":
        return And((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other))

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass(frozen=True, slots=True)
class Atom(Condition):
    """One relation applied to two named intervals."""

    spec: Relation | RelationSpec
    left: str
    right: str

    def names(self) -> frozenset[str]:
        return frozenset((self.left, self.right))

    def evaluate(self, atom_eval) -> bool:
        return atom_eval(self)

    def __str__(self) -> str:
        spec = self.spec.display if hasattr(self.spec, "display") else str(self.spec)
        return f"{spec}({self.left},{self.right})"


@dataclass(frozen=True, slots=True)
class Not(Condition):
    """Logical negation."""

    operand: Condition

    def names(self) -> frozenset[str]:
        return self.operand.names()

    def evaluate(self, atom_eval) -> bool:
        return not self.operand.evaluate(atom_eval)

    def __str__(self) -> str:
        return f"not {self.operand}"


@dataclass(frozen=True, slots=True)
class And(Condition):
    """Logical conjunction."""

    operands: tuple[Condition, ...]

    def names(self) -> frozenset[str]:
        return frozenset().union(*(c.names() for c in self.operands))

    def evaluate(self, atom_eval) -> bool:
        return all(c.evaluate(atom_eval) for c in self.operands)

    def __str__(self) -> str:
        return "(" + " and ".join(map(str, self.operands)) + ")"


@dataclass(frozen=True, slots=True)
class Or(Condition):
    """Logical disjunction."""

    operands: tuple[Condition, ...]

    def names(self) -> frozenset[str]:
        return frozenset().union(*(c.names() for c in self.operands))

    def evaluate(self, atom_eval) -> bool:
        return any(c.evaluate(atom_eval) for c in self.operands)

    def __str__(self) -> str:
        return "(" + " or ".join(map(str, self.operands)) + ")"


@dataclass(frozen=True, slots=True)
class Implies(Condition):
    """Logical implication (``a -> b``)."""

    antecedent: Condition
    consequent: Condition

    def names(self) -> frozenset[str]:
        return self.antecedent.names() | self.consequent.names()

    def evaluate(self, atom_eval) -> bool:
        return (not self.antecedent.evaluate(atom_eval)) or self.consequent.evaluate(
            atom_eval
        )

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


# ----------------------------------------------------------------------
# tokenizer / parser
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<rel>R[1-4]')|(?P<word>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<arrow>->)|(?P<punct>[(),]))"
)

_KEYWORDS = {"and", "or", "not"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m or m.end() == pos:
            if text[pos:].strip():
                raise ParseError(f"unexpected character at {text[pos:pos + 10]!r}")
            break
        pos = m.end()
        if m.group("rel"):
            tokens.append(("rel", m.group("rel")))
        elif m.group("word"):
            w = m.group("word")
            if w in _KEYWORDS:
                tokens.append((w, w))
            elif re.fullmatch(r"R[1-4]", w):
                tokens.append(("rel", w))
            else:
                tokens.append(("name", w))
        elif m.group("arrow"):
            tokens.append(("->", "->"))
        else:
            tokens.append((m.group("punct"), m.group("punct")))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def advance(self) -> tuple[str, str]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str) -> str:
        tok = self.advance()
        if tok[0] != kind:
            raise ParseError(f"expected {kind!r}, got {tok[1]!r}")
        return tok[1]

    # grammar -----------------------------------------------------------
    def parse(self) -> Condition:
        cond = self.implies()
        if self.peek()[0] != "eof":
            raise ParseError(f"trailing input at {self.peek()[1]!r}")
        return cond

    def implies(self) -> Condition:
        left = self.or_expr()
        if self.peek()[0] == "->":
            self.advance()
            return Implies(left, self.or_expr())
        return left

    def or_expr(self) -> Condition:
        parts = [self.and_expr()]
        while self.peek()[0] == "or":
            self.advance()
            parts.append(self.and_expr())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def and_expr(self) -> Condition:
        parts = [self.unary()]
        while self.peek()[0] == "and":
            self.advance()
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def unary(self) -> Condition:
        kind, _ = self.peek()
        if kind == "not":
            self.advance()
            return Not(self.unary())
        if kind == "(":
            self.advance()
            inner = self.implies()
            self.expect(")")
            return inner
        return self.atom()

    def atom(self) -> Condition:
        rel_text = self.expect("rel")
        self.expect("(")
        first = self.advance()
        # Either a proxy clause "(L,U)(X,Y)" or directly "(X,Y)".
        if first[0] == "name" and first[1] in ("L", "U"):
            # could still be an interval literally named L/U; disambiguate
            # by the shape: proxy clause is followed by ',' PROXY ')' '('.
            save = self.pos
            if (
                self.peek()[0] == ","
                and self.tokens[self.pos + 1][1] in ("L", "U")
                and self.tokens[self.pos + 2][0] == ")"
                and self.tokens[self.pos + 3][0] == "("
            ):
                self.advance()  # ','
                proxy_y = self.advance()[1]
                self.expect(")")
                self.expect("(")
                left = self.expect("name")
                self.expect(",")
                right = self.expect("name")
                self.expect(")")
                spec = parse_spec(f"{rel_text}({first[1]},{proxy_y})")
                return Atom(spec, left, right)
            self.pos = save
        if first[0] != "name":
            raise ParseError(f"expected interval name, got {first[1]!r}")
        left = first[1]
        self.expect(",")
        right = self.expect("name")
        self.expect(")")
        return Atom(parse_spec(rel_text), left, right)


def parse_condition(text: str) -> Condition:
    """Parse a condition expression (see module docstring for syntax).

    Raises
    ------
    ParseError
        On malformed input.
    """
    return _Parser(text).parse()
