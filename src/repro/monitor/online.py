"""Online (streaming) monitoring of synchronization conditions.

The offline engines need the *reverse* timestamp structure, which only
exists once the whole trace is recorded.  A real-time monitor cannot
wait for termination — so this module evaluates the relations through
equivalent **past-only** conditions that use nothing but the forward
vector clocks available the moment an event is observed:

======== ============================================================ ==========
Relation Past-only condition (disjoint X, Y)                          Cost
======== ============================================================ ==========
R1, R1'  ``∀m ∈ N_X: T(∩⇓Y)[m] ≥ lastX[m]``                           |N_X|
R2       ``∀m ∈ N_X: T(∪⇓Y)[m] ≥ lastX[m]``                           |N_X|
R3       ``∃m ∈ N_X: T(∩⇓Y)[m] ≥ firstX[m]``                          |N_X|
R4, R4'  ``∃m ∈ N_X: T(∪⇓Y)[m] ≥ firstX[m]``                          |N_X|
R2'      ``∃i ∈ N_Y ∀m ∈ N_X: T(y_last(i))[m] ≥ lastX[m]``            |N_X|·|N_Y|
R3'      ``∀i ∈ N_Y ∃m ∈ N_X: T(y_first(i))[m] ≥ firstX[m]``          |N_X|·|N_Y|
======== ============================================================ ==========

(The future-cut forms of R2'/R3' are linear but need ``T^R``; online,
those two relations fall back to the polynomial past-only form — the
price of not knowing the future.)

Streaming fast path
-------------------
Ingestion writes forward clocks straight into a
streaming clock table (:func:`~repro.backends.base.make_streaming_table`)
— capacity-doubling
``(cap, |P|)`` int32 blocks, one amortized-O(|P|) in-place row write
per event, no per-event allocation.  Each :class:`OnlineInterval`
*maintains* its past-cut timestamps incrementally as events are tagged
(one vectorized min/max against the live clock row), so ``close()``
and watch firing evaluate the past-only conditions with **zero
re-scans** of previously tagged events; the only deferred fold is
``T(∩⇓U_Y)`` (a min over per-node *last* rows, which is not
incrementally foldable — a later last event can *raise* the min) and
it is computed once at close.  Finalisation
(:meth:`OnlineMonitor.to_execution`) hands the live table to
:class:`~repro.events.poset.Execution` via its version-keyed snapshot:
**zero** forward/extend clock passes, and the reverse pass stays
unbuilt until a future-cut consumer asks
(regression-tested via :func:`repro.events.clocks.clock_pass_counts`).

Usage: feed events through :meth:`OnlineMonitor.internal` /
:meth:`send` / :meth:`recv`, tag them into named intervals, ``close``
an interval when the application activity completes, and query
:meth:`holds` — or register :meth:`watch` conditions that fire as soon
as every interval they mention is closed (all watches decidable at one
``close`` are batch-evaluated in one NumPy pass over the stacked
per-atom operand matrices).
"""

from __future__ import annotations

# repro: hot, dtype-strict

from dataclasses import dataclass

import numpy as np

from ..core.relations import Relation, RelationSpec, parse_spec
from ..events.builder import MessageHandle, TraceBuilder
from ..backends.base import CLOCK_DTYPE, StreamingClockTable, make_streaming_table
from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.proxies import Proxy
from .predicates import Atom, Condition, parse_condition

__all__ = ["OnlineInterval", "OnlineMonitor", "WatchNotification"]

#: Relations whose past-only condition reads only the interval-level
#: past-cut vectors (the maintained ``T(∩⇓Ŷ)``/``T(∪⇓Ŷ)``); R2'/R3'
#: additionally need the per-node clock stacks.
_VECTOR_RELATIONS = (
    Relation.R1,
    Relation.R1P,
    Relation.R2,
    Relation.R3,
    Relation.R4,
    Relation.R4P,
)


class OnlineInterval:
    """A nonatomic event being assembled from a live stream.

    Alongside the per-node first/last extremal indices, the interval
    *maintains* the vectors the past-only conditions consume, updated
    with one vectorized min/max per tagged event:

    * ``T(∩⇓L_Y)`` (min over first-event clocks) and the max over
      first-event clocks — folded when a node's **first** event is
      tagged (firsts never change afterwards);
    * ``T(∪⇓Y) = T(∪⇓U_Y)`` (max over last-event clocks) — folded on
      **every** tag (per-node clocks are monotone, so the running max
      over all tagged events equals the max over per-node lasts);
    * dense first/last local-index vectors (0 off the node set).

    ``T(∩⇓U_Y)`` (min over last-event clocks) is the one quantity a
    running fold cannot maintain — replacing a node's last event with a
    later one can *raise* the min — so it is recomputed lazily (one
    |N_Y|-row fold) when the interval is finalised at ``close``,
    together with the stacked first/last clock matrices that R2'/R3'
    scan.
    """

    __slots__ = (
        "name", "first", "last", "count", "closed",
        "_table", "_min_first", "_max_first", "_max_last",
        "_first_vec", "_last_vec",
        "_min_last", "_first_stack", "_last_stack", "_dirty",
    )

    def __init__(
        self, name: str, table: StreamingClockTable | None = None
    ) -> None:
        self.name = name
        self.first: dict[int, int] = {}
        self.last: dict[int, int] = {}
        self.count = 0
        self.closed = False
        self._table = table
        self._min_first: np.ndarray | None = None
        self._max_first: np.ndarray | None = None
        self._max_last: np.ndarray | None = None
        self._first_vec: np.ndarray | None = None
        self._last_vec: np.ndarray | None = None
        self._min_last: np.ndarray | None = None
        self._first_stack: np.ndarray | None = None
        self._last_stack: np.ndarray | None = None
        self._dirty = True

    def add(self, eid: EventId, row: np.ndarray | None = None) -> None:
        """Tag event ``eid`` into the interval.

        ``row`` is the event's forward clock row; when omitted it is
        read from the monitor's live table (the event must have been
        ingested).  Each tag costs one vectorized min/max fold.
        """
        node, idx = eid
        if row is None:
            if self._table is None:
                raise ValueError(
                    f"interval {self.name!r} is not attached to a monitor"
                )
            row = self._table.row(node, idx)
        if self._min_first is None:
            width = row.shape[0]
            self._min_first = row.astype(CLOCK_DTYPE, copy=True)
            self._max_first = row.astype(CLOCK_DTYPE, copy=True)
            self._max_last = row.astype(CLOCK_DTYPE, copy=True)
            self._first_vec = np.zeros(width, dtype=np.int64)
            self._last_vec = np.zeros(width, dtype=np.int64)
        elif node not in self.first:
            np.minimum(self._min_first, row, out=self._min_first)
            np.maximum(self._max_first, row, out=self._max_first)
            np.maximum(self._max_last, row, out=self._max_last)
        else:
            np.maximum(self._max_last, row, out=self._max_last)
        if node not in self.first:
            self.first[node] = idx
            self._first_vec[node] = idx
        self.last[node] = idx
        self._last_vec[node] = idx
        self.count += 1
        self._dirty = True

    @property
    def node_set(self) -> tuple[int, ...]:
        """Nodes the interval spans (sorted)."""
        return tuple(sorted(self.first))

    # ------------------------------------------------------------------
    # maintained past-only state
    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        """Compute the close-time folds: ``T(∩⇓U_Y)`` and the stacked
        first/last clock matrices.  One |N_Y|-row gather; no event
        re-scans."""
        if not self._dirty:
            return
        if self._table is None:
            raise ValueError(
                f"interval {self.name!r} is not attached to a monitor"
            )
        nodes = sorted(self.first)
        self._first_stack = np.stack(
            [self._table.row(n, self.first[n]) for n in nodes]
        )
        self._last_stack = np.stack(
            [self._table.row(n, self.last[n]) for n in nodes]
        )
        self._min_last = np.min(self._last_stack, axis=0)
        self._dirty = False

    def past_cuts(
        self, proxy: Proxy | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(T(∩⇓Ŷ), T(∪⇓Ŷ))`` for the interval or one of its proxies.

        ``T(∩⇓Y) = T(∩⇓L_Y)`` and ``T(∪⇓Y) = T(∪⇓U_Y)`` (the proxy
        coincidences), so the full interval shares its proxies'
        vectors.
        """
        if proxy is Proxy.L:
            return self._min_first, self._max_first
        if proxy is Proxy.U:
            if self._dirty:
                self._finalize()
            return self._min_last, self._max_last
        return self._min_first, self._max_last

    def extremal_vectors(
        self, proxy: Proxy | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(first, last)`` local-index vectors (0 off the node
        set) of the interval or one of its proxies."""
        if proxy is Proxy.L:
            return self._first_vec, self._first_vec
        if proxy is Proxy.U:
            return self._last_vec, self._last_vec
        return self._first_vec, self._last_vec

    def clock_stacks(
        self, proxy: Proxy | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(|N_Y|, P)`` first/last clock matrices (node-sorted
        rows) of the interval or one of its proxies."""
        if self._dirty:
            self._finalize()
        if proxy is Proxy.L:
            return self._first_stack, self._first_stack
        if proxy is Proxy.U:
            return self._last_stack, self._last_stack
        return self._first_stack, self._last_stack


@dataclass(frozen=True, slots=True)
class WatchNotification:
    """Emitted when a watched condition becomes decidable."""

    name: str
    condition: Condition
    passed: bool
    decided_at: float


class OnlineMonitor:
    """Streaming trace ingestion + past-only relation evaluation.

    Events must be fed in per-node program order (any interleaving
    across nodes); receives must follow their sends — exactly the order
    a real monitoring point observes.
    """

    __slots__ = (
        "_builder", "num_nodes", "_table", "_intervals", "_watches",
        "notifications", "_now", "_finalized",
    )

    def __init__(self, num_nodes: int) -> None:
        self._builder = TraceBuilder(num_nodes)
        self.num_nodes = num_nodes
        self._table = make_streaming_table(num_nodes)
        self._intervals: dict[str, OnlineInterval] = {}
        self._watches: list[tuple[str, Condition]] = []
        self.notifications: list[WatchNotification] = []
        self._now = 0.0
        self._finalized: tuple[int, Execution] | None = None

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _tag(
        self, eid: EventId, interval: str | None, row: np.ndarray
    ) -> EventId:
        if interval is not None:
            iv = self._intervals.get(interval)
            if iv is None:
                iv = self._intervals[interval] = OnlineInterval(
                    interval, self._table
                )
            if iv.closed:
                raise ValueError(f"interval {interval!r} is already closed")
            iv.add(eid, row)
        return eid

    def internal(
        self,
        node: int,
        *,
        label: str | None = None,
        time: float | None = None,
        interval: str | None = None,
    ) -> EventId:
        """Observe an internal event (optionally tagged into an interval)."""
        if time is not None:
            self._now = max(self._now, time)
        eid = self._builder.internal(node, label=label, time=time)
        row = self._table.advance(node)
        return self._tag(eid, interval, row)

    def send(
        self,
        node: int,
        *,
        label: str | None = None,
        time: float | None = None,
        interval: str | None = None,
    ) -> MessageHandle:
        """Observe a send event; returns the handle for its receive."""
        if time is not None:
            self._now = max(self._now, time)
        handle = self._builder.send(node, label=label, time=time)
        row = self._table.advance(node)
        self._tag(handle.send, interval, row)
        return handle

    def recv(
        self,
        node: int,
        handle: MessageHandle,
        *,
        label: str | None = None,
        time: float | None = None,
        interval: str | None = None,
    ) -> EventId:
        """Observe the receive matching ``handle``."""
        if time is not None:
            self._now = max(self._now, time)
        s_node, s_idx = handle.send
        if s_idx > self._table.count(s_node):
            raise ValueError("receive observed before its send")
        eid = self._builder.recv(node, handle, label=label, time=time)
        row = self._table.advance(node, self._table.row(s_node, s_idx))
        return self._tag(eid, interval, row)

    # ------------------------------------------------------------------
    # clock queries
    # ------------------------------------------------------------------
    def clock(self, eid: EventId) -> np.ndarray:
        """Forward vector timestamp of an observed event."""
        node, idx = eid
        return self._table.row(node, idx)

    def precedes(self, a: EventId, b: EventId) -> bool:
        """``a ≺ b`` among observed events."""
        return a != b and bool(self.clock(b)[a[0]] >= a[1])

    # ------------------------------------------------------------------
    # intervals and watches
    # ------------------------------------------------------------------
    def interval(self, name: str) -> OnlineInterval:
        """Get (or create) the named interval."""
        iv = self._intervals.get(name)
        if iv is None:
            iv = self._intervals[name] = OnlineInterval(name, self._table)
        return iv

    def close(self, name: str) -> list[WatchNotification]:
        """Mark an interval complete; fires any now-decidable watches.

        The interval's close-time folds (``T(∩⇓U_Y)`` and the stacked
        clock matrices) are computed here, once; every watch that
        became decidable is evaluated in one batched NumPy pass over
        the stacked per-atom operand matrices.

        Raises
        ------
        KeyError
            If no such interval exists.
        ValueError
            If the interval is empty.
        """
        iv = self._intervals[name]
        if iv.count == 0:
            raise ValueError(f"cannot close empty interval {name!r}")
        iv.closed = True
        iv._finalize()
        return self.poll_watches()

    def poll_watches(self) -> list[WatchNotification]:
        """Fire every currently decidable watch.

        Normally driven by :meth:`close`, but callable directly — e.g.
        when a watch is registered *after* all the intervals it
        mentions have already closed (the networked service accepts
        watches at any point in a session).  Decidable watches are
        batch-evaluated in one NumPy pass and removed; each fires at
        most once.
        """
        fired: list[WatchNotification] = []
        remaining: list[tuple[str, Condition]] = []
        decidable: list[tuple[str, Condition]] = []
        for wname, cond in self._watches:
            needed = cond.names()
            if all(
                n in self._intervals and self._intervals[n].closed for n in needed
            ):
                decidable.append((wname, cond))
            else:
                remaining.append((wname, cond))
        if decidable:
            verdicts = self._batch_eval_atoms([c for _, c in decidable])
            for wname, cond in decidable:
                note = WatchNotification(
                    name=wname,
                    condition=cond,
                    passed=cond.evaluate(lambda atom: verdicts[atom]),
                    decided_at=self._now,
                )
                fired.append(note)
                self.notifications.append(note)
        self._watches = remaining
        return fired

    def watch(self, name: str, condition: str | Condition) -> None:
        """Register a condition to evaluate once its intervals close."""
        if isinstance(condition, str):
            condition = parse_condition(condition)
        self._watches.append((name, condition))

    def watch_names(self) -> tuple[str, ...]:
        """Names of the watches still pending (not yet fired)."""
        return tuple(name for name, _ in self._watches)

    # ------------------------------------------------------------------
    # past-only relation evaluation
    # ------------------------------------------------------------------
    def _closed(self, name: str) -> OnlineInterval:
        iv = self._intervals[name]
        if not iv.closed:
            raise ValueError(f"interval {name!r} is not closed yet")
        return iv

    def _eval(
        self,
        relation: Relation,
        x: OnlineInterval,
        proxy_x: Proxy | None,
        y: OnlineInterval,
        proxy_y: Proxy | None,
    ) -> bool:
        """One past-only condition over the maintained vectors.

        The universal/existential rows compare ``T(∩⇓Ŷ)``/``T(∪⇓Ŷ)``
        against X̂'s dense extremal-index vectors (0 off N_X is neutral:
        every clock component is ≥ 0, and the ∃-rows mask on
        ``first ≥ 1``); R2'/R3' scan the stacked per-node clock
        matrices.  No tagged event is revisited.
        """
        xfirst, xlast = x.extremal_vectors(proxy_x)
        ty1, ty2 = y.past_cuts(proxy_y)
        if relation in (Relation.R1, Relation.R1P):
            return bool(np.all((xlast == 0) | (ty1 >= xlast)))
        if relation is Relation.R2:
            return bool(np.all((xlast == 0) | (ty2 >= xlast)))
        if relation is Relation.R3:
            return bool(np.any((xfirst >= 1) & (ty1 >= xfirst)))
        if relation in (Relation.R4, Relation.R4P):
            return bool(np.any((xfirst >= 1) & (ty2 >= xfirst)))
        first_stack, last_stack = y.clock_stacks(proxy_y)
        if relation is Relation.R2P:
            return bool(
                np.any(np.all((xlast == 0) | (last_stack >= xlast), axis=1))
            )
        if relation is Relation.R3P:
            return bool(
                np.all(np.any((xfirst >= 1) & (first_stack >= xfirst), axis=1))
            )
        raise ValueError(f"unknown relation: {relation!r}")  # pragma: no cover

    def holds(
        self,
        spec: str | Relation | RelationSpec,
        x_name: str,
        y_name: str,
    ) -> bool:
        """Evaluate a relation between two *closed* intervals online.

        Semantically identical to the offline engines (for disjoint
        intervals), but uses only forward clocks — and only the
        incrementally maintained interval vectors, so each query is
        ``O(|P|)`` (R2'/R3': ``O(|N_Y|·|P|)``) regardless of how many
        events were tagged.
        """
        if isinstance(spec, str):
            spec = parse_spec(spec)
        x = self._closed(x_name)
        y = self._closed(y_name)
        if isinstance(spec, RelationSpec):
            return self._eval(
                spec.relation, x, spec.proxy_x, y, spec.proxy_y
            )
        return self._eval(spec, x, None, y, None)

    def _batch_eval_atoms(
        self, conditions: list[Condition]
    ) -> dict[Atom, bool]:
        """Evaluate every distinct atom of ``conditions`` in one pass.

        Atoms whose relation reads only the interval-level past-cut
        vectors are grouped by relation and answered with a single
        NumPy reduction over the stacked ``(a, P)`` operand matrices;
        R2'/R3' atoms (per-node clock-stack scans) are evaluated
        individually but still vectorized over ``(|N_Y|, P)``.
        """
        atoms: list[Atom] = []
        seen = set()
        for cond in conditions:
            for atom in _collect_atoms(cond):
                if atom not in seen:
                    seen.add(atom)
                    atoms.append(atom)
        groups: dict[Relation, list[Atom]] = {}
        verdicts: dict[Atom, bool] = {}
        for atom in atoms:
            spec = atom.spec
            if isinstance(spec, str):
                spec = parse_spec(spec)
            relation = spec.relation if isinstance(spec, RelationSpec) else spec
            groups.setdefault(relation, []).append(atom)
        for relation, members in groups.items():
            if relation not in _VECTOR_RELATIONS:
                for atom in members:
                    verdicts[atom] = self.holds(atom.spec, atom.left, atom.right)
                continue
            xf_rows, xl_rows, t1_rows, t2_rows = [], [], [], []
            for atom in members:
                spec = atom.spec
                if isinstance(spec, str):
                    spec = parse_spec(spec)
                px = spec.proxy_x if isinstance(spec, RelationSpec) else None
                py = spec.proxy_y if isinstance(spec, RelationSpec) else None
                x = self._closed(atom.left)
                y = self._closed(atom.right)
                xfirst, xlast = x.extremal_vectors(px)
                ty1, ty2 = y.past_cuts(py)
                xf_rows.append(xfirst)
                xl_rows.append(xlast)
                t1_rows.append(ty1)
                t2_rows.append(ty2)
            xfirst = np.stack(xf_rows)
            xlast = np.stack(xl_rows)
            ty1 = np.stack(t1_rows)
            ty2 = np.stack(t2_rows)
            if relation in (Relation.R1, Relation.R1P):
                out = np.all((xlast == 0) | (ty1 >= xlast), axis=1)
            elif relation is Relation.R2:
                out = np.all((xlast == 0) | (ty2 >= xlast), axis=1)
            elif relation is Relation.R3:
                out = np.any((xfirst >= 1) & (ty1 >= xfirst), axis=1)
            else:  # R4 / R4'
                out = np.any((xfirst >= 1) & (ty2 >= xfirst), axis=1)
            for atom, v in zip(members, out.tolist(), strict=True):
                verdicts[atom] = v
        return verdicts

    def _atom_eval(self, atom: Atom) -> bool:
        return self.holds(atom.spec, atom.left, atom.right)

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def to_execution(self) -> Execution:
        """Finalise the observed trace into an offline execution.

        The monitor already maintains every forward vector timestamp in
        its growable columnar table, so the execution adopts the
        table's version-keyed snapshot instead of re-running the
        forward pass — and the reverse structure stays unbuilt until a
        future-cut consumer actually asks for it.  Ingestion plus
        finalisation therefore performs **zero** offline clock passes
        (regression-tested via
        :func:`repro.events.clocks.clock_pass_counts`).  The finalised
        execution is memoized by table version: calling again without
        new events returns the same object (and hence the same shared
        :class:`~repro.core.context.AnalysisContext`).
        """
        version = self._table.version
        if self._finalized is not None and self._finalized[0] == version:
            return self._finalized[1]
        trace = self._builder.build()
        ex = Execution(trace, forward_clocks=self._table)
        self._finalized = (version, ex)
        return ex

    def to_context(self):
        """Finalise into a shared :class:`~repro.core.context.AnalysisContext`.

        The offline hand-off point: the returned context owns the
        finalised execution (with the monitor's forward clocks adopted
        zero-copy) and the cut cache every offline engine will share.
        """
        from ..core.context import AnalysisContext

        return AnalysisContext.of(self.to_execution())


def _collect_atoms(cond: Condition) -> list[Atom]:
    """All :class:`Atom` leaves of a condition AST."""
    if isinstance(cond, Atom):
        return [cond]
    out: list[Atom] = []
    for attr in ("operand", "antecedent", "consequent"):
        sub = getattr(cond, attr, None)
        if sub is not None:
            out.extend(_collect_atoms(sub))
    for sub in getattr(cond, "operands", ()):
        out.extend(_collect_atoms(sub))
    return out
