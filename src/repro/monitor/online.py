"""Online (streaming) monitoring of synchronization conditions.

The offline engines need the *reverse* timestamp structure, which only
exists once the whole trace is recorded.  A real-time monitor cannot
wait for termination — so this module evaluates the relations through
equivalent **past-only** conditions that use nothing but the forward
vector clocks available the moment an event is observed:

======== ============================================================ ==========
Relation Past-only condition (disjoint X, Y)                          Cost
======== ============================================================ ==========
R1, R1'  ``∀m ∈ N_X: T(∩⇓Y)[m] ≥ lastX[m]``                           |N_X|
R2       ``∀m ∈ N_X: T(∪⇓Y)[m] ≥ lastX[m]``                           |N_X|
R3       ``∃m ∈ N_X: T(∩⇓Y)[m] ≥ firstX[m]``                          |N_X|
R4, R4'  ``∃m ∈ N_X: T(∪⇓Y)[m] ≥ firstX[m]``                          |N_X|
R2'      ``∃i ∈ N_Y ∀m ∈ N_X: T(y_last(i))[m] ≥ lastX[m]``            |N_X|·|N_Y|
R3'      ``∀i ∈ N_Y ∃m ∈ N_X: T(y_first(i))[m] ≥ firstX[m]``          |N_X|·|N_Y|
======== ============================================================ ==========

(The future-cut forms of R2'/R3' are linear but need ``T^R``; online,
those two relations fall back to the polynomial past-only form — the
price of not knowing the future.)

Usage: feed events through :meth:`OnlineMonitor.internal` /
:meth:`send` / :meth:`recv`, tag them into named intervals, ``close``
an interval when the application activity completes, and query
:meth:`holds` — or register :meth:`watch` conditions that fire as soon
as every interval they mention is closed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.relations import Relation, RelationSpec, parse_spec
from ..events.builder import MessageHandle, TraceBuilder
from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.proxies import Proxy
from .predicates import Atom, Condition, parse_condition

__all__ = ["OnlineInterval", "OnlineMonitor", "WatchNotification"]


class OnlineInterval:
    """A nonatomic event being assembled from a live stream."""

    __slots__ = ("name", "first", "last", "count", "closed")

    def __init__(self, name: str) -> None:
        self.name = name
        self.first: Dict[int, int] = {}
        self.last: Dict[int, int] = {}
        self.count = 0
        self.closed = False

    def add(self, eid: EventId) -> None:
        node, idx = eid
        if node not in self.first:
            self.first[node] = idx
        self.last[node] = idx
        self.count += 1

    @property
    def node_set(self) -> Tuple[int, ...]:
        """Nodes the interval spans (sorted)."""
        return tuple(sorted(self.first))


@dataclass(frozen=True, slots=True)
class WatchNotification:
    """Emitted when a watched condition becomes decidable."""

    name: str
    condition: Condition
    passed: bool
    decided_at: float


class OnlineMonitor:
    """Streaming trace ingestion + past-only relation evaluation.

    Events must be fed in per-node program order (any interleaving
    across nodes); receives must follow their sends — exactly the order
    a real monitoring point observes.
    """

    def __init__(self, num_nodes: int) -> None:
        self._builder = TraceBuilder(num_nodes)
        self.num_nodes = num_nodes
        self._clocks: List[List[np.ndarray]] = [[] for _ in range(num_nodes)]
        self._intervals: Dict[str, OnlineInterval] = {}
        self._watches: List[Tuple[str, Condition]] = []
        self.notifications: List[WatchNotification] = []
        self._now = 0.0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _advance_clock(
        self, node: int, extra: Optional[np.ndarray]
    ) -> np.ndarray:
        rows = self._clocks[node]
        row = rows[-1].copy() if rows else np.zeros(self.num_nodes, np.int64)
        if extra is not None:
            np.maximum(row, extra, out=row)
        row[node] += 1
        rows.append(row)
        return row

    def _tag(self, eid: EventId, interval: Optional[str]) -> EventId:
        if interval is not None:
            iv = self._intervals.setdefault(interval, OnlineInterval(interval))
            if iv.closed:
                raise ValueError(f"interval {interval!r} is already closed")
            iv.add(eid)
        return eid

    def internal(
        self,
        node: int,
        *,
        label: Optional[str] = None,
        time: Optional[float] = None,
        interval: Optional[str] = None,
    ) -> EventId:
        """Observe an internal event (optionally tagged into an interval)."""
        if time is not None:
            self._now = max(self._now, time)
        eid = self._builder.internal(node, label=label, time=time)
        self._advance_clock(node, None)
        return self._tag(eid, interval)

    def send(
        self,
        node: int,
        *,
        label: Optional[str] = None,
        time: Optional[float] = None,
        interval: Optional[str] = None,
    ) -> MessageHandle:
        """Observe a send event; returns the handle for its receive."""
        if time is not None:
            self._now = max(self._now, time)
        handle = self._builder.send(node, label=label, time=time)
        self._advance_clock(node, None)
        self._tag(handle.send, interval)
        return handle

    def recv(
        self,
        node: int,
        handle: MessageHandle,
        *,
        label: Optional[str] = None,
        time: Optional[float] = None,
        interval: Optional[str] = None,
    ) -> EventId:
        """Observe the receive matching ``handle``."""
        if time is not None:
            self._now = max(self._now, time)
        s_node, s_idx = handle.send
        if s_idx > len(self._clocks[s_node]):
            raise ValueError("receive observed before its send")
        eid = self._builder.recv(node, handle, label=label, time=time)
        self._advance_clock(node, self._clocks[s_node][s_idx - 1])
        return self._tag(eid, interval)

    # ------------------------------------------------------------------
    # clock queries
    # ------------------------------------------------------------------
    def clock(self, eid: EventId) -> np.ndarray:
        """Forward vector timestamp of an observed event."""
        node, idx = eid
        return self._clocks[node][idx - 1]

    def precedes(self, a: EventId, b: EventId) -> bool:
        """``a ≺ b`` among observed events."""
        return a != b and bool(self.clock(b)[a[0]] >= a[1])

    # ------------------------------------------------------------------
    # intervals and watches
    # ------------------------------------------------------------------
    def interval(self, name: str) -> OnlineInterval:
        """Get (or create) the named interval."""
        return self._intervals.setdefault(name, OnlineInterval(name))

    def close(self, name: str) -> List[WatchNotification]:
        """Mark an interval complete; fires any now-decidable watches.

        Raises
        ------
        KeyError
            If no such interval exists.
        ValueError
            If the interval is empty.
        """
        iv = self._intervals[name]
        if iv.count == 0:
            raise ValueError(f"cannot close empty interval {name!r}")
        iv.closed = True
        fired: List[WatchNotification] = []
        remaining: List[Tuple[str, Condition]] = []
        for wname, cond in self._watches:
            needed = cond.names()
            if all(
                n in self._intervals and self._intervals[n].closed for n in needed
            ):
                note = WatchNotification(
                    name=wname,
                    condition=cond,
                    passed=cond.evaluate(self._atom_eval),
                    decided_at=self._now,
                )
                fired.append(note)
                self.notifications.append(note)
            else:
                remaining.append((wname, cond))
        self._watches = remaining
        return fired

    def watch(self, name: str, condition: Union[str, Condition]) -> None:
        """Register a condition to evaluate once its intervals close."""
        if isinstance(condition, str):
            condition = parse_condition(condition)
        self._watches.append((name, condition))

    # ------------------------------------------------------------------
    # past-only relation evaluation
    # ------------------------------------------------------------------
    def _closed(self, name: str) -> OnlineInterval:
        iv = self._intervals[name]
        if not iv.closed:
            raise ValueError(f"interval {name!r} is not closed yet")
        return iv

    def _proxy_bounds(
        self, iv: OnlineInterval, proxy: Optional[Proxy]
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """(first, last) index maps of the interval or one of its proxies."""
        if proxy is None:
            return iv.first, iv.last
        if proxy is Proxy.L:
            return iv.first, iv.first
        return iv.last, iv.last

    def _eval_base(
        self,
        relation: Relation,
        xfirst: Dict[int, int],
        xlast: Dict[int, int],
        yfirst: Dict[int, int],
        ylast: Dict[int, int],
    ) -> bool:
        nx = sorted(xfirst)
        y_first_clocks = [self.clock((n, j)) for n, j in sorted(yfirst.items())]
        y_last_clocks = [self.clock((n, j)) for n, j in sorted(ylast.items())]
        ty1 = np.minimum.reduce(y_first_clocks)  # T(∩⇓Y)
        ty2 = np.maximum.reduce(y_last_clocks)  # T(∪⇓Y)
        if relation in (Relation.R1, Relation.R1P):
            return all(ty1[m] >= xlast[m] for m in nx)
        if relation is Relation.R2:
            return all(ty2[m] >= xlast[m] for m in nx)
        if relation is Relation.R3:
            return any(ty1[m] >= xfirst[m] for m in nx)
        if relation in (Relation.R4, Relation.R4P):
            return any(ty2[m] >= xfirst[m] for m in nx)
        if relation is Relation.R2P:
            return any(
                all(c[m] >= xlast[m] for m in nx) for c in y_last_clocks
            )
        if relation is Relation.R3P:
            return all(
                any(c[m] >= xfirst[m] for m in nx) for c in y_first_clocks
            )
        raise ValueError(f"unknown relation: {relation!r}")  # pragma: no cover

    def holds(
        self,
        spec: Union[str, Relation, RelationSpec],
        x_name: str,
        y_name: str,
    ) -> bool:
        """Evaluate a relation between two *closed* intervals online.

        Semantically identical to the offline engines (for disjoint
        intervals), but uses only forward clocks.
        """
        if isinstance(spec, str):
            spec = parse_spec(spec)
        x = self._closed(x_name)
        y = self._closed(y_name)
        if isinstance(spec, RelationSpec):
            xf, xl = self._proxy_bounds(x, spec.proxy_x)
            yf, yl = self._proxy_bounds(y, spec.proxy_y)
            return self._eval_base(spec.relation, xf, xl, yf, yl)
        return self._eval_base(spec, x.first, x.last, y.first, y.last)

    def _atom_eval(self, atom: Atom) -> bool:
        return self.holds(atom.spec, atom.left, atom.right)

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def to_execution(self) -> Execution:
        """Finalise the observed trace into an offline execution.

        The monitor already maintains every forward vector timestamp
        (they are what the past-only conditions consume), so the
        execution is seeded with them instead of re-running the forward
        pass — and the reverse structure stays unbuilt until a
        future-cut consumer actually asks for it.  Ingestion plus
        finalisation therefore performs **zero** offline clock passes
        (regression-tested via
        :func:`repro.events.clocks.clock_pass_counts`).
        """
        trace = self._builder.build()
        forward = [
            np.stack(rows)
            if rows
            else np.zeros((0, self.num_nodes), dtype=np.int64)
            for rows in self._clocks
        ]
        return Execution(trace, forward_clocks=forward)

    def to_context(self):
        """Finalise into a shared :class:`~repro.core.context.AnalysisContext`.

        The offline hand-off point: the returned context owns the
        finalised execution (with the monitor's forward clocks adopted)
        and the cut cache every offline engine will share.
        """
        from ..core.context import AnalysisContext

        return AnalysisContext.of(self.to_execution())
