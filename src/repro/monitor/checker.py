"""Offline checking of synchronization conditions over recorded traces.

:class:`ConditionChecker` binds the interval names of a
:class:`~repro.monitor.predicates.Condition` to concrete nonatomic
events and evaluates it with a configurable relation engine, reporting
per-atom outcomes for diagnosis — the workflow of the paper's
Problem 4 applied to application-level requirements.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..core.evaluator import SynchronizationAnalyzer
from ..nonatomic.event import NonatomicEvent
from .predicates import Atom, Condition, parse_condition

__all__ = ["AtomOutcome", "CheckReport", "ConditionChecker"]


@dataclass(frozen=True, slots=True)
class AtomOutcome:
    """Result of one relation atom within a condition."""

    atom: Atom
    value: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.atom} = {self.value}"


@dataclass(frozen=True, slots=True)
class CheckReport:
    """Outcome of checking one condition against bound intervals."""

    condition: Condition
    passed: bool
    atoms: tuple[AtomOutcome, ...]

    @property
    def failing_atoms(self) -> tuple[AtomOutcome, ...]:
        """Atoms that evaluated False (diagnostic aid; note that under
        negations a False atom is not necessarily the *cause* of a
        failed condition)."""
        return tuple(a for a in self.atoms if not a.value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        lines = [f"[{status}] {self.condition}"]
        lines.extend(f"    {a}" for a in self.atoms)
        return "\n".join(lines)


class ConditionChecker:
    """Evaluate parsed or textual conditions against named intervals.

    Parameters
    ----------
    analyzer:
        The relation evaluator (engine choice, proxy definition and
        disjointness policy are configured there).
    """

    def __init__(self, analyzer: SynchronizationAnalyzer) -> None:
        self.analyzer = analyzer

    def check(
        self,
        condition: str | Condition,
        bindings: Mapping[str, NonatomicEvent],
    ) -> CheckReport:
        """Check one condition.

        Parameters
        ----------
        condition:
            A :class:`Condition` or its textual form.
        bindings:
            Maps every interval name the condition mentions to a
            nonatomic event of the analyzer's execution.

        Raises
        ------
        KeyError
            If a mentioned name is unbound.
        """
        if isinstance(condition, str):
            condition = parse_condition(condition)
        missing = condition.names() - set(bindings)
        if missing:
            raise KeyError(
                f"condition mentions unbound interval(s): {sorted(missing)}"
            )
        outcomes: dict[Atom, bool] = {}

        def atom_eval(atom: Atom) -> bool:
            if atom not in outcomes:
                outcomes[atom] = self.analyzer.holds(
                    atom.spec, bindings[atom.left], bindings[atom.right]
                )
            return outcomes[atom]

        passed = condition.evaluate(atom_eval)
        return CheckReport(
            condition=condition,
            passed=passed,
            atoms=tuple(AtomOutcome(a, v) for a, v in outcomes.items()),
        )

    def check_all(
        self,
        conditions: Mapping[str, str | Condition],
        bindings: Mapping[str, NonatomicEvent],
    ) -> dict[str, CheckReport]:
        """Check a named set of conditions against shared bindings."""
        return {
            name: self.check(cond, bindings) for name, cond in conditions.items()
        }
