"""Synchronization-condition specification, checking and online monitoring."""

from .checker import AtomOutcome, CheckReport, ConditionChecker
from .online import OnlineInterval, OnlineMonitor, WatchNotification
from .predicates import (
    And,
    Atom,
    Condition,
    Implies,
    Not,
    Or,
    ParseError,
    parse_condition,
)

__all__ = [
    "Condition",
    "Atom",
    "Not",
    "And",
    "Or",
    "Implies",
    "parse_condition",
    "ParseError",
    "ConditionChecker",
    "CheckReport",
    "AtomOutcome",
    "OnlineMonitor",
    "OnlineInterval",
    "WatchNotification",
]
