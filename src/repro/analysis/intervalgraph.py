"""Interval-level precedence structure of an execution.

Once an application has identified its nonatomic events, the natural
next question is the *global picture*: which activities precede which,
what can be said to have run concurrently, and in what layers the
activities could be serialised.  This module lifts the pairwise
relations to that level:

* :func:`interval_order_graph` — the digraph of one relation over a
  set of intervals (vectorised via :mod:`repro.core.pairwise`);
* :func:`concurrent_pairs` — interval pairs with no R4 coupling in
  either direction (fully causally independent);
* :func:`serialization_layers` — topological generations of the
  ``R1(U,L)`` order: a schedule-like layering where each layer's
  activities are mutually unordered.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from ..core.pairwise import IntervalSetMatrices
from ..core.relations import Relation, RelationSpec, parse_spec
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import Proxy

__all__ = [
    "interval_order_graph",
    "concurrent_pairs",
    "serialization_layers",
]

_DEFAULT_ORDER = RelationSpec(Relation.R1, Proxy.U, Proxy.L)


def _names(intervals: Sequence[NonatomicEvent]) -> list[str]:
    return [
        iv.name if iv.name is not None else f"I{k}"
        for k, iv in enumerate(intervals)
    ]


def interval_order_graph(
    intervals: Sequence[NonatomicEvent],
    spec: str | Relation | RelationSpec = _DEFAULT_ORDER,
) -> "nx.DiGraph":
    """Digraph with an edge ``a → b`` whenever ``spec(a, b)`` holds.

    Nodes are interval names (positional fallbacks ``I<k>``); each node
    carries its interval under the ``"interval"`` attribute.  For the
    default ``R1(U,L)`` order over pairwise-disjoint intervals the
    result is a DAG (asymmetry of R1).
    """
    if isinstance(spec, str):
        spec = parse_spec(spec)
    names = _names(intervals)
    if len(set(names)) != len(names):
        raise ValueError("interval names must be unique")
    g = nx.DiGraph()
    for name, iv in zip(names, intervals, strict=True):
        g.add_node(name, interval=iv)
    if len(intervals) >= 2:
        mats = IntervalSetMatrices(list(intervals))
        matrix = (
            mats.relation_matrix(spec)
            if isinstance(spec, Relation)
            else mats.spec_matrix(spec)
        )
        for i, a in enumerate(names):
            for j, b in enumerate(names):
                if i != j and matrix[i, j]:
                    g.add_edge(a, b)
    return g


def concurrent_pairs(
    intervals: Sequence[NonatomicEvent],
) -> list[tuple[str, str]]:
    """Interval pairs with no causal coupling at all.

    A pair is *fully concurrent* when ``R4`` holds in neither
    direction: no component of one precedes any component of the
    other.  Returned as sorted name pairs.
    """
    names = _names(intervals)
    if len(intervals) < 2:
        return []
    matrix = IntervalSetMatrices(list(intervals)).relation_matrix(Relation.R4)
    out: list[tuple[str, str]] = []
    for i in range(len(intervals)):
        for j in range(i + 1, len(intervals)):
            if not matrix[i, j] and not matrix[j, i]:
                out.append((names[i], names[j]))
    return out


def serialization_layers(
    intervals: Sequence[NonatomicEvent],
    spec: str | Relation | RelationSpec = _DEFAULT_ORDER,
) -> list[list[str]]:
    """Topological generations of the interval order.

    Layer ``t`` holds the intervals whose every ``spec``-predecessor
    sits in earlier layers; intervals within a layer are mutually
    unordered under ``spec``.  Raises :class:`ValueError` if the chosen
    relation produces a cyclic graph (possible for symmetric relations
    such as R4 — use an asymmetric one like the default).
    """
    g = interval_order_graph(intervals, spec)
    try:
        return [sorted(layer) for layer in nx.topological_generations(g)]
    except nx.NetworkXUnfeasible as exc:
        raise ValueError(
            "interval order graph is cyclic; use an asymmetric relation "
            "(e.g. R1(U,L)) for serialization layers"
        ) from exc
