"""Structural metrics of distributed executions.

Quantities a practitioner inspects before trusting relation results on
a trace — how concurrent it is, how chatty, how long its causal
critical path runs.  Used by the workload generators' tests (to verify
the generators produce the communication structure they advertise) and
by the examples' reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.event import EventId
from ..events.poset import Execution

__all__ = [
    "ExecutionMetrics",
    "concurrency_ratio",
    "critical_path",
    "message_stats",
    "summarize",
]


def concurrency_ratio(execution: Execution, sample: int | None = None,
                      seed: int = 0) -> float:
    """Fraction of distinct cross-node event pairs that are concurrent.

    1.0 means no cross-node causality at all (no delivered messages);
    0.0 means a totally ordered execution.  For large traces pass
    ``sample`` to estimate from that many random pairs.
    """
    ids = [eid for eid in execution.iter_ids()]
    cross = [
        (a, b)
        for i, a in enumerate(ids)
        for b in ids[i + 1 :]
        if a[0] != b[0]
    ]
    if not cross:
        return 1.0
    if sample is not None and sample < len(cross):
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(cross), size=sample, replace=False)
        cross = [cross[int(i)] for i in picks]
    concurrent = sum(1 for a, b in cross if execution.concurrent(a, b))
    return concurrent / len(cross)


def critical_path(execution: Execution) -> tuple[int, tuple[EventId, ...]]:
    """The longest causal chain of real events.

    Returns ``(length, chain)``; the chain is one witness path.  This
    is the execution's inherent sequential depth — the lower bound on
    its makespan regardless of resources.
    """
    import networkx as nx

    g = execution.to_networkx()
    if g.number_of_nodes() == 0:
        return 0, ()
    path = nx.dag_longest_path(g)
    return len(path), tuple(path)


@dataclass(frozen=True, slots=True)
class MessageStats:
    """Summary of a trace's communication."""

    sent: int
    delivered: int
    lost: int
    channels: int  # distinct (src, dst) pairs used

    @property
    def loss_rate(self) -> float:
        """Fraction of sends without a matching receive."""
        return self.lost / self.sent if self.sent else 0.0


def message_stats(execution: Execution) -> MessageStats:
    """Count sends, deliveries, losses and active channels."""
    from ..events.event import EventKind

    sends = sum(
        1 for ev in execution.trace.iter_events() if ev.kind is EventKind.SEND
    )
    delivered = len(execution.trace.messages)
    channels = {
        (msg.send[0], msg.recv[0]) for msg in execution.trace.messages
    }
    return MessageStats(
        sent=sends,
        delivered=delivered,
        lost=sends - delivered,
        channels=len(channels),
    )


@dataclass(frozen=True, slots=True)
class ExecutionMetrics:
    """Bundle of all structural metrics for one execution."""

    num_nodes: int
    total_events: int
    messages: MessageStats
    concurrency: float
    critical_path_length: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.num_nodes} nodes, {self.total_events} events, "
            f"{self.messages.delivered} messages "
            f"({self.messages.loss_rate:.0%} lost), "
            f"concurrency {self.concurrency:.2f}, "
            f"critical path {self.critical_path_length}"
        )


def summarize(
    execution: Execution, concurrency_sample: int | None = 2000
) -> ExecutionMetrics:
    """Compute the full metric bundle (sampled concurrency by default)."""
    return ExecutionMetrics(
        num_nodes=execution.num_nodes,
        total_events=execution.trace.total_events,
        messages=message_stats(execution),
        concurrency=concurrency_ratio(execution, sample=concurrency_sample),
        critical_path_length=critical_path(execution)[0],
    )
