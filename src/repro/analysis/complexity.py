"""Complexity accounting and empirical scaling analysis.

Connects the paper's count claims to measurements:

* :func:`predicted_comparisons` — the per-relation comparison counts
  this reproduction's engines are designed to achieve (the paper's
  Theorem 20 table, amended for the R2'/R3 anchoring deviation — see
  ``repro.core.linear``);
* :func:`measure_comparisons` — run an instrumented engine over
  interval pairs and collect actual counts;
* :func:`fit_power_law` — least-squares slope of ``log(count)`` vs
  ``log(n)``, used by the benchmarks to verify that the linear engine
  scales with exponent ≈ 1 while the polynomial baseline scales with
  exponent ≈ 2 in the node count.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

import numpy as np

from ..core.counting import ComparisonCounter
from ..core.relations import BASE_RELATIONS, Relation
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent

__all__ = [
    "predicted_comparisons",
    "worst_case_comparisons",
    "measure_comparisons",
    "fit_power_law",
]


def predicted_comparisons(
    relation: Relation, n_x: int, n_y: int, engine: str = "linear"
) -> int:
    """Worst-case integer comparisons to evaluate ``relation``.

    For the ``linear`` engine this is the Theorem-20 table with the
    anchoring amendment (R2' costs ``|N_Y|``, R3 costs ``|N_X|``); for
    ``polynomial`` it is ``|N_X| · |N_Y|``.  Naive costs depend on
    ``|X| · |Y|``, not the node counts, and are not modelled here.
    """
    if engine == "polynomial":
        return n_x * n_y
    if engine != "linear":
        raise ValueError(f"no count model for engine {engine!r}")
    if relation in (Relation.R1, Relation.R1P):
        return min(n_x, n_y)
    if relation is Relation.R2:
        return n_x
    if relation is Relation.R2P:
        return n_y
    if relation is Relation.R3:
        return n_x
    if relation is Relation.R3P:
        return n_y
    if relation in (Relation.R4, Relation.R4P):
        return min(n_x, n_y)
    raise ValueError(f"unknown relation: {relation!r}")  # pragma: no cover


def worst_case_comparisons(n_x: int, n_y: int, engine: str = "linear") -> dict[Relation, int]:
    """The full per-relation count table for one ``(|N_X|, |N_Y|)``."""
    return {
        rel: predicted_comparisons(rel, n_x, n_y, engine)
        for rel in BASE_RELATIONS
    }


def measure_comparisons(
    engine_factory: Callable[[Execution, ComparisonCounter], object],
    execution: Execution,
    pairs: Iterable[tuple[NonatomicEvent, NonatomicEvent]],
    relations: Sequence[Relation] = BASE_RELATIONS,
) -> dict[Relation, list[int]]:
    """Measure actual comparison counts per relation over interval pairs.

    ``engine_factory(execution, counter)`` must build an engine whose
    ``evaluate`` records into ``counter``.  Each (relation, pair)
    evaluation contributes one count (query-time comparisons only; cut
    construction is pre-warmed so the one-time setup cost is excluded,
    mirroring the paper's accounting).
    """
    from ..core.cuts import cuts_of  # local import to avoid cycles
    from ..nonatomic.proxies import Proxy, proxy_of

    counter = ComparisonCounter()
    engine = engine_factory(execution, counter)
    out: dict[Relation, list[int]] = {rel: [] for rel in relations}
    pairs = list(pairs)
    for x, y in pairs:
        # pre-warm cut caches so only query comparisons are counted
        cuts_of(x), cuts_of(y)
        for p in (Proxy.L, Proxy.U):
            cuts_of(proxy_of(x, p)), cuts_of(proxy_of(y, p))
        for rel in relations:
            before = counter.total
            engine.evaluate(rel, x, y)
            out[rel].append(counter.total - before)
    return out


def fit_power_law(ns: Sequence[float], counts: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit ``count ≈ a · n^b``; returns ``(b, a)``.

    Used to verify scaling shapes: the linear engine's counts fit
    ``b ≈ 1`` in the node count, the polynomial baseline's ``b ≈ 2``.
    Zero counts are clamped to 1 before the log transform.
    """
    ns = np.asarray(ns, dtype=float)
    counts = np.maximum(np.asarray(counts, dtype=float), 1.0)
    if ns.size < 2:
        raise ValueError("need at least two points to fit")
    b, log_a = np.polyfit(np.log(ns), np.log(counts), 1)
    return float(b), float(np.exp(log_a))
