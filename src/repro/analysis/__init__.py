"""Complexity accounting and empirical scaling analysis."""

from .complexity import (
    fit_power_law,
    measure_comparisons,
    predicted_comparisons,
    worst_case_comparisons,
)
from .intervalgraph import (
    concurrent_pairs,
    interval_order_graph,
    serialization_layers,
)
from .metrics import (
    ExecutionMetrics,
    concurrency_ratio,
    critical_path,
    message_stats,
    summarize,
)

__all__ = [
    "predicted_comparisons",
    "worst_case_comparisons",
    "measure_comparisons",
    "fit_power_law",
    "interval_order_graph",
    "concurrent_pairs",
    "serialization_layers",
    "ExecutionMetrics",
    "concurrency_ratio",
    "critical_path",
    "message_stats",
    "summarize",
]
