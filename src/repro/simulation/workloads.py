"""Workload generators: parameterised families of execution traces.

These build traces directly through :class:`TraceBuilder` (no simulator
loop), which makes them fast enough for the complexity sweeps of the
benchmark harness while still exercising every communication structure
the paper's motivating applications exhibit:

* :func:`random_trace` — unstructured peer-to-peer chatter with a
  tunable message rate (the default property-test/benchmark workload);
* :func:`ring_trace` — token circulation (mutual-exclusion style);
* :func:`pipeline_trace` — items flowing through consecutive stages
  (multimedia/stream processing style);
* :func:`broadcast_trace` — root-initiated fan-out rounds with acks
  (coordination/command style);
* :func:`client_server_trace` — request/response against one server;
* :func:`barrier_trace` — coordinator barriers separating phases
  (iterative real-time control style);
* :func:`layered_trace` — periodic sensor → controller → actuator
  rounds (industrial process-control style).

All generators stamp events with a synthetic physical ``time`` (a
global step counter) so that time-window selection works, and all are
deterministic given a seed.
"""

from __future__ import annotations


import numpy as np

from ..events.builder import MessageHandle, TraceBuilder
from ..events.poset import Execution
from ..events.trace import Trace

__all__ = [
    "random_trace",
    "random_execution",
    "ring_trace",
    "pipeline_trace",
    "broadcast_trace",
    "client_server_trace",
    "barrier_trace",
    "layered_trace",
    "scatter_gather_trace",
    "primary_backup_trace",
]


def _rng_of(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def random_trace(
    num_nodes: int,
    events_per_node: int = 20,
    msg_prob: float = 0.3,
    seed: int | np.random.Generator = 0,
    min_events_per_node: int = 1,
) -> Trace:
    """Unstructured random execution.

    Nodes take turns (uniformly at random) performing steps until every
    node has ``events_per_node`` events.  Each step is, with probability
    ``msg_prob``, a send to a random other node (delivered at a later
    step, preserving acyclicity and rough FIFO order); with probability
    ``msg_prob`` a delivery of the oldest in-flight message addressed to
    the node (if any); otherwise an internal event.

    Parameters
    ----------
    num_nodes:
        ``|P|``.
    events_per_node:
        Target ``k_i`` for every node (capped, so the trace shape is
        exactly ``num_nodes × events_per_node`` when
        ``min_events_per_node <= events_per_node``).
    msg_prob:
        Communication intensity in ``[0, 1)``.
    seed:
        Integer seed or an existing generator.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if events_per_node < min_events_per_node:
        raise ValueError("events_per_node must be >= min_events_per_node")
    rng = _rng_of(seed)
    b = TraceBuilder(num_nodes)
    in_flight: dict[int, list[MessageHandle]] = {i: [] for i in range(num_nodes)}
    step = 0
    active = list(range(num_nodes))
    while active:
        node = active[int(rng.integers(0, len(active)))]
        step += 1
        t = float(step)
        r = rng.random()
        if r < msg_prob and num_nodes > 1:
            dst_choices = [d for d in range(num_nodes) if d != node]
            dst = dst_choices[int(rng.integers(0, len(dst_choices)))]
            in_flight[dst].append(b.send(node, time=t))
        elif r < 2 * msg_prob and in_flight[node]:
            b.recv(node, in_flight[node].pop(0), time=t)
        else:
            b.internal(node, time=t)
        if b.count(node) >= events_per_node:
            active.remove(node)
    return b.build()


def random_execution(
    num_nodes: int,
    events_per_node: int = 20,
    msg_prob: float = 0.3,
    seed: int | np.random.Generator = 0,
) -> Execution:
    """:func:`random_trace`, analysed."""
    return Execution(
        random_trace(num_nodes, events_per_node, msg_prob, seed)
    )


def ring_trace(num_nodes: int, rounds: int = 3, work_per_hop: int = 1) -> Trace:
    """A token circulating around the ring ``0 → 1 → ... → 0``.

    Each hop performs ``work_per_hop`` internal events (labelled
    ``"work"``) before forwarding; the token send/receive events are
    labelled ``"token"``.  The classic total-order backbone workload.
    """
    if num_nodes < 2:
        raise ValueError("ring needs >= 2 nodes")
    b = TraceBuilder(num_nodes)
    t = 0.0
    handle = None
    for _rnd in range(rounds):
        for node in range(num_nodes):
            if handle is not None:
                t += 1.0
                b.recv(node, handle, label="token", time=t)
            for _ in range(work_per_hop):
                t += 1.0
                b.internal(node, label="work", time=t)
            t += 1.0
            handle = b.send(node, label="token", time=t)
    # final hand-back to node 0 closes the last round
    t += 1.0
    b.recv(0, handle, label="token", time=t)
    return b.build()


def pipeline_trace(num_stages: int, items: int = 5, work_per_item: int = 1) -> Trace:
    """Items flowing through a linear pipeline of stages.

    Item ``j`` enters at stage 0, is processed (``work_per_item``
    internal events labelled ``f"item{j}"``) and forwarded until it
    leaves stage ``num_stages - 1``.  Stages interleave items in FIFO
    order, so consecutive items' processing intervals overlap — the
    structure behind the paper's stream-synchronisation examples.
    """
    if num_stages < 2:
        raise ValueError("pipeline needs >= 2 stages")
    b = TraceBuilder(num_stages)
    t = 0.0
    # per-stage queue of (item, handle) awaiting receive
    inbox: list[list[tuple[int, MessageHandle]]] = [[] for _ in range(num_stages)]
    for j in range(items):
        t += 1.0
        for _ in range(work_per_item):
            b.internal(0, label=f"item{j}", time=t)
            t += 1.0
        inbox[1].append((j, b.send(0, label=f"item{j}", time=t)))
        # drain downstream stages breadth-first so items interleave
        for stage in range(1, num_stages):
            while inbox[stage]:
                item, h = inbox[stage].pop(0)
                t += 1.0
                b.recv(stage, h, label=f"item{item}", time=t)
                for _ in range(work_per_item):
                    t += 1.0
                    b.internal(stage, label=f"item{item}", time=t)
                if stage + 1 < num_stages:
                    t += 1.0
                    inbox[stage + 1].append(
                        (item, b.send(stage, label=f"item{item}", time=t))
                    )
    return b.build()


def broadcast_trace(num_nodes: int, rounds: int = 2, root: int = 0) -> Trace:
    """Fan-out/fan-in rounds: root broadcasts, everyone acknowledges.

    Round ``r`` events are labelled ``f"bcast{r}"`` / ``f"ack{r}"``.
    Each full round is a nonatomic event spanning all nodes, ordered
    R1-before the next round — a canonical strong-synchronisation
    workload.
    """
    if num_nodes < 2:
        raise ValueError("broadcast needs >= 2 nodes")
    if not (0 <= root < num_nodes):
        raise ValueError("root out of range")
    b = TraceBuilder(num_nodes)
    t = 0.0
    for rnd in range(rounds):
        sends = {}
        for dst in range(num_nodes):
            if dst == root:
                continue
            t += 1.0
            sends[dst] = b.send(root, label=f"bcast{rnd}", time=t)
        acks = {}
        for dst in range(num_nodes):
            if dst == root:
                continue
            t += 1.0
            b.recv(dst, sends[dst], label=f"bcast{rnd}", time=t)
            t += 1.0
            acks[dst] = b.send(dst, label=f"ack{rnd}", time=t)
        for dst in range(num_nodes):
            if dst == root:
                continue
            t += 1.0
            b.recv(root, acks[dst], label=f"ack{rnd}", time=t)
    return b.build()


def client_server_trace(
    num_clients: int,
    requests_per_client: int = 3,
    seed: int | np.random.Generator = 0,
) -> Trace:
    """Clients issuing requests against a single server (node 0).

    Requests from different clients interleave at the server in a
    random (seeded) order; each request is ``req`` → server ``handle``
    → ``resp`` → client ``done``.  Labels carry client and sequence
    number (e.g. ``"req:c2#1"``).
    """
    if num_clients < 1:
        raise ValueError("need >= 1 client")
    rng = _rng_of(seed)
    num_nodes = num_clients + 1
    b = TraceBuilder(num_nodes)
    t = 0.0
    remaining = {c: requests_per_client for c in range(1, num_nodes)}
    awaiting: dict[int, MessageHandle] = {}
    while remaining or awaiting:
        # choose: issue a new request or serve a pending one
        issuers = [c for c, n in remaining.items() if n > 0 and c not in awaiting]
        serve = list(awaiting)
        if issuers and (not serve or rng.random() < 0.5):
            c = issuers[int(rng.integers(0, len(issuers)))]
            seq = requests_per_client - remaining[c] + 1
            t += 1.0
            awaiting[c] = b.send(c, label=f"req:c{c}#{seq}", time=t)
            remaining[c] -= 1
            if remaining[c] == 0:
                del remaining[c]
        elif serve:
            c = serve[int(rng.integers(0, len(serve)))]
            h = awaiting.pop(c)
            t += 1.0
            b.recv(0, h, label=f"handle:c{c}", time=t)
            t += 1.0
            resp = b.send(0, label=f"resp:c{c}", time=t)
            t += 1.0
            b.recv(c, resp, label=f"done:c{c}", time=t)
    return b.build()


def barrier_trace(num_nodes: int, phases: int = 3, work_per_phase: int = 2,
                  coordinator: int = 0) -> Trace:
    """Coordinator-based barrier separating computation phases.

    Each phase: every node does ``work_per_phase`` internal events
    (labelled ``f"phase{p}"``), reports to the coordinator, and waits
    for the release before starting the next phase.  Phase ``p``'s
    events are R1-before phase ``p+1``'s — the workload behind the
    paper's strongest relation.
    """
    if num_nodes < 2:
        raise ValueError("barrier needs >= 2 nodes")
    b = TraceBuilder(num_nodes)
    t = 0.0
    for phase in range(phases):
        arrive = {}
        for node in range(num_nodes):
            for _ in range(work_per_phase):
                t += 1.0
                b.internal(node, label=f"phase{phase}", time=t)
            if node != coordinator:
                t += 1.0
                arrive[node] = b.send(node, label=f"arrive{phase}", time=t)
        for node, h in arrive.items():
            t += 1.0
            b.recv(coordinator, h, label=f"arrive{phase}", time=t)
        release = {}
        for node in range(num_nodes):
            if node != coordinator:
                t += 1.0
                release[node] = b.send(coordinator, label=f"release{phase}", time=t)
        for node, h in release.items():
            t += 1.0
            b.recv(node, h, label=f"release{phase}", time=t)
    return b.build()


def layered_trace(
    num_sensors: int = 3,
    num_actuators: int = 2,
    periods: int = 4,
) -> Trace:
    """Periodic sensor → controller → actuator control rounds.

    Node layout: sensors ``0..S-1``, controller ``S``, actuators
    ``S+1..S+A``.  Each period: sensors sample (``sample{p}``) and
    report; the controller fuses (``fuse{p}``) and commands; actuators
    apply (``apply{p}``) and acknowledge; the controller collects the
    acks before commanding the next period (closing the control loop
    causally, so consecutive actuation rounds are R1-ordered).  The
    industrial-process-control workload of the paper's introduction.
    """
    if num_sensors < 1 or num_actuators < 1:
        raise ValueError("need >= 1 sensor and >= 1 actuator")
    S, A = num_sensors, num_actuators
    ctrl = S
    b = TraceBuilder(S + 1 + A)
    t = 0.0
    for p in range(periods):
        reports = []
        for s in range(S):
            t += 1.0
            b.internal(s, label=f"sample{p}", time=t)
            t += 1.0
            reports.append(b.send(s, label=f"report{p}", time=t))
        for h in reports:
            t += 1.0
            b.recv(ctrl, h, label=f"report{p}", time=t)
        t += 1.0
        b.internal(ctrl, label=f"fuse{p}", time=t)
        cmds = []
        for a in range(A):
            t += 1.0
            cmds.append((a, b.send(ctrl, label=f"cmd{p}", time=t)))
        acks = []
        for a, h in cmds:
            t += 1.0
            b.recv(ctrl + 1 + a, h, label=f"cmd{p}", time=t)
            t += 1.0
            b.internal(ctrl + 1 + a, label=f"apply{p}", time=t)
            t += 1.0
            acks.append(b.send(ctrl + 1 + a, label=f"ack{p}", time=t))
        for h in acks:
            t += 1.0
            b.recv(ctrl, h, label=f"ack{p}", time=t)
    return b.build()


def scatter_gather_trace(
    num_workers: int,
    jobs: int = 3,
    work_per_task: int = 2,
    straggler: int | None = None,
) -> Trace:
    """Map-reduce style scatter/gather jobs against one coordinator.

    Node 0 scatters job ``j`` to every worker (``scatter{j}``), workers
    compute (``map{j}``) and reply (``reduce{j}``), and the coordinator
    closes the job (``done{j}``) after gathering all replies — so job
    ``j``'s map phase is R1-before ``done{j}`` and R2'-before job
    ``j+1``'s scatter.  ``straggler`` (a worker index) doubles that
    worker's compute events, stretching the gather without changing the
    causal shape.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    b = TraceBuilder(num_workers + 1)
    t = 0.0
    for j in range(jobs):
        handles = []
        for w in range(1, num_workers + 1):
            t += 1.0
            handles.append((w, b.send(0, label=f"scatter{j}", time=t)))
        replies = []
        for w, h in handles:
            t += 1.0
            b.recv(w, h, label=f"scatter{j}", time=t)
            reps = work_per_task * (2 if straggler == w - 1 else 1)
            for _ in range(reps):
                t += 1.0
                b.internal(w, label=f"map{j}", time=t)
            t += 1.0
            replies.append(b.send(w, label=f"reduce{j}", time=t))
        for h in replies:
            t += 1.0
            b.recv(0, h, label=f"reduce{j}", time=t)
        t += 1.0
        b.internal(0, label=f"done{j}", time=t)
    return b.build()


def primary_backup_trace(
    num_backups: int,
    updates: int = 4,
    sync: bool = True,
) -> Trace:
    """Primary-backup replication of a sequence of updates.

    Node 0 is the primary; nodes ``1..B`` are backups.  Each update
    ``u`` is applied at the primary (``apply{u}``), replicated to every
    backup (``repl{u}``), and — in ``sync`` mode — acknowledged before
    the next update is accepted, making update ``u``'s replication
    R1-before update ``u+1``'s application.  In async mode the primary
    streams on without waiting, so consecutive updates only satisfy the
    weaker per-backup ordering (R2, via FIFO replication), not R1.
    """
    if num_backups < 1:
        raise ValueError("need at least one backup")
    b = TraceBuilder(num_backups + 1)
    t = 0.0
    for u in range(updates):
        t += 1.0
        b.internal(0, label=f"apply{u}", time=t)
        sends = []
        for bk in range(1, num_backups + 1):
            t += 1.0
            sends.append((bk, b.send(0, label=f"repl{u}", time=t)))
        acks = []
        for bk, h in sends:
            t += 1.0
            b.recv(bk, h, label=f"repl{u}", time=t)
            if sync:
                t += 1.0
                acks.append(b.send(bk, label=f"ack{u}", time=t))
        for h in acks:
            t += 1.0
            b.recv(0, h, label=f"ack{u}", time=t)
    return b.build()
