"""Process programming model for the simulator.

A simulated node is a :class:`Process` subclass reacting to three
stimuli — start, message delivery, timer expiry — through a
:class:`Context` that records events into the trace and schedules
further activity.  This mirrors the standard reactive model of
distributed-algorithm simulators, which is all the paper's trace-based
analysis needs.
"""

from __future__ import annotations

import abc
from typing import Any, TYPE_CHECKING

import numpy as np

from ..events.event import EventId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

__all__ = ["Context", "Process", "FunctionProcess"]


class Context:
    """Per-callback handle a process uses to act.

    All actions record an event on the process's own node at the
    current simulation time and return its :data:`EventId` (sends
    return it too, so applications can collect event ids into nonatomic
    events as they go).
    """

    __slots__ = ("_sim", "node")

    def __init__(self, sim: "Simulator", node: int) -> None:
        self._sim = sim
        self.node = node

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._sim.now

    @property
    def num_nodes(self) -> int:
        """Number of simulated nodes."""
        return self._sim.num_nodes

    @property
    def rng(self) -> np.random.Generator:
        """The simulation-wide random generator (seeded, reproducible)."""
        return self._sim.rng

    def internal(self, label: str | None = None, payload: Any = None) -> EventId:
        """Record an internal event."""
        return self._sim._record_internal(self.node, label, payload)

    def send(
        self,
        dst: int,
        payload: Any = None,
        label: str | None = None,
    ) -> EventId:
        """Record a send event and hand the message to the network."""
        return self._sim._record_send(self.node, dst, payload, label)

    def broadcast(
        self, payload: Any = None, label: str | None = None
    ) -> list[EventId]:
        """Send to every other node; returns the send event ids."""
        return [
            self.send(dst, payload=payload, label=label)
            for dst in range(self.num_nodes)
            if dst != self.node
        ]

    def set_timer(self, delay: float, tag: Any = None) -> None:
        """Schedule an ``on_timer`` callback ``delay`` time units later."""
        self._sim._schedule_timer(self.node, delay, tag)

    def stop(self) -> None:
        """Ask the simulator to stop after the current callback."""
        self._sim._stop_requested = True


class Process(abc.ABC):
    """A reactive simulated node.

    Subclass and override any of the three callbacks; each receives a
    :class:`Context` bound to this node at the current time.
    """

    def on_start(self, ctx: Context) -> None:
        """Called once at time 0 (node order)."""

    def on_message(
        self, ctx: Context, payload: Any, label: str | None, src: int
    ) -> None:
        """Called when a message addressed to this node is delivered.

        The receive event has already been recorded; this hook performs
        the node's *reaction* (which may record further events).
        """

    def on_timer(self, ctx: Context, tag: Any) -> None:
        """Called when a timer set via :meth:`Context.set_timer` fires."""


class FunctionProcess(Process):
    """Adapter turning plain callables into a :class:`Process`.

    Parameters are optional callables with the corresponding callback
    signatures; missing ones default to no-ops.
    """

    def __init__(self, on_start=None, on_message=None, on_timer=None) -> None:
        self._on_start = on_start
        self._on_message = on_message
        self._on_timer = on_timer

    def on_start(self, ctx: Context) -> None:
        if self._on_start:
            self._on_start(ctx)

    def on_message(self, ctx, payload, label, src) -> None:
        if self._on_message:
            self._on_message(ctx, payload, label, src)

    def on_timer(self, ctx: Context, tag) -> None:
        if self._on_timer:
            self._on_timer(ctx, tag)
