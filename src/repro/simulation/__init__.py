"""Distributed-execution simulator and workload generators."""

from .engine import SimulationResult, Simulator, simulate
from .network import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    Network,
    UniformLatency,
)
from .process import Context, FunctionProcess, Process
from .scenarios import Figure1, Figure2, Figure3, figure1, figure2, figure3
from .workloads import (
    barrier_trace,
    primary_backup_trace,
    scatter_gather_trace,
    broadcast_trace,
    client_server_trace,
    layered_trace,
    pipeline_trace,
    random_execution,
    random_trace,
    ring_trace,
)

__all__ = [
    "Simulator",
    "SimulationResult",
    "simulate",
    "Network",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "Process",
    "FunctionProcess",
    "Context",
    "random_trace",
    "random_execution",
    "ring_trace",
    "pipeline_trace",
    "broadcast_trace",
    "client_server_trace",
    "barrier_trace",
    "layered_trace",
    "scatter_gather_trace",
    "primary_backup_trace",
    "Figure1",
    "Figure2",
    "Figure3",
    "figure1",
    "figure2",
    "figure3",
]
