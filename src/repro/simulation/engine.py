"""Discrete-event message-passing simulator.

Produces the *recorded traces of distributed computations* that the
paper's Problem 4 takes as input.  The engine is a classic
priority-queue discrete-event loop:

* processes react to start / message / timer stimuli (:mod:`.process`);
* the network decides delivery times and losses (:mod:`.network`);
* every action appends an event (with its physical timestamp) to a
  :class:`~repro.events.builder.TraceBuilder`, so the happened-before
  structure falls out of the recorded send/receive pairs.

Determinism: all randomness flows through one seeded
``numpy.random.Generator``; equal seeds give identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

import numpy as np

from ..events.builder import MessageHandle, TraceBuilder
from ..events.event import EventId
from ..events.poset import Execution
from ..events.trace import Trace
from .network import Network
from .process import Context, Process

__all__ = ["Simulator", "SimulationResult", "simulate"]


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of one simulation run."""

    trace: Trace
    end_time: float
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    timers_fired: int

    def execute(self) -> Execution:
        """Analyse the trace (compute both timestamp structures)."""
        return Execution(self.trace)


@dataclass(order=True)
class _Item:
    time: float
    seq: int
    kind: str = field(compare=False)
    node: int = field(compare=False)
    payload: Any = field(compare=False, default=None)
    label: str | None = field(compare=False, default=None)
    src: int = field(compare=False, default=-1)
    handle: MessageHandle | None = field(compare=False, default=None)
    tag: Any = field(compare=False, default=None)


class Simulator:
    """Run a set of :class:`Process` objects over a :class:`Network`.

    Parameters
    ----------
    processes:
        One process per node; node ``i`` runs ``processes[i]``.
    network:
        Message-delivery policy (default: FIFO, constant latency 1).
    seed:
        Seed for the simulation-wide random generator.
    max_time:
        Hard stop: no stimulus later than this is delivered.
    max_events:
        Hard stop on the number of recorded events (guards runaway
        programs).
    crash_times:
        Optional crash-stop fault injection: ``{node: time}``.  From
        its crash time onward a node receives no deliveries and no
        timer callbacks (messages addressed to it are counted as
        dropped), so it records no further events — the standard
        crash-stop failure model.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        network: Network | None = None,
        seed: int = 0,
        max_time: float = float("inf"),
        max_events: int = 1_000_000,
        crash_times: dict[int, float] | None = None,
    ) -> None:
        if not processes:
            raise ValueError("need at least one process")
        self.processes: tuple[Process, ...] = tuple(processes)
        self.network = network if network is not None else Network()
        self.rng = np.random.default_rng(seed)
        self.max_time = float(max_time)
        self.max_events = int(max_events)
        self.crash_times = dict(crash_times or {})
        for node in self.crash_times:
            if not (0 <= node < len(self.processes)):
                raise ValueError(f"crash_times names unknown node {node}")
        self.now: float = 0.0
        self.num_nodes = len(self.processes)
        self._builder = TraceBuilder(self.num_nodes)
        self._queue: list[_Item] = []
        self._seq = itertools.count()
        self._stop_requested = False
        self._sent = 0
        self._delivered = 0
        self._dropped = 0
        self._timers = 0

    # ------------------------------------------------------------------
    # recording hooks (called by Context)
    # ------------------------------------------------------------------
    def _check_budget(self) -> None:
        total = sum(self._builder.count(i) for i in range(self.num_nodes))
        if total >= self.max_events:
            raise RuntimeError(
                f"simulation exceeded max_events={self.max_events}; "
                "likely an unbounded process program"
            )

    def _record_internal(self, node: int, label, payload) -> EventId:
        self._check_budget()
        return self._builder.internal(node, label=label, time=self.now,
                                      payload=payload)

    def _record_send(self, node: int, dst: int, payload, label) -> EventId:
        if not (0 <= dst < self.num_nodes):
            raise ValueError(f"send to unknown node {dst}")
        self._check_budget()
        handle = self._builder.send(node, label=label, time=self.now,
                                    payload=payload)
        self._sent += 1
        deliver_at = self.network.delivery_time(self.rng, node, dst, self.now)
        if deliver_at is None:
            self._dropped += 1
        else:
            heapq.heappush(
                self._queue,
                _Item(deliver_at, next(self._seq), "deliver", dst,
                      payload=payload, label=label, src=node, handle=handle),
            )
        return handle.send

    def _schedule_timer(self, node: int, delay: float, tag) -> None:
        if delay < 0:
            raise ValueError("timer delay must be >= 0")
        heapq.heappush(
            self._queue,
            _Item(self.now + delay, next(self._seq), "timer", node, tag=tag),
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute until quiescence, a stop request, or a limit."""
        self.network.reset()
        for node, proc in enumerate(self.processes):
            crash_at = self.crash_times.get(node)
            if crash_at is not None and crash_at <= 0.0:
                continue  # crashed before start
            proc.on_start(Context(self, node))
            if self._stop_requested:
                break
        while self._queue and not self._stop_requested:
            item = heapq.heappop(self._queue)
            if item.time > self.max_time:
                break
            crash_at = self.crash_times.get(item.node)
            if crash_at is not None and item.time >= crash_at:
                if item.kind == "deliver":
                    self._dropped += 1
                continue  # crash-stop: the node no longer reacts
            self.now = item.time
            ctx = Context(self, item.node)
            if item.kind == "deliver":
                self._builder.recv(
                    item.node, item.handle, label=item.label, time=self.now,
                    payload=item.payload,
                )
                self._delivered += 1
                self.processes[item.node].on_message(
                    ctx, item.payload, item.label, item.src
                )
            else:  # timer
                self._timers += 1
                self.processes[item.node].on_timer(ctx, item.tag)
        return SimulationResult(
            trace=self._builder.build(),
            end_time=self.now,
            messages_sent=self._sent,
            messages_delivered=self._delivered,
            messages_dropped=self._dropped,
            timers_fired=self._timers,
        )


def simulate(
    processes: Sequence[Process],
    network: Network | None = None,
    seed: int = 0,
    max_time: float = float("inf"),
    max_events: int = 1_000_000,
    crash_times: dict[int, float] | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(
        processes, network=network, seed=seed, max_time=max_time,
        max_events=max_events, crash_times=crash_times,
    ).run()
