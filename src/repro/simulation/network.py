"""Network models for the distributed-execution simulator.

The simulator needs only one thing from the network: *when* (and
whether) each message arrives.  A :class:`Network` combines a latency
model with optional FIFO channel ordering and message loss.  Losses are
legal in the event model — a send without a matching receive simply
contributes no causality edge.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "Network",
]


class LatencyModel(abc.ABC):
    """Samples per-message network delay."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        """One delay draw for a ``src → dst`` message (must be > 0)."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        self.delay = float(delay)

    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not (0 < low <= high):
            raise ValueError("need 0 < low <= high")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        return float(rng.uniform(self.low, self.high))


class ExponentialLatency(LatencyModel):
    """Exponentially distributed delay with the given mean, plus a
    floor so delays stay strictly positive."""

    def __init__(self, mean: float = 1.0, floor: float = 1e-6) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        self.mean = float(mean)
        self.floor = float(floor)

    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        return self.floor + float(rng.exponential(self.mean))


class Network:
    """Message-delivery policy: latency + FIFO ordering + loss.

    Parameters
    ----------
    latency:
        The delay distribution (default: constant 1.0).
    fifo:
        If True, deliveries on each directed channel ``(src, dst)``
        respect send order (delivery times are made monotone per
        channel).
    drop_prob:
        Probability that a message is silently lost.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        fifo: bool = True,
        drop_prob: float = 0.0,
    ) -> None:
        if not (0.0 <= drop_prob < 1.0):
            raise ValueError("drop_prob must be in [0, 1)")
        self.latency = latency if latency is not None else ConstantLatency()
        self.fifo = fifo
        self.drop_prob = float(drop_prob)
        self._last_delivery: dict[tuple[int, int], float] = {}

    def reset(self) -> None:
        """Clear per-channel FIFO state (called between simulations)."""
        self._last_delivery.clear()

    def delivery_time(
        self, rng: np.random.Generator, src: int, dst: int, send_time: float
    ) -> float | None:
        """Delivery time of a message sent at ``send_time`` (or None if
        dropped)."""
        if self.drop_prob and rng.random() < self.drop_prob:
            return None
        t = send_time + self.latency.sample(rng, src, dst)
        if self.fifo:
            key = (src, dst)
            prev = self._last_delivery.get(key, -np.inf)
            if t <= prev:
                t = np.nextafter(prev, np.inf)
            self._last_delivery[key] = t
        return t
