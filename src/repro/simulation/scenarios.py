"""Scripted reconstructions of the paper's figures.

The paper's three figures are drawings of small executions:

* **Figure 1** — two poset events X and Y on overlapping node sets,
  with their proxies ``L_X, U_X, L_Y, U_Y`` marked;
* **Figure 2** — a poset X of 8 atomic events on 4 node time lines,
  with the four cuts C1(X)–C4(X) and their surfaces drawn;
* **Figure 3** — the same X, showing the four cuts of each proxy
  ``L_X`` and ``U_X`` (8 cuts, 4 of which coincide with Figure 2's).

The exact event placement in the published figures is decorative; what
matters (and what the tests assert) is the *structure*: the containment
``C1 ⊆ C2``, ``C3 ⊆ C4``, distinct surfaces on every node line, the
proxy coincidences ``C1(L_X) = C1(X)``, ``C2(U_X) = C2(X)``,
``C3(L_X) = C3(X)``, ``C4(U_X) = C4(X)``, and nontrivial cross-node
causality through messages.  These scripted executions reproduce that
structure faithfully and are used by the figure-regeneration example
(``examples/paper_figures.py``) and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cuts import CutQuadruple, cuts_of
from ..events.builder import TraceBuilder
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import Proxy, proxy_of

__all__ = [
    "Figure1",
    "Figure2",
    "Figure3",
    "figure1",
    "figure2",
    "figure3",
]


@dataclass(frozen=True, slots=True)
class Figure1:
    """Figure 1's scenario: events X, Y and their four proxies."""

    execution: Execution
    x: NonatomicEvent
    y: NonatomicEvent
    lx: NonatomicEvent
    ux: NonatomicEvent
    ly: NonatomicEvent
    uy: NonatomicEvent


@dataclass(frozen=True, slots=True)
class Figure2:
    """Figure 2's scenario: an 8-event poset X on 4 nodes and its cuts."""

    execution: Execution
    x: NonatomicEvent
    cuts: CutQuadruple


@dataclass(frozen=True, slots=True)
class Figure3:
    """Figure 3's scenario: the 8 cuts of X's two proxies."""

    execution: Execution
    x: NonatomicEvent
    lx: NonatomicEvent
    ux: NonatomicEvent
    cuts_x: CutQuadruple
    cuts_lx: CutQuadruple
    cuts_ux: CutQuadruple


def figure1() -> Figure1:
    """Reconstruct Figure 1: poset events X and Y with their proxies.

    X spans nodes {0, 1, 2} and Y spans nodes {1, 2, 3}; a message from
    X's region into Y's region makes some (but not all) of the 32
    relations hold, so the pair exercises a nontrivial slice of the
    hierarchy.
    """
    b = TraceBuilder(4)
    t = iter(range(1, 100))

    # X's region: two events per node on nodes 0-2, stitched by messages.
    x_ids = []
    x_ids.append(b.internal(0, label="x", time=next(t)))
    m01 = b.send(0, time=next(t))
    x_ids.append(b.recv(1, m01, label="x", time=next(t)))
    x_ids.append(b.internal(2, label="x", time=next(t)))
    x_ids.append(b.internal(1, label="x", time=next(t)))
    m20 = b.send(2, time=next(t))
    x_ids.append(b.recv(0, m20, label="x", time=next(t)))
    x_ids.append(b.internal(2, label="x", time=next(t)))

    # bridge: X's region communicates towards Y's region
    bridge = b.send(1, time=next(t))

    # Y's region: two events per node on nodes 1-3.
    y_ids = []
    y_ids.append(b.recv(3, bridge, label="y", time=next(t)))
    y_ids.append(b.internal(1, label="y", time=next(t)))
    m32 = b.send(3, time=next(t))
    y_ids.append(b.recv(2, m32, label="y", time=next(t)))
    y_ids.append(b.internal(3, label="y", time=next(t)))
    y_ids.append(b.internal(2, label="y", time=next(t)))
    m13 = b.send(1, time=next(t))
    y_ids.append(b.recv(3, m13, label="y", time=next(t)))

    ex = b.execute()
    x = NonatomicEvent(ex, x_ids, name="X")
    y = NonatomicEvent(ex, y_ids, name="Y")
    return Figure1(
        execution=ex,
        x=x,
        y=y,
        lx=proxy_of(x, Proxy.L),
        ux=proxy_of(x, Proxy.U),
        ly=proxy_of(y, Proxy.L),
        uy=proxy_of(y, Proxy.U),
    )


def figure2() -> Figure2:
    """Reconstruct Figure 2: an 8-event poset X on 4 node lines.

    X takes two events per node (the shaded circles of the figure).
    A common-ancestor prefix (node 0 seeds every node) makes C1
    nontrivial, cross-node messages inside X's region order its
    components, and a gather/scatter suffix (through node 2) makes C4
    finish before the ``⊤`` events — so all four cuts have distinct,
    nontrivial surfaces, as drawn.
    """
    b = TraceBuilder(4)
    t = iter(range(1, 200))
    x_ids = []

    # --- common-ancestor prefix: node 0 seeds every node ------------
    a1 = b.send(0, time=next(t))                      # (0,1) -> node 1
    a2 = b.send(0, time=next(t))                      # (0,2) -> node 2
    a3 = b.send(0, time=next(t))                      # (0,3) -> node 3
    b.recv(1, a1, time=next(t))                       # (1,1)
    b.recv(2, a2, time=next(t))                       # (2,1)
    b.recv(3, a3, time=next(t))                       # (3,1)

    # --- X's 8 events, stitched with causality ----------------------
    x_ids.append(b.internal(0, label="x", time=next(t)))    # (0,4)
    m_b = b.send(0, time=next(t))                            # (0,5) -> node 1
    x_ids.append(b.recv(1, m_b, label="x", time=next(t)))    # (1,2)
    x_ids.append(b.internal(2, label="x", time=next(t)))     # (2,2)
    x_ids.append(b.internal(3, label="x", time=next(t)))     # (3,2)
    m_c = b.send(3, time=next(t))                             # (3,3) -> node 2
    x_ids.append(b.recv(2, m_c, label="x", time=next(t)))     # (2,3)
    x_ids.append(b.internal(1, label="x", time=next(t)))      # (1,3)
    x_ids.append(b.internal(0, label="x", time=next(t)))      # (0,6)
    x_ids.append(b.internal(3, label="x", time=next(t)))      # (3,4)

    # --- common-descendant suffix: gather at node 2, scatter --------
    g0 = b.send(0, time=next(t))                      # (0,7) -> node 2
    g1 = b.send(1, time=next(t))                      # (1,4) -> node 2
    g3 = b.send(3, time=next(t))                      # (3,5) -> node 2
    b.recv(2, g0, time=next(t))                       # (2,4)
    b.recv(2, g1, time=next(t))                       # (2,5)
    b.recv(2, g3, time=next(t))                       # (2,6)
    s0 = b.send(2, time=next(t))                      # (2,7) -> node 0
    s1 = b.send(2, time=next(t))                      # (2,8) -> node 1
    s3 = b.send(2, time=next(t))                      # (2,9) -> node 3
    b.recv(0, s0, time=next(t))                       # (0,8)
    b.recv(1, s1, time=next(t))                       # (1,5)
    b.recv(3, s3, time=next(t))                       # (3,6)
    b.internal(1, time=next(t))                       # (1,6)

    ex = b.execute()
    x = NonatomicEvent(ex, x_ids, name="X")
    assert len(x) == 8 and x.width == 4
    return Figure2(execution=ex, x=x, cuts=cuts_of(x))


def figure3() -> Figure3:
    """Reconstruct Figure 3: the cuts of proxies ``L_X`` and ``U_X``.

    Uses Figure 2's execution and X.  The returned quadruples satisfy
    the coincidences noted in Section 2.5: C1/C3 of ``L_X`` equal
    C1/C3 of X, and C2/C4 of ``U_X`` equal C2/C4 of X.
    """
    fig2 = figure2()
    lx = proxy_of(fig2.x, Proxy.L)
    ux = proxy_of(fig2.x, Proxy.U)
    return Figure3(
        execution=fig2.execution,
        x=fig2.x,
        lx=lx,
        ux=ux,
        cuts_x=fig2.cuts,
        cuts_lx=cuts_of(lx),
        cuts_ux=cuts_of(ux),
    )
