"""Combined causal + temporal constraints.

A real-time synchronization requirement has two halves: the *causal*
half ("the actuation is caused by this round's samples" — a relation
condition) and the *temporal* half ("and happens within 50 ms").  A
:class:`TimedConstraint` bundles both; :class:`RealTimeChecker`
evaluates sets of them over a trace and reports which half failed —
the distinction an engineer needs when debugging (a causal failure is
a logic bug; a temporal one is a scheduling/latency bug).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..core.evaluator import SynchronizationAnalyzer
from ..monitor.predicates import Condition, parse_condition
from ..nonatomic.event import NonatomicEvent
from .timing import latency

__all__ = ["TimedConstraint", "TimedReport", "RealTimeChecker"]


@dataclass(frozen=True, slots=True)
class TimedConstraint:
    """One requirement between two named intervals.

    Parameters
    ----------
    name:
        Report label.
    causal:
        A relation condition (text or AST) over interval names; may be
        None for purely temporal constraints.
    source, target:
        Interval names the temporal bound applies to.
    max_latency / min_latency:
        Inclusive bounds on ``latency(source, target, anchor)``; either
        may be None.
    anchor:
        Measurement anchors, per :func:`repro.realtime.timing.latency`.
    """

    name: str
    source: str
    target: str
    causal: str | Condition | None = None
    max_latency: float | None = None
    min_latency: float | None = None
    anchor: tuple[str, str] = ("end", "start")


@dataclass(frozen=True, slots=True)
class TimedReport:
    """Outcome of one timed constraint."""

    constraint: TimedConstraint
    causal_ok: bool
    temporal_ok: bool
    measured_latency: float | None

    @property
    def passed(self) -> bool:
        """Both halves hold."""
        return self.causal_ok and self.temporal_ok

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        lat = (
            f"{self.measured_latency:.3f}"
            if self.measured_latency is not None
            else "n/a"
        )
        return (
            f"[{status}] {self.constraint.name}: causal={self.causal_ok} "
            f"temporal={self.temporal_ok} (latency={lat})"
        )


class RealTimeChecker:
    """Evaluate timed constraints over named intervals.

    Parameters
    ----------
    analyzer:
        Relation evaluator for the causal halves.
    """

    def __init__(self, analyzer: SynchronizationAnalyzer) -> None:
        self.analyzer = analyzer

    def check(
        self,
        constraint: TimedConstraint,
        bindings: Mapping[str, NonatomicEvent],
    ) -> TimedReport:
        """Evaluate one constraint against bound intervals."""
        from ..monitor.checker import ConditionChecker

        causal_ok = True
        if constraint.causal is not None:
            cond = (
                parse_condition(constraint.causal)
                if isinstance(constraint.causal, str)
                else constraint.causal
            )
            causal_ok = ConditionChecker(self.analyzer).check(
                cond, bindings
            ).passed

        measured: float | None = None
        temporal_ok = True
        if constraint.max_latency is not None or constraint.min_latency is not None:
            measured = latency(
                bindings[constraint.source],
                bindings[constraint.target],
                anchor=constraint.anchor,
            )
            if constraint.max_latency is not None:
                temporal_ok = temporal_ok and measured <= constraint.max_latency
            if constraint.min_latency is not None:
                temporal_ok = temporal_ok and measured >= constraint.min_latency
        return TimedReport(
            constraint=constraint,
            causal_ok=causal_ok,
            temporal_ok=temporal_ok,
            measured_latency=measured,
        )

    def check_all(
        self,
        constraints: Mapping[str, TimedConstraint],
        bindings: Mapping[str, NonatomicEvent],
    ) -> dict[str, TimedReport]:
        """Evaluate a named set of constraints against shared bindings."""
        return {
            name: self.check(c, bindings) for name, c in constraints.items()
        }
