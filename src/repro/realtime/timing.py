"""Physical-time analysis of nonatomic events.

The relations of the paper are *causal*; real-time applications pair
them with *temporal* constraints on the physical timestamps the trace
records ("the actuation must follow the sample causally **and** within
50 ms").  This module provides the timing side:

* :func:`interval_span` — first/last physical timestamps of an
  interval's component events;
* :func:`latency` — elapsed time between two intervals, measured
  between configurable anchors (start/end of each);
* :func:`periodic_jitter` — period statistics of a recurring interval
  family (process-control loops, media streams).

Events without timestamps make these undefined —
:class:`UntimedEventError` is raised rather than guessed around.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..nonatomic.event import NonatomicEvent

__all__ = [
    "UntimedEventError",
    "IntervalSpan",
    "interval_span",
    "latency",
    "JitterStats",
    "periodic_jitter",
]


class UntimedEventError(ValueError):
    """Raised when a timing query touches an event with no timestamp."""


@dataclass(frozen=True, slots=True)
class IntervalSpan:
    """Physical extent of a nonatomic event."""

    start: float  # earliest component timestamp
    end: float  # latest component timestamp

    @property
    def duration(self) -> float:
        """``end - start`` (0 for instantaneous intervals)."""
        return self.end - self.start


def interval_span(x: NonatomicEvent) -> IntervalSpan:
    """The physical time span of ``x``'s component events.

    Raises
    ------
    UntimedEventError
        If any component event lacks a timestamp.
    """
    times: list[float] = []
    for eid in x.ids:
        t = x.execution.event(eid).time
        if t is None:
            raise UntimedEventError(
                f"event {eid} of interval {x.name or ''} has no timestamp"
            )
        times.append(t)
    return IntervalSpan(start=min(times), end=max(times))


def latency(
    x: NonatomicEvent,
    y: NonatomicEvent,
    anchor: tuple[str, str] = ("end", "start"),
) -> float:
    """Elapsed physical time from ``x`` to ``y``.

    ``anchor`` picks the measurement points: ``("end", "start")`` (the
    default) is the classic response-time reading — from X's last
    event to Y's first.  Negative results mean Y's anchor lies before
    X's in physical time (temporal overlap or reordering).
    """
    sx, sy = interval_span(x), interval_span(y)
    points = {
        "start": (sx.start, sy.start),
        "end": (sx.end, sy.end),
    }
    if anchor[0] not in points or anchor[1] not in points:
        raise ValueError(f"anchors must be 'start' or 'end', got {anchor!r}")
    from_t = sx.start if anchor[0] == "start" else sx.end
    to_t = sy.start if anchor[1] == "start" else sy.end
    return to_t - from_t


@dataclass(frozen=True, slots=True)
class JitterStats:
    """Period statistics of a recurring interval family."""

    periods: tuple[float, ...]  # successive start-to-start gaps
    mean: float
    stdev: float
    min: float
    max: float

    @property
    def jitter(self) -> float:
        """Peak-to-peak period variation (``max - min``)."""
        return self.max - self.min


def periodic_jitter(intervals: Sequence[NonatomicEvent]) -> JitterStats:
    """Start-to-start period statistics over ``intervals`` in order.

    Raises
    ------
    ValueError
        With fewer than two intervals.
    """
    if len(intervals) < 2:
        raise ValueError("need at least two intervals to measure a period")
    starts = [interval_span(iv).start for iv in intervals]
    gaps = np.diff(np.asarray(starts, dtype=float))
    return JitterStats(
        periods=tuple(float(g) for g in gaps),
        mean=float(gaps.mean()),
        stdev=float(gaps.std()),
        min=float(gaps.min()),
        max=float(gaps.max()),
    )
