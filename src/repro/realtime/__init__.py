"""Physical-time analysis and combined causal+temporal constraints."""

from .constraints import RealTimeChecker, TimedConstraint, TimedReport
from .timing import (
    IntervalSpan,
    JitterStats,
    UntimedEventError,
    interval_span,
    latency,
    periodic_jitter,
)

__all__ = [
    "IntervalSpan",
    "interval_span",
    "latency",
    "JitterStats",
    "periodic_jitter",
    "UntimedEventError",
    "TimedConstraint",
    "TimedReport",
    "RealTimeChecker",
]
