"""Command-line interface.

Make the library usable on recorded traces without writing Python::

    python -m repro generate random --nodes 4 --events 20 --out trace.json
    python -m repro info trace.json
    python -m repro render trace.json --interval phase0
    python -m repro relations trace.json --x phase0 --y phase1
    python -m repro relations trace.json --x a --y b --spec "R2'(U,L)"
    python -m repro check trace.json --spec "R1(U,L)(a, b) and not R4(b, a)" \\
        --bind a=phase0 --bind b=phase1
    python -m repro stream trace.json --watch "order=R1(phase0, phase1)"
    python -m repro serve --nodes 4 --port 7700 --log monitor.log
    python -m repro client trace.json --connect localhost:7700 \\
        --watch "order=R1(phase0, phase1)"
    python -m repro figures

Intervals are named by event *label*: ``--x phase0`` selects every
event labelled ``phase0`` (the convention all generators and the
application layers follow).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis.metrics import summarize
from .backends.base import clock_pass_counts, reset_clock_pass_counts
from .core.context import AnalysisContext
from .core.evaluator import SynchronizationAnalyzer
from .core.relations import FAMILY32
from .events.poset import Execution
from .events.serialization import load, save
from .events.trace import causal_schedule
from .lint.cli import add_lint_arguments, run_lint
from .monitor.checker import ConditionChecker
from .nonatomic.selection import by_label
from .simulation import workloads
from .viz.spacetime import render

__all__ = ["main", "build_parser"]

_GENERATORS = {
    "random": lambda a: workloads.random_trace(
        a.nodes, events_per_node=a.events, msg_prob=a.msg_prob, seed=a.seed
    ),
    "ring": lambda a: workloads.ring_trace(a.nodes, rounds=a.rounds),
    "pipeline": lambda a: workloads.pipeline_trace(a.nodes, items=a.items),
    "broadcast": lambda a: workloads.broadcast_trace(a.nodes, rounds=a.rounds),
    "client-server": lambda a: workloads.client_server_trace(
        max(a.nodes - 1, 1), requests_per_client=a.items, seed=a.seed
    ),
    "barrier": lambda a: workloads.barrier_trace(a.nodes, phases=a.rounds),
    "layered": lambda a: workloads.layered_trace(
        num_sensors=max(a.nodes - 3, 1), num_actuators=2, periods=a.rounds
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for doc generation/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Test synchronization conditions between distributed "
        "nonatomic events (Kshemkalyani, IPPS 1998).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a workload trace")
    p_gen.add_argument("kind", choices=sorted(_GENERATORS))
    p_gen.add_argument("--nodes", type=int, default=4)
    p_gen.add_argument("--events", type=int, default=20,
                       help="events per node (random workload)")
    p_gen.add_argument("--msg-prob", type=float, default=0.3)
    p_gen.add_argument("--rounds", type=int, default=3,
                       help="rounds/phases/periods (structured workloads)")
    p_gen.add_argument("--items", type=int, default=4,
                       help="items/requests (pipeline, client-server)")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output JSON path")

    p_info = sub.add_parser("info", help="summarise a trace")
    p_info.add_argument("trace")

    p_render = sub.add_parser("render", help="ASCII space-time diagram")
    p_render.add_argument("trace")
    p_render.add_argument("--interval", action="append", default=[],
                          help="label(s) to highlight (repeatable)")
    p_render.add_argument("--no-messages", action="store_true")

    p_rel = sub.add_parser("relations",
                           help="evaluate relations between two intervals")
    p_rel.add_argument("trace")
    p_rel.add_argument("--x", required=True, help="label of interval X")
    p_rel.add_argument("--y", required=True, help="label of interval Y")
    p_rel.add_argument("--spec", help="one relation (e.g. R2'(U,L)); "
                       "default: report all 32 + strongest")
    p_rel.add_argument("--engine", default="linear",
                       choices=["naive", "polynomial", "linear"])
    p_rel.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for batched queries "
                            "(default 1: serial; batches below the "
                            "parallel threshold stay serial regardless)")
    p_rel.add_argument("--backend", default=None,
                       choices=["vector", "reachability"],
                       help="causality backend answering the queries "
                            "(default: $REPRO_BACKEND or vector)")
    p_rel.add_argument("--reduce", action="store_true",
                       help="merge commuting adjacent same-node internal "
                            "events before analysing (verdict-preserving)")

    p_check = sub.add_parser("check", help="check a condition over a trace")
    p_check.add_argument("trace")
    p_check.add_argument("--spec", required=True,
                         help="condition text, e.g. 'R1(a,b) and not R4(b,a)'")
    p_check.add_argument("--bind", action="append", default=[],
                         metavar="NAME=LABEL",
                         help="bind a condition name to an event label")
    p_check.add_argument("--engine", default="linear",
                         choices=["naive", "polynomial", "linear"])
    p_check.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for batched queries "
                              "(default 1: serial)")
    p_check.add_argument("--backend", default=None,
                         choices=["vector", "reachability"],
                         help="causality backend answering the queries "
                              "(default: $REPRO_BACKEND or vector)")

    p_stream = sub.add_parser(
        "stream",
        help="replay a trace event-by-event through the online monitor",
    )
    p_stream.add_argument("trace")
    p_stream.add_argument("--watch", action="append", default=[],
                          metavar="NAME=CONDITION",
                          help="watch a condition over labelled intervals; "
                               "fires the moment it becomes decidable "
                               "(repeatable)")
    p_stream.add_argument("--spec", default=None,
                          help="also evaluate SPEC between each consecutive "
                               "pair of closed intervals as the stream runs")
    p_stream.add_argument("--backend", default=None,
                          choices=["vector", "reachability"],
                          help="causality backend for the finalisation "
                               "context (default: $REPRO_BACKEND or vector)")

    p_serve = sub.add_parser(
        "serve",
        help="run the live monitoring service (see docs/SERVICE.md)",
    )
    p_serve.add_argument("--nodes", type=int, required=True,
                         help="number of monitored nodes")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (0 picks a free one)")
    p_serve.add_argument("--log", default=None, metavar="PATH",
                         help="append-only replicated event log file")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="ingest shard count (default: one per node)")
    p_serve.add_argument("--watch", action="append", default=[],
                         metavar="NAME=CONDITION",
                         help="watch registered at startup (repeatable)")
    p_serve.add_argument("--standby", default=None, metavar="HOST:PORT",
                         help="start as warm standby tailing this primary; "
                              "promotes itself when the primary dies")
    p_serve.add_argument("--throttle-at", type=int, default=256,
                         help="per-session backlog soft limit")
    p_serve.add_argument("--disconnect-at", type=int, default=1024,
                         help="per-session backlog hard limit")
    p_serve.add_argument("--fsync-every", type=int, default=64,
                         help="fsync batch size for the event log "
                              "(0 disables fsync)")
    p_serve.add_argument("--oneshot", action="store_true",
                         help="exit after the first client session ends "
                              "(CI smoke tests)")

    p_client = sub.add_parser(
        "client",
        help="replay a recorded trace into a running monitoring service",
    )
    p_client.add_argument("trace")
    p_client.add_argument("--connect", required=True, metavar="HOST:PORT")
    p_client.add_argument("--shard", default="0/1", metavar="I/N",
                          help="stream only nodes with node %% N == I "
                               "(run one client per shard)")
    p_client.add_argument("--watch", action="append", default=[],
                          metavar="NAME=CONDITION",
                          help="watch to register before streaming "
                               "(repeatable)")
    p_client.add_argument("--expect-verdicts", type=int, default=None,
                          metavar="K",
                          help="block until K verdicts arrive (default: "
                               "the number of --watch registrations)")
    p_client.add_argument("--stats", action="store_true",
                          help="print the service stat line afterwards")

    sub.add_parser("figures", help="print the paper's figures")

    p_lint = sub.add_parser(
        "lint",
        help="project-specific static analysis (REP001-REP005)",
    )
    add_lint_arguments(p_lint)
    return parser


def _load_context(path: str, backend: str | None = None) -> AnalysisContext:
    """Load a trace into the shared analysis context — the one place
    the CLI builds timestamps and cuts.  ``backend`` is a
    :data:`repro.backends.base.BACKENDS` key; None uses the process
    default (``$REPRO_BACKEND`` or ``vector``)."""
    if backend is None:
        return AnalysisContext.of(Execution(load(path)))
    return AnalysisContext(Execution(load(path)), backend=backend)


def _print_run_stats(ctx: AnalysisContext) -> None:
    """One diagnostic line: which backend answered and what it cost."""
    passes = clock_pass_counts()
    print(f"backend: {ctx.backend_name} | cut cache: "
          f"{ctx.cache_hits} hits / {ctx.cache_misses} misses | "
          f"clock passes: forward={passes['forward']} "
          f"reverse={passes['reverse']} extend={passes['extend']}")
    fam = ctx.family_query_stats()
    if fam["fills"] or fam["hits"]:
        print(f"family kernel: {fam['pairs']} pairs x 24 subtests in "
              f"{fam['fills']} batched fills | {fam['evals']} subtest evals "
              f"({fam['cut_pair_evals']} cut-pair) | "
              f"{fam['hits']} verdict-row hits")


def _cmd_generate(args) -> int:
    trace = _GENERATORS[args.kind](args)
    save(trace, args.out)
    print(f"wrote {args.kind} trace ({trace.num_nodes} nodes, "
          f"{trace.total_events} events, {len(trace.messages)} messages) "
          f"to {args.out}")
    return 0


def _cmd_info(args) -> int:
    ex = _load_context(args.trace).execution
    metrics = summarize(ex)
    print(metrics)
    labels = sorted(
        {ev.label for ev in ex.trace.iter_events() if ev.label is not None}
    )
    if labels:
        print(f"labels: {', '.join(labels)}")
    return 0


def _cmd_render(args) -> int:
    ex = _load_context(args.trace).execution
    intervals = {label: by_label(ex, label) for label in args.interval}
    print(render(ex, intervals=intervals, show_messages=not args.no_messages))
    return 0


def _cmd_relations(args) -> int:
    reset_clock_pass_counts()
    if args.reduce:
        from .backends.reduction import reduce_trace

        red = reduce_trace(load(args.trace))
        print(f"reduced {red.original_events} events to "
              f"{red.reduced_events} ({red.ratio:.0%} fewer)")
        ctx = AnalysisContext(Execution(red.trace), backend=args.backend)
    else:
        ctx = _load_context(args.trace, args.backend)
    ex = ctx.execution
    an = SynchronizationAnalyzer(ctx, engine=args.engine, jobs=args.jobs)
    x = by_label(ex, args.x)
    y = by_label(ex, args.y)
    print(f"X = {args.x!r}: {len(x)} events on nodes {list(x.node_set)}")
    print(f"Y = {args.y!r}: {len(y)} events on nodes {list(y.node_set)}")
    if args.spec:
        print(f"{args.spec}(X, Y) = {an.holds(args.spec, x, y)}")
        _print_run_stats(ctx)
        return 0
    results = an.all_relations(x, y)
    holding = [str(s) for s in FAMILY32 if results[s]]
    print(f"holding ({len(holding)}/32): {', '.join(holding) or '(none)'}")
    strongest = an.strongest(x, y)
    print("strongest: " + (", ".join(map(str, strongest)) or "(none)"))
    _print_run_stats(ctx)
    return 0


def _cmd_check(args) -> int:
    reset_clock_pass_counts()
    ctx = _load_context(args.trace, args.backend)
    ex = ctx.execution
    bindings = {}
    for item in args.bind:
        name, _, label = item.partition("=")
        if not label:
            print(f"error: --bind needs NAME=LABEL, got {item!r}",
                  file=sys.stderr)
            return 2
        bindings[name] = by_label(ex, label, name=name)
    an = SynchronizationAnalyzer(ctx, engine=args.engine, jobs=args.jobs)
    try:
        report = ConditionChecker(an).check(args.spec, bindings)
    finally:
        an.close()
    print(report)
    _print_run_stats(ctx)
    return 0 if report.passed else 1


def _cmd_stream(args) -> int:
    """Replay a recorded trace through the streaming monitor.

    Events are replayed in a causally valid global order (per-node
    program order, receives after their sends) and tagged into
    intervals by label; each interval closes the moment its last
    labelled event arrives.  Watches fire mid-stream, the optional
    ``--spec`` is answered between consecutive closes from the
    incrementally maintained past cuts, and the final summary reports
    the clock-pass counters — all zeros proves the whole run (ingest,
    verdicts, finalisation) stayed on the live growable clock table.
    """
    from .monitor.online import OnlineMonitor

    trace = load(args.trace)
    remaining: dict = {}
    for ev in trace.iter_events():
        if ev.label is not None:
            remaining[ev.label] = remaining.get(ev.label, 0) + 1
    if not remaining:
        print("error: trace has no labelled events to form intervals",
              file=sys.stderr)
        return 2

    reset_clock_pass_counts()
    om = OnlineMonitor(trace.num_nodes)
    for item in args.watch:
        name, _, cond = item.partition("=")
        if not cond:
            print(f"error: --watch needs NAME=CONDITION, got {item!r}",
                  file=sys.stderr)
            return 2
        om.watch(name, cond)

    handles: dict = {}
    closed: list[str] = []
    for node, ev, send in causal_schedule(trace):
        if ev.kind.name == "SEND":
            handles[ev.eid] = om.send(
                node, label=ev.label, time=ev.time, interval=ev.label
            )
        elif send is not None:
            om.recv(node, handles[send], label=ev.label,
                    time=ev.time, interval=ev.label)
        else:
            om.internal(node, label=ev.label, time=ev.time,
                        interval=ev.label)
        if ev.label is None:
            continue
        remaining[ev.label] -= 1
        if remaining[ev.label] == 0:
            for note in om.close(ev.label):
                verdict = "holds" if note.passed else "fails"
                print(f"watch {note.name!r} decided at close of "
                      f"{ev.label!r} (t={note.decided_at}): "
                      f"{verdict}")
            iv = om.interval(ev.label)
            print(f"closed {ev.label!r} ({iv.count} events on "
                  f"nodes {list(iv.node_set)})")
            if args.spec and closed:
                v = om.holds(args.spec, closed[-1], ev.label)
                print(f"  {args.spec}({closed[-1]}, {ev.label}) "
                      f"= {v}")
            closed.append(ev.label)

    # zero-copy finalisation from the live table into a full context
    ctx = AnalysisContext(om.to_execution(), backend=args.backend)
    passes = clock_pass_counts()
    print(f"streamed {trace.total_events} events, {len(closed)} intervals "
          f"closed, {len(om.notifications)} watch notification(s)")
    print(f"offline clock passes during the run: forward={passes['forward']} "
          f"reverse={passes['reverse']} extend={passes['extend']}")
    print(f"finalisation context backend: {ctx.backend_name}")
    return 0


def _parse_watches(items: list[str]) -> list[tuple[str, str]]:
    """Parse repeated ``NAME=CONDITION`` watch arguments."""
    watches: list[tuple[str, str]] = []
    for item in items:
        name, _, cond = item.partition("=")
        if not name or not cond:
            raise ValueError(f"--watch needs NAME=CONDITION, got {item!r}")
        watches.append((name, cond))
    return watches


def _parse_hostport(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` argument."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _print_service_stats(stats: dict) -> None:
    """One stat line for the service: ingest, queue depths, latency,
    and the clock-pass proof that ingest stayed streaming."""
    shards = " ".join(
        f"s{i}={s['applied']}/{s['queued_peak']}"
        for i, s in enumerate(stats["shards"])
    )
    lat = stats["watch_latency"]
    passes = stats["clock_passes"]
    print(f"service[{stats['role']}]: {stats['events_applied']} events, "
          f"{stats['closes_applied']} closes, "
          f"{stats['verdicts_emitted']} verdicts, "
          f"{stats['throttles']} throttles, {stats['parked']} parked | "
          f"shard applied/peak-depth: {shards} | "
          f"watch latency: n={lat['count']} avg={lat['avg_ms']:.2f}ms "
          f"max={lat['max_ms']:.2f}ms | "
          f"clock passes: forward={passes['forward']} "
          f"reverse={passes['reverse']} extend={passes['extend']}")


def _cmd_serve(args) -> int:
    """Run the monitoring service until interrupted (or ``--oneshot``).

    With ``--standby HOST:PORT`` the service starts as a warm standby:
    it tails the primary's replicated log and, when the primary dies,
    promotes itself — emitting exactly the watch verdicts the primary
    had not already confirmed — and starts listening.
    """
    import asyncio

    from .service import MonitorService

    watches = _parse_watches(args.watch)
    primary = _parse_hostport(args.standby) if args.standby else None

    async def run() -> None:
        # The constructor's log open/replay completes before any client
        # can connect, so blocking here stalls nobody; steady-state
        # appends are executor-offloaded (MonitorService._flush_log).
        # repro-lint: disable=REP007 -- startup-only blocking is harmless
        service = MonitorService(
            args.nodes,
            host=args.host,
            port=args.port,
            log_path=args.log,
            num_shards=args.shards,
            fsync_every=args.fsync_every,
            throttle_at=args.throttle_at,
            disconnect_at=args.disconnect_at,
            watches=tuple(watches),
            primary=primary,
        )
        await service.start()
        try:
            if primary is not None:
                print(f"standby: tailing {primary[0]}:{primary[1]}",
                      flush=True)
                await service.wait_primary_loss()
                verdicts = await service.promote()
                host, port = service.address
                print(f"primary lost: promoted, {len(verdicts)} pending "
                      f"verdict(s) emitted, serving on {host}:{port}",
                      flush=True)
            else:
                host, port = service.address
                print(f"serving {args.nodes} nodes on {host}:{port}",
                      flush=True)
            if args.oneshot:
                await service.wait_session_end()
            else:
                await asyncio.Event().wait()  # until cancelled (ctrl-C)
        except asyncio.CancelledError:
            pass
        finally:
            _print_service_stats(service.core.stats())
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_client(args) -> int:
    """Replay a recorded trace into a running service, one shard of
    the node set per invocation."""
    from .service import MonitorClient
    from .service.client import replay_trace

    shard_txt, _, total_txt = args.shard.partition("/")
    if not shard_txt.isdigit() or not total_txt.isdigit():
        raise ValueError(f"--shard needs I/N, got {args.shard!r}")
    shard, num_shards = int(shard_txt), int(total_txt)
    host, port = _parse_hostport(args.connect)
    watches = _parse_watches(args.watch)
    trace = load(args.trace)
    if watches and not any(
        ev.label is not None for ev in trace.iter_events()
    ):
        print("error: trace has no labelled events, so no interval ever "
              "closes and no watch can fire", file=sys.stderr)
        return 2

    with MonitorClient(host, port, num_nodes=trace.num_nodes) as client:
        for name, cond in watches:
            client.watch(name, cond)
        counts = replay_trace(client, trace, shard, num_shards)
        client.stats()  # barrier: everything sent is ingested
        expect = args.expect_verdicts
        if expect is None:
            expect = len(watches)
        if expect:
            client.wait_verdicts(expect)
        for v in client.verdicts:
            verdict = "holds" if v["passed"] else "fails"
            print(f"verdict #{v['watch_seq']} {v['name']!r} "
                  f"(decided_at={v['decided_at']}): {verdict}")
        print(f"streamed shard {shard}/{num_shards}: {counts['events']} "
              f"events, {counts['closes']} closes, "
              f"{client.throttles} throttle(s)")
        if args.stats:
            stats = client.stats()
            _print_service_stats(stats)
    return 0


def _cmd_figures(args) -> int:
    from .simulation.scenarios import figure2, figure3
    from .viz.spacetime import render_cut_table

    fig = figure2()
    print(render(fig.execution, intervals={"X": fig.x},
                 cuts={"C1": fig.cuts.c1, "C2": fig.cuts.c2,
                       "C3": fig.cuts.c3, "C4": fig.cuts.c4},
                 show_messages=False))
    fig3 = figure3()
    print(render_cut_table({
        "C1(L_X)": fig3.cuts_lx.c1, "C4(U_X)": fig3.cuts_ux.c4,
    }))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "render": _cmd_render,
    "relations": _cmd_relations,
    "check": _cmd_check,
    "stream": _cmd_stream,
    "serve": _cmd_serve,
    "client": _cmd_client,
    "figures": _cmd_figures,
    "lint": run_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
