"""Imperative construction of traces.

:class:`TraceBuilder` is the programmatic way to record a distributed
execution event by event — used by the simulator, the workload
generators, the scripted paper-figure scenarios, and by tests that need
hand-crafted posets.

Example
-------
Build the two-process execution ``a1 → b2`` (node 0 sends, node 1 does
an internal event then receives)::

    b = TraceBuilder(2)
    m = b.send(0, label="req")
    b.internal(1)
    b.recv(1, m)
    execution = b.execute()
"""

from __future__ import annotations

from dataclasses import dataclass

from .event import Event, EventId, EventKind
from .poset import Execution
from .trace import Message, Trace

__all__ = ["MessageHandle", "TraceBuilder"]


@dataclass(frozen=True, slots=True)
class MessageHandle:
    """Opaque handle returned by :meth:`TraceBuilder.send`.

    Pass it to :meth:`TraceBuilder.recv` to close the message edge.
    """

    send: EventId


class TraceBuilder:
    """Incremental builder for :class:`~repro.events.trace.Trace`.

    Parameters
    ----------
    num_nodes:
        Number of process partitions.  Node ids are ``0..num_nodes-1``.

    Notes
    -----
    The builder appends events in per-node program order; the global
    interleaving is whatever order the ``internal``/``send``/``recv``
    calls are made in, but only the per-node orders and message edges
    matter causally.  Unreceived sends are legal (lost messages).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self._events: list[list[Event]] = [[] for _ in range(num_nodes)]
        self._messages: list[Message] = []
        self._received: set[EventId] = set()

    @property
    def num_nodes(self) -> int:
        """Number of process partitions."""
        return len(self._events)

    def count(self, node: int) -> int:
        """Number of events appended to ``node`` so far."""
        return len(self._events[node])

    def last_id(self, node: int) -> EventId | None:
        """Identifier of the most recent event on ``node`` (or None)."""
        k = len(self._events[node])
        return (node, k) if k else None

    # ------------------------------------------------------------------
    # event appenders
    # ------------------------------------------------------------------
    def _append(
        self,
        node: int,
        kind: EventKind,
        label: str | None,
        time: float | None,
        payload: object,
    ) -> EventId:
        if not (0 <= node < len(self._events)):
            raise ValueError(f"no such node: {node}")
        idx = len(self._events[node]) + 1
        self._events[node].append(
            Event(node=node, index=idx, kind=kind, label=label, time=time,
                  payload=payload)
        )
        return (node, idx)

    def internal(
        self,
        node: int,
        *,
        label: str | None = None,
        time: float | None = None,
        payload: object = None,
    ) -> EventId:
        """Append an internal event on ``node``; returns its id."""
        return self._append(node, EventKind.INTERNAL, label, time, payload)

    def send(
        self,
        node: int,
        *,
        label: str | None = None,
        time: float | None = None,
        payload: object = None,
    ) -> MessageHandle:
        """Append a send event on ``node``; returns a message handle."""
        eid = self._append(node, EventKind.SEND, label, time, payload)
        return MessageHandle(send=eid)

    def recv(
        self,
        node: int,
        handle: MessageHandle,
        *,
        label: str | None = None,
        time: float | None = None,
        payload: object = None,
    ) -> EventId:
        """Append a receive event on ``node`` matched to ``handle``.

        Raises
        ------
        ValueError
            If the handle's message was already received.
        """
        if handle.send in self._received:
            raise ValueError(f"message from {handle.send} already received")
        eid = self._append(node, EventKind.RECV, label, time, payload)
        self._messages.append(Message(send=handle.send, recv=eid))
        self._received.add(handle.send)
        return eid

    def message(
        self,
        src: int,
        dst: int,
        *,
        label: str | None = None,
        time: float | None = None,
    ) -> tuple[EventId, EventId]:
        """Convenience: append a send on ``src`` immediately received on
        ``dst``.  Returns ``(send_id, recv_id)``."""
        h = self.send(src, label=label, time=time)
        r = self.recv(dst, h, label=label, time=time)
        return h.send, r

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def build(self) -> Trace:
        """Finalise into an immutable :class:`Trace` (builder stays usable)."""
        return Trace(
            [list(per_node) for per_node in self._events], list(self._messages)
        )

    def execute(self) -> Execution:
        """Finalise and analyse: build the trace and its :class:`Execution`."""
        return Execution(self.build())
