"""Canonical vector clocks and reverse vector clocks.

Implements the timestamping machinery of Section 2.3 of the paper:

* **Forward timestamps** (Definition 13, the canonical vector clocks of
  Fidge and Mattern): ``T(e)[i]`` is the number of real events on node
  ``i`` that causally precede or equal ``e``.  The fundamental property
  is ``e ≺ e'  ⟺  T(e) < T(e')`` (componentwise ``≤`` with at least one
  strict), and for distinct events the cheap test
  ``e ≺ e'  ⟺  T(e')[node(e)] ≥ index(e)``.

* **Reverse timestamps** (Definition 14): ``T^R(e)[i]`` is the number of
  real events on node ``i`` that causally happen after or equal ``e``.
  As the paper observes, *"once the timestamp structure is established
  for the entire computation, the 'reverse' timestamp structure can also
  be established"* — we compute it by running the forward algorithm on
  the time-reversed trace.

Both computations run in a single topological pass over the trace using
a work-list (no transitive closure), with per-event cost ``O(|P|)`` from
the componentwise ``max``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .event import EventId
from .trace import Trace, TraceError

__all__ = [
    "CyclicTraceError",
    "compute_forward_clocks",
    "compute_reverse_clocks",
    "extend_forward_clocks",
    "clock_pass_counts",
    "reset_clock_pass_counts",
]

#: Number of full/incremental clock passes executed since the last reset,
#: keyed by pass kind.  Purely diagnostic: regression tests use it to
#: assert that lazy code paths (e.g. the online monitor's ingestion) never
#: trigger a pass they should not pay for.
_PASS_COUNTS: Dict[str, int] = {"forward": 0, "reverse": 0, "extend": 0}


def clock_pass_counts() -> Dict[str, int]:
    """A snapshot of the pass counters (``forward``/``reverse``/``extend``)."""
    return dict(_PASS_COUNTS)


def reset_clock_pass_counts() -> None:
    """Zero the pass counters (test isolation helper)."""
    for key in _PASS_COUNTS:
        _PASS_COUNTS[key] = 0


class CyclicTraceError(TraceError):
    """Raised when a trace's happened-before relation contains a cycle.

    A cycle can only arise from message edges that contradict local
    orders (e.g. node 0 receives from node 1 before sending it the
    message that causally enabled that send).
    """


def _run_clock_pass(
    lengths: Sequence[int],
    cross_deps: Mapping[EventId, Tuple[EventId, ...]],
    prior: Sequence[np.ndarray] | None = None,
) -> List[np.ndarray]:
    """Generic forward vector-clock pass.

    Parameters
    ----------
    lengths:
        ``lengths[i]`` is the number of events to process on node ``i``;
        events are ``(i, 1) .. (i, lengths[i])`` in processing order.
    cross_deps:
        Maps an event id to the cross-node events it directly depends on
        (its message predecessors).  Local predecessors are implicit.
    prior:
        Optional per-node matrices of already-computed timestamp rows
        (an append-only prefix of the new computation).  Their rows are
        copied in verbatim and only events beyond them are processed —
        the incremental path used by :func:`extend_forward_clocks`.

    Returns
    -------
    list of ``np.ndarray``
        One ``(lengths[i], P)`` int64 matrix per node; row ``j - 1``
        holds the vector timestamp of event ``(i, j)``.

    Raises
    ------
    CyclicTraceError
        If the dependency structure cannot be scheduled (a causal cycle).
    """
    num_nodes = len(lengths)
    clocks = [np.zeros((k, num_nodes), dtype=np.int64) for k in lengths]
    done = [0] * num_nodes  # events completed per node
    if prior is not None:
        for i, mat in enumerate(prior):
            k = mat.shape[0]
            clocks[i][:k] = mat
            done[i] = k
    # waiters[(m, d)] = nodes whose next event is blocked until node m
    # has completed d events.
    waiters: Dict[EventId, List[int]] = {}
    stack = list(range(num_nodes))
    processed = sum(done)
    total = sum(lengths)

    while stack:
        node = stack.pop()
        k = lengths[node]
        while done[node] < k:
            idx = done[node] + 1
            eid = (node, idx)
            deps = cross_deps.get(eid, ())
            blocked_on = None
            for dep_node, dep_idx in deps:
                if done[dep_node] < dep_idx:
                    blocked_on = (dep_node, dep_idx)
                    break
            if blocked_on is not None:
                waiters.setdefault(blocked_on, []).append(node)
                break
            if idx > 1:
                row = clocks[node][idx - 2].copy()
            else:
                row = np.zeros(num_nodes, dtype=np.int64)
            for dep_node, dep_idx in deps:
                np.maximum(row, clocks[dep_node][dep_idx - 1], out=row)
            row[node] = idx
            clocks[node][idx - 1] = row
            done[node] = idx
            processed += 1
            woken = waiters.pop(eid, None)
            if woken:
                stack.extend(woken)

    if processed != total:
        stuck = [
            (i, done[i] + 1) for i in range(num_nodes) if done[i] < lengths[i]
        ]
        raise CyclicTraceError(
            f"trace has a causal cycle; events stuck at {stuck[:5]}"
        )
    for mat in clocks:
        mat.setflags(write=False)
    return clocks


def _forward_cross_deps(trace: Trace) -> Dict[EventId, Tuple[EventId, ...]]:
    """Cross-node dependencies for the forward pass: recv depends on send."""
    deps: Dict[EventId, Tuple[EventId, ...]] = {}
    for msg in trace.messages:
        deps[msg.recv] = deps.get(msg.recv, ()) + (msg.send,)
    return deps


def compute_forward_clocks(trace: Trace) -> List[np.ndarray]:
    """Forward vector timestamps (Definition 13) for every real event.

    Returns one read-only ``(k_i, P)`` matrix per node whose row
    ``j - 1`` is ``T((i, j))``.

    Raises
    ------
    CyclicTraceError
        If the trace's happened-before relation is cyclic.
    """
    _PASS_COUNTS["forward"] += 1
    lengths = [trace.num_real(i) for i in range(trace.num_nodes)]
    return _run_clock_pass(lengths, _forward_cross_deps(trace))


def extend_forward_clocks(
    trace: Trace, prior: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Advance forward timestamps to cover an append-only trace extension.

    ``prior`` holds the per-node timestamp matrices of a prefix of
    ``trace`` (as returned by :func:`compute_forward_clocks`); rows for
    the appended suffix events are computed without re-folding any
    prefix event, so the cost is proportional to the *new* events only
    (plus one C-level copy of the prefix rows into the larger matrices).

    The caller is responsible for the append-only precondition: per-node
    event sequences of the prefix trace must be prefixes of ``trace``'s,
    and no new message may target a prefix event (both are validated by
    :meth:`repro.events.poset.Execution.extend`).

    Raises
    ------
    CyclicTraceError
        If the extension's happened-before relation is cyclic.
    """
    _PASS_COUNTS["extend"] += 1
    lengths = [trace.num_real(i) for i in range(trace.num_nodes)]
    return _run_clock_pass(lengths, _forward_cross_deps(trace), prior=prior)


def compute_reverse_clocks(trace: Trace) -> List[np.ndarray]:
    """Reverse vector timestamps (Definition 14) for every real event.

    ``T^R(e)[i]`` counts real events on node ``i`` with ``e_i ≽ e``.
    Computed by running the forward algorithm on the time-reversed
    execution: local orders are flipped and every message edge
    ``send → recv`` becomes a dependency of (reversed) ``send`` on
    (reversed) ``recv``.

    Returns one read-only ``(k_i, P)`` matrix per node whose row
    ``j - 1`` is ``T^R((i, j))``.
    """
    _PASS_COUNTS["reverse"] += 1
    num_nodes = trace.num_nodes
    lengths = [trace.num_real(i) for i in range(num_nodes)]

    def rev(eid: EventId) -> EventId:
        node, idx = eid
        return (node, lengths[node] - idx + 1)

    cross: Dict[EventId, Tuple[EventId, ...]] = {}
    for msg in trace.messages:
        r_send = rev(msg.send)
        cross[r_send] = cross.get(r_send, ()) + (rev(msg.recv),)

    rev_clocks = _run_clock_pass(lengths, cross)

    out: List[np.ndarray] = []
    for node, k in enumerate(lengths):
        # Row j-1 of the output must be T^R((node, j)) which lives at
        # reversed index k - j + 1, i.e. row k - j of the reversed pass.
        mat = rev_clocks[node][::-1].copy() if k else rev_clocks[node].copy()
        mat.setflags(write=False)
        out.append(mat)
    return out
