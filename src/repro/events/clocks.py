"""Canonical vector clocks and reverse vector clocks, stored columnar.

Implements the timestamping machinery of Section 2.3 of the paper:

* **Forward timestamps** (Definition 13, the canonical vector clocks of
  Fidge and Mattern): ``T(e)[i]`` is the number of real events on node
  ``i`` that causally precede or equal ``e``.  The fundamental property
  is ``e ≺ e'  ⟺  T(e) < T(e')`` (componentwise ``≤`` with at least one
  strict), and for distinct events the cheap test
  ``e ≺ e'  ⟺  T(e')[node(e)] ≥ index(e)``.

* **Reverse timestamps** (Definition 14): ``T^R(e)[i]`` is the number of
  real events on node ``i`` that causally happen after or equal ``e``.
  As the paper observes, *"once the timestamp structure is established
  for the entire computation, the 'reverse' timestamp structure can also
  be established"* — we compute it by running the forward algorithm on
  the time-reversed trace.

Both computations run in a single topological pass over the trace using
a work-list (no transitive closure), with per-event cost ``O(|P|)`` from
the componentwise ``max``.

Storage layout
--------------
Each structure is one contiguous ``(|E|, |P|)`` int32 matrix — a
:class:`ClockTable` — indexed by the *flat event index*
``offsets[node] + idx - 1`` (node-major, local order within a node).
One matrix per structure (instead of one small array per event, or one
matrix per node) is what makes the columnar cut kernels of
:mod:`repro.core.cuts` single-gather operations and lets
:mod:`repro.core.parallel` publish the whole substrate zero-copy
through ``multiprocessing.shared_memory``.  Per-event and per-node
accessors return views into the matrix, so the historical per-event API
is preserved without copies.

Pass counters and worker processes
----------------------------------
``_PASS_COUNTS`` is a plain module-global dictionary, so it is
**per-process** state: a worker process forked or spawned by
:class:`~repro.core.parallel.ParallelBatchExecutor` has its own
counters (a fork inherits the parent's snapshot at fork time; a spawn
starts from zero).  Diagnostics that aggregate pass counts across a
parallel run would therefore report nonsense unless each worker is
zeroed on startup — the executor's pool initializer calls
:func:`reset_clock_pass_counts` for exactly that reason, and any custom
pool should do the same.  :func:`clock_pass_counts` tags its snapshot
with the reporting ``pid`` so misaggregated numbers are at least
attributable.
"""

from __future__ import annotations

# repro: hot, dtype-strict

import os
from collections.abc import Mapping, Sequence

import numpy as np

from .event import EventId
from .trace import Trace, TraceError

__all__ = [
    "CLOCK_DTYPE",
    "ClockTable",
    "GrowableClockTable",
    "CyclicTraceError",
    "compute_forward_table",
    "compute_reverse_table",
    "extend_forward_table",
    "compute_forward_clocks",
    "compute_reverse_clocks",
    "extend_forward_clocks",
    "clock_pass_counts",
    "reset_clock_pass_counts",
]

#: dtype of the columnar clock matrices.  int32 halves the memory and
#: shared-memory traffic of the previous int64 representation; clock
#: components count events on one node, so the range is ample.
CLOCK_DTYPE = np.int32

#: Number of full/incremental clock passes executed since the last reset
#: *in this process*, keyed by pass kind.  Purely diagnostic: regression
#: tests use it to assert that lazy code paths (e.g. the online
#: monitor's ingestion) never trigger a pass they should not pay for.
#: See the module docstring for the worker-process contract.
_PASS_COUNTS: dict[str, int] = {"forward": 0, "reverse": 0, "extend": 0}


def clock_pass_counts(include_pid: bool = False) -> dict[str, int]:
    """A snapshot of this process's pass counters.

    Keys ``forward``/``reverse``/``extend``; with ``include_pid``, also
    ``pid``, the id of the reporting process.  Counters are per-process
    (see the module docstring), so consumers aggregating across a
    worker pool must collect one snapshot per worker rather than read
    the parent's — the pid tag makes misaggregated numbers attributable.
    """
    snap: dict[str, int] = dict(_PASS_COUNTS)
    if include_pid:
        snap["pid"] = os.getpid()
    return snap


def reset_clock_pass_counts() -> None:
    """Zero this process's pass counters.

    Test-isolation helper, and the per-worker reset hook that
    :class:`~repro.core.parallel.ParallelBatchExecutor` installs as its
    pool initializer so forked workers do not inherit (and then
    re-report) the parent's pre-fork counts.
    """
    for key in _PASS_COUNTS:
        _PASS_COUNTS[key] = 0


class CyclicTraceError(TraceError):
    """Raised when a trace's happened-before relation contains a cycle.

    A cycle can only arise from message edges that contradict local
    orders (e.g. node 0 receives from node 1 before sending it the
    message that causally enabled that send).
    """


class ClockTable:
    """One timestamp structure as a contiguous ``(|E|, |P|)`` matrix.

    Row ``offsets[i] + j - 1`` holds the vector timestamp of event
    ``(i, j)``; node ``i``'s rows are the contiguous block
    ``data[offsets[i]:offsets[i+1]]``.  ``data`` is C-contiguous int32
    and read-only, which makes every accessor a zero-copy view and the
    whole structure publishable through ``multiprocessing.shared_memory``
    as a single buffer.
    """

    __slots__ = ("data", "offsets", "lengths")

    def __init__(self, data: np.ndarray, lengths: Sequence[int]) -> None:
        lens = np.asarray(lengths, dtype=np.int64)
        offsets = np.zeros(len(lens) + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        if data.shape != (int(offsets[-1]), len(lens)):
            raise ValueError(
                f"clock matrix must have shape {(int(offsets[-1]), len(lens))}, "
                f"got {data.shape}"
            )
        if data.dtype != CLOCK_DTYPE or not data.flags.c_contiguous:
            data = np.ascontiguousarray(data, dtype=CLOCK_DTYPE)
        data.setflags(write=False)
        offsets.setflags(write=False)
        lens.setflags(write=False)
        self.data = data
        self.offsets = offsets
        self.lengths = lens

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``|P|`` — the vector width."""
        return self.data.shape[1]

    @property
    def total_events(self) -> int:
        """``|E|`` — the number of rows."""
        return self.data.shape[0]

    def row(self, node: int, idx: int) -> np.ndarray:
        """The timestamp of event ``(node, idx)`` (read-only view)."""
        return self.data[self.offsets[node] + idx - 1]

    def node_view(self, node: int) -> np.ndarray:
        """All of ``node``'s rows as a ``(k_i, P)`` view (zero-copy)."""
        return self.data[self.offsets[node]:self.offsets[node + 1]]

    def views(self) -> list[np.ndarray]:
        """Per-node ``(k_i, P)`` views, in node order (zero-copy)."""
        return [self.node_view(i) for i in range(self.num_nodes)]

    def flat_index(self, eid: EventId) -> int:
        """The flat row index of event ``eid``."""
        node, idx = eid
        return int(self.offsets[node]) + idx - 1

    def flat_indices(self, ids: Sequence[EventId]) -> np.ndarray:
        """Flat row indices for a sequence of event ids (vectorized)."""
        arr = np.asarray(ids, dtype=np.int64).reshape(-1, 2)
        return self.offsets[arr[:, 0]] + arr[:, 1] - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClockTable(events={self.total_events}, "
            f"nodes={self.num_nodes}, dtype={self.data.dtype})"
        )


class GrowableClockTable:
    """Append-only forward-clock storage for streaming ingestion.

    :class:`ClockTable` is the right substrate for a *finished* trace —
    one immutable node-major matrix — but a live monitor appends one
    event at a time in arbitrary cross-node interleaving.  This class
    keeps one capacity-doubling ``(cap_i, |P|)`` int32 block per node,
    so an append is an in-place row write (copy the node's previous
    row, fold message dependencies with ``np.maximum``, tick own
    component): amortized O(|P|) with **no per-event allocation**.

    Rows are written exactly once and never mutated afterwards, so
    views handed out by :meth:`row` / :meth:`node_view` remain valid
    snapshots even across a capacity-doubling reallocation (the old
    buffer's values are final).

    :meth:`snapshot` materialises the live contents as a regular
    :class:`ClockTable` — one block copy per node, **zero clock
    passes** (the ``forward``/``extend`` counters of
    :func:`clock_pass_counts` do not move) — and memoizes the result
    keyed by :attr:`version`, so repeated finalisations of an unchanged
    stream are free.
    """

    __slots__ = ("_blocks", "_counts", "_version", "_snapshot",
                 "_snapshot_version")

    # Version-discipline contract enforced by `python -m repro lint`
    # (REP001/REP005); the decorator form lives in repro.core.versioning,
    # which this layer cannot import (core depends on events).
    _REPRO_VERSIONED = {
        "version": "_version",
        "state": ("_blocks", "_counts"),
        "caches": ("_snapshot",),
        "guards": (),
    }

    def __init__(self, num_nodes: int, capacity: int = 16) -> None:
        if num_nodes <= 0:
            raise ValueError("need at least one node")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._blocks: list[np.ndarray] = [
            np.zeros((capacity, num_nodes), dtype=CLOCK_DTYPE)
            for _ in range(num_nodes)
        ]
        self._counts: list[int] = [0] * num_nodes
        self._version = 0
        self._snapshot: "ClockTable | None" = None
        self._snapshot_version = -1

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``|P|`` — the vector width."""
        return len(self._blocks)

    @property
    def total_events(self) -> int:
        """Total appended events across all nodes."""
        return self._version

    @property
    def version(self) -> int:
        """Monotonic append counter (equals :attr:`total_events`).

        :meth:`snapshot` and downstream finalisation caches key on it.
        """
        return self._version

    def count(self, node: int) -> int:
        """Number of events appended on ``node``."""
        return self._counts[node]

    @property
    def lengths(self) -> tuple[int, ...]:
        """Per-node appended event counts."""
        return tuple(self._counts)

    def row(self, node: int, idx: int) -> np.ndarray:
        """The timestamp of event ``(node, idx)`` (live view; treat as
        read-only — rows are immutable once written)."""
        if not 1 <= idx <= self._counts[node]:
            raise IndexError(
                f"event ({node}, {idx}) has not been appended "
                f"(node has {self._counts[node]} events)"
            )
        return self._blocks[node][idx - 1]

    def node_view(self, node: int) -> np.ndarray:
        """``node``'s appended rows as a ``(count, P)`` view (zero-copy)."""
        return self._blocks[node][: self._counts[node]]

    # ------------------------------------------------------------------
    def advance(self, node: int, extra: "np.ndarray | None" = None) -> np.ndarray:
        """Append the next event on ``node`` and return its clock row.

        The new row is the node's previous row (or zeros for the first
        event) folded with ``extra`` (a message dependency's clock, if
        any) under componentwise max, with the own component ticked —
        Mattern/Fidge maintenance, written straight into preallocated
        storage.
        """
        blk = self._blocks[node]
        k = self._counts[node]
        if k == blk.shape[0]:
            grown = np.zeros((2 * k, len(self._blocks)), dtype=CLOCK_DTYPE)
            grown[:k] = blk
            blk = self._blocks[node] = grown
        row = blk[k]
        if k:
            row[:] = blk[k - 1]
        if extra is not None:
            np.maximum(row, extra, out=row)
        row[node] = k + 1
        self._counts[node] = k + 1
        self._version += 1
        return row

    # ------------------------------------------------------------------
    def snapshot(self) -> ClockTable:
        """The live contents as an immutable :class:`ClockTable`.

        One C-level block copy per node; no clock pass.  Memoized by
        :attr:`version`: finalising an unchanged stream twice returns
        the same table object.
        """
        if self._snapshot is not None and self._snapshot_version == self._version:
            return self._snapshot
        data = np.concatenate(
            [self.node_view(i) for i in range(self.num_nodes)], axis=0
        )
        table = ClockTable(data, self.lengths)
        self._snapshot = table
        self._snapshot_version = self._version
        return table

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GrowableClockTable(events={self.total_events}, "
            f"nodes={self.num_nodes})"
        )


def _run_clock_pass(
    lengths: Sequence[int],
    cross_deps: Mapping[EventId, tuple[EventId, ...]],
    prior: "ClockTable | None" = None,
) -> ClockTable:
    """Generic forward vector-clock pass over the columnar matrix.

    Parameters
    ----------
    lengths:
        ``lengths[i]`` is the number of events to process on node ``i``;
        events are ``(i, 1) .. (i, lengths[i])`` in processing order.
    cross_deps:
        Maps an event id to the cross-node events it directly depends on
        (its message predecessors).  Local predecessors are implicit.
    prior:
        Optional :class:`ClockTable` of already-computed timestamp rows
        (an append-only per-node prefix of the new computation).  Its
        node blocks are copied in verbatim (one C-level copy each) and
        only events beyond them are processed — the incremental path
        used by :func:`extend_forward_table`.

    Returns
    -------
    ClockTable
        The filled ``(sum(lengths), P)`` matrix.

    Raises
    ------
    CyclicTraceError
        If the dependency structure cannot be scheduled (a causal cycle).
    """
    num_nodes = len(lengths)
    lens = np.asarray(lengths, dtype=np.int64)
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    total = int(offsets[-1])
    data = np.zeros((total, num_nodes), dtype=CLOCK_DTYPE)
    done = [0] * num_nodes  # events completed per node
    if prior is not None:
        for i in range(num_nodes):
            block = prior.node_view(i)
            k = block.shape[0]
            data[offsets[i]:offsets[i] + k] = block
            done[i] = k
    # waiters[(m, d)] = nodes whose next event is blocked until node m
    # has completed d events.
    waiters: dict[EventId, list[int]] = {}
    stack = list(range(num_nodes))
    processed = sum(done)

    while stack:
        node = stack.pop()
        k = lengths[node]
        base = offsets[node]
        while done[node] < k:
            idx = done[node] + 1
            eid = (node, idx)
            deps = cross_deps.get(eid, ())
            blocked_on = None
            for dep_node, dep_idx in deps:
                if done[dep_node] < dep_idx:
                    blocked_on = (dep_node, dep_idx)
                    break
            if blocked_on is not None:
                waiters.setdefault(blocked_on, []).append(node)
                break
            row = data[base + idx - 1]
            if idx > 1:
                row[:] = data[base + idx - 2]
            for dep_node, dep_idx in deps:
                np.maximum(
                    row, data[offsets[dep_node] + dep_idx - 1], out=row
                )
            row[node] = idx
            done[node] = idx
            processed += 1
            woken = waiters.pop(eid, None)
            if woken:
                stack.extend(woken)

    if processed != total:
        stuck = [
            (i, done[i] + 1) for i in range(num_nodes) if done[i] < lengths[i]
        ]
        raise CyclicTraceError(
            f"trace has a causal cycle; events stuck at {stuck[:5]}"
        )
    return ClockTable(data, lengths)


def _forward_cross_deps(trace: Trace) -> dict[EventId, tuple[EventId, ...]]:
    """Cross-node dependencies for the forward pass: recv depends on send."""
    deps: dict[EventId, tuple[EventId, ...]] = {}
    for msg in trace.messages:
        deps[msg.recv] = deps.get(msg.recv, ()) + (msg.send,)
    return deps


def compute_forward_table(trace: Trace) -> ClockTable:
    """Forward vector timestamps (Definition 13) as one columnar matrix.

    Raises
    ------
    CyclicTraceError
        If the trace's happened-before relation is cyclic.
    """
    _PASS_COUNTS["forward"] += 1
    lengths = [trace.num_real(i) for i in range(trace.num_nodes)]
    return _run_clock_pass(lengths, _forward_cross_deps(trace))


def extend_forward_table(trace: Trace, prior: ClockTable) -> ClockTable:
    """Advance a forward :class:`ClockTable` over an append-only extension.

    ``prior`` holds the timestamps of a prefix of ``trace``; rows for
    the appended suffix events are computed without re-folding any
    prefix event, so the cost is proportional to the *new* events only
    (plus one C-level copy per node block into the larger matrix).

    The caller is responsible for the append-only precondition: per-node
    event sequences of the prefix trace must be prefixes of ``trace``'s,
    and no new message may target a prefix event (both are validated by
    :meth:`repro.events.poset.Execution.extend`).

    Raises
    ------
    CyclicTraceError
        If the extension's happened-before relation is cyclic.
    """
    _PASS_COUNTS["extend"] += 1
    lengths = [trace.num_real(i) for i in range(trace.num_nodes)]
    return _run_clock_pass(lengths, _forward_cross_deps(trace), prior=prior)


def compute_reverse_table(trace: Trace) -> ClockTable:
    """Reverse vector timestamps (Definition 14) as one columnar matrix.

    ``T^R(e)[i]`` counts real events on node ``i`` with ``e_i ≽ e``.
    Computed by running the forward algorithm on the time-reversed
    execution: local orders are flipped and every message edge
    ``send → recv`` becomes a dependency of (reversed) ``send`` on
    (reversed) ``recv``.
    """
    _PASS_COUNTS["reverse"] += 1
    num_nodes = trace.num_nodes
    lengths = [trace.num_real(i) for i in range(num_nodes)]

    def rev(eid: EventId) -> EventId:
        node, idx = eid
        return (node, lengths[node] - idx + 1)

    cross: dict[EventId, tuple[EventId, ...]] = {}
    for msg in trace.messages:
        r_send = rev(msg.send)
        cross[r_send] = cross.get(r_send, ()) + (rev(msg.recv),)

    table = _run_clock_pass(lengths, cross)

    # Row j-1 of the output must be T^R((node, j)) which the reversed
    # pass computed at reversed index k - j + 1; flip each node block.
    data = np.empty_like(table.data)
    for node in range(num_nodes):
        lo, hi = table.offsets[node], table.offsets[node + 1]
        data[lo:hi] = table.data[lo:hi][::-1]
    return ClockTable(data, lengths)


def _table_from_node_matrices(matrices: Sequence[np.ndarray]) -> ClockTable:
    """Stack caller-supplied per-node matrices into one :class:`ClockTable`."""
    if not len(matrices):
        raise ValueError("need at least one node matrix")
    lengths = [int(mat.shape[0]) for mat in matrices]
    num_nodes = len(matrices)
    data = np.zeros((sum(lengths), num_nodes), dtype=CLOCK_DTYPE)
    pos = 0
    for mat in matrices:
        data[pos:pos + mat.shape[0]] = mat
        pos += mat.shape[0]
    return ClockTable(data, lengths)


# ----------------------------------------------------------------------
# per-node list API (thin wrappers over the columnar tables)
# ----------------------------------------------------------------------
def compute_forward_clocks(trace: Trace) -> list[np.ndarray]:
    """Forward vector timestamps (Definition 13) for every real event.

    Returns one read-only ``(k_i, P)`` matrix per node whose row
    ``j - 1`` is ``T((i, j))`` — zero-copy views into one columnar
    :class:`ClockTable` (see :func:`compute_forward_table`).

    Raises
    ------
    CyclicTraceError
        If the trace's happened-before relation is cyclic.
    """
    return compute_forward_table(trace).views()


def extend_forward_clocks(
    trace: Trace, prior: Sequence[np.ndarray]
) -> list[np.ndarray]:
    """Advance forward timestamps to cover an append-only trace extension.

    Per-node-matrix wrapper over :func:`extend_forward_table`; ``prior``
    is a sequence of per-node matrices (as returned by
    :func:`compute_forward_clocks`).

    Raises
    ------
    CyclicTraceError
        If the extension's happened-before relation is cyclic.
    """
    return extend_forward_table(trace, _table_from_node_matrices(prior)).views()


def compute_reverse_clocks(trace: Trace) -> list[np.ndarray]:
    """Reverse vector timestamps (Definition 14) for every real event.

    Returns one read-only ``(k_i, P)`` matrix per node whose row
    ``j - 1`` is ``T^R((i, j))`` — zero-copy views into one columnar
    :class:`ClockTable` (see :func:`compute_reverse_table`).
    """
    return compute_reverse_table(trace).views()
