"""Recorded traces of distributed computations.

A :class:`Trace` is the raw, immutable record of one distributed
execution: for every node, the linearly ordered sequence of real events
it executed, plus the set of messages exchanged (as pairs of send/recv
event identifiers).  A trace is purely syntactic — causality, vector
timestamps and the cut machinery are layered on top by
:class:`repro.events.poset.Execution`.

Traces are what the paper's Problem 4 takes as input: *"Given a recorded
trace of a distributed computation (E, ≺) and a set of nonatomic events
A ..."*.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from .event import Event, EventId, EventKind

__all__ = ["Message", "Trace", "TraceError", "causal_schedule"]


class TraceError(ValueError):
    """Raised when a trace is structurally invalid."""


@dataclass(frozen=True, slots=True)
class Message:
    """A message edge: the send event and its matching receive event.

    Both ends are identified by ``(node, index)`` pairs of *real*
    events.  A message may connect two events of the same node (a
    self-message), in which case the send must locally precede the
    receive.
    """

    send: EventId
    recv: EventId

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.send}->{self.recv}"


class Trace:
    """An immutable record of one distributed execution.

    Parameters
    ----------
    events:
        ``events[i]`` is the sequence of *real* events of node ``i`` in
        local execution order.  Event ``events[i][j]`` must carry
        ``node == i`` and ``index == j + 1``.
    messages:
        The message edges.  Each send event must be of kind
        :attr:`EventKind.SEND` and each receive of kind
        :attr:`EventKind.RECV`; every event can be the endpoint of at
        most one message in each role.

    Raises
    ------
    TraceError
        If indices, kinds or message endpoints are inconsistent.

    Notes
    -----
    Acyclicity of the induced happened-before relation is *not* checked
    here (it requires a topological pass); it is enforced when the trace
    is analysed by :class:`repro.events.poset.Execution`.
    """

    __slots__ = ("_events", "_messages", "_recv_of", "_send_of", "_num_nodes")

    def __init__(
        self,
        events: Sequence[Sequence[Event]],
        messages: Sequence[Message] = (),
    ) -> None:
        self._events: tuple[tuple[Event, ...], ...] = tuple(
            tuple(per_node) for per_node in events
        )
        self._messages: tuple[Message, ...] = tuple(messages)
        self._num_nodes = len(self._events)
        self._validate_events()
        self._send_of: dict[EventId, EventId] = {}
        self._recv_of: dict[EventId, EventId] = {}
        self._validate_messages()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate_events(self) -> None:
        for i, per_node in enumerate(self._events):
            for j, ev in enumerate(per_node):
                if ev.node != i:
                    raise TraceError(
                        f"event {ev} stored under node {i} but claims node {ev.node}"
                    )
                if ev.index != j + 1:
                    raise TraceError(
                        f"event {ev} at position {j} of node {i} must have "
                        f"index {j + 1}, got {ev.index}"
                    )
                if ev.is_dummy:
                    raise TraceError(
                        f"dummy event {ev} may not appear in a trace; dummies "
                        "are synthesised by Execution"
                    )

    def _validate_messages(self) -> None:
        for msg in self._messages:
            snd = self._checked_event(msg.send, "send")
            rcv = self._checked_event(msg.recv, "recv")
            if snd.kind is not EventKind.SEND:
                raise TraceError(f"message send endpoint {snd} is not a SEND event")
            if rcv.kind is not EventKind.RECV:
                raise TraceError(f"message recv endpoint {rcv} is not a RECV event")
            if msg.send in self._recv_of:
                raise TraceError(f"event {msg.send} sends two messages")
            if msg.recv in self._send_of:
                raise TraceError(f"event {msg.recv} receives two messages")
            if msg.send[0] == msg.recv[0] and msg.send[1] >= msg.recv[1]:
                raise TraceError(
                    f"self-message {msg} must be sent before it is received"
                )
            self._recv_of[msg.send] = msg.recv
            self._send_of[msg.recv] = msg.send

    def _checked_event(self, eid: EventId, role: str) -> Event:
        node, index = eid
        if not (0 <= node < self._num_nodes):
            raise TraceError(f"message {role} endpoint {eid}: no such node")
        if not (1 <= index <= len(self._events[node])):
            raise TraceError(f"message {role} endpoint {eid}: no such event")
        return self._events[node][index - 1]

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of process/node partitions ``|P|``."""
        return self._num_nodes

    @property
    def messages(self) -> tuple[Message, ...]:
        """All message edges of the trace."""
        return self._messages

    def num_real(self, node: int) -> int:
        """Number of real events ``k_i`` on ``node``."""
        return len(self._events[node])

    @property
    def total_events(self) -> int:
        """Total number of real events across all nodes."""
        return sum(len(per_node) for per_node in self._events)

    def events_of(self, node: int) -> tuple[Event, ...]:
        """The real events of ``node`` in local order."""
        return self._events[node]

    def event(self, eid: EventId) -> Event:
        """Look up the real event with identifier ``eid``.

        Raises
        ------
        KeyError
            If ``eid`` does not denote a real event of this trace.
        """
        node, index = eid
        if not (0 <= node < self._num_nodes) or not (
            1 <= index <= len(self._events[node])
        ):
            raise KeyError(eid)
        return self._events[node][index - 1]

    def send_of(self, recv: EventId) -> EventId | None:
        """The send event matched to receive event ``recv`` (or None)."""
        return self._send_of.get(recv)

    def recv_of(self, send: EventId) -> EventId | None:
        """The receive event matched to send event ``send`` (or None)."""
        return self._recv_of.get(send)

    def iter_events(self) -> Iterator[Event]:
        """Iterate over every real event, node-major."""
        for per_node in self._events:
            yield from per_node

    def iter_ids(self) -> Iterator[EventId]:
        """Iterate over every real event identifier, node-major."""
        for per_node in self._events:
            for ev in per_node:
                yield ev.eid

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._events == other._events and set(self._messages) == set(
            other._messages
        )

    def __hash__(self) -> int:
        return hash((self._events, frozenset(self._messages)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(nodes={self._num_nodes}, events={self.total_events}, "
            f"messages={len(self._messages)})"
        )


def _node_lengths(trace: Trace) -> list[int]:
    """Per-node real event counts (helper shared by clock routines)."""
    return [trace.num_real(i) for i in range(trace.num_nodes)]


def causal_schedule(trace: Trace) -> list[tuple[int, Event, EventId | None]]:
    """A causally valid global replay order for a recorded trace.

    Returns ``(node, event, send_eid)`` triples — exactly what a live
    monitoring point would observe: per-node program order, every
    receive after its matching send.  ``send_eid`` is the id of the
    matching send for receive events, else ``None``.  Shared by the
    ``stream`` CLI command, the networked monitoring client's trace
    replay, and the streaming benchmarks.

    Raises
    ------
    TraceError
        If no such order exists (a cycle through the message edges).
    """
    order: list[tuple[int, Event, EventId | None]] = []
    emitted: set[EventId] = set()
    pos = [0] * trace.num_nodes
    progressed = True
    while progressed:
        progressed = False
        for node in range(trace.num_nodes):
            while pos[node] < trace.num_real(node):
                ev = trace.events_of(node)[pos[node]]
                send = trace.send_of(ev.eid)
                if send is not None and send not in emitted:
                    break  # wait until the matching send is replayed
                emitted.add(ev.eid)
                order.append((node, ev, send))
                pos[node] += 1
                progressed = True
    if pos != _node_lengths(trace):
        raise TraceError(
            "trace admits no causally valid replay order (message cycle)"
        )
    return order
