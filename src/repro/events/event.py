"""Atomic events of a distributed execution.

The paper models a distributed computation as a poset ``(E, ≺)`` whose
elements are *atomic events*, partitioned into local executions ``E_i``
(one linearly ordered sequence per process/node ``i``).  Each local
execution carries two *dummy* events: an initial event ``⊥_i`` and a
final event ``⊤_i`` that respectively precede and follow every real
event of the whole computation.

This module defines the primitive :class:`Event` value type and its
identifier scheme.  An event is identified by its ``(node, index)`` pair:

* ``index == 0`` is the dummy initial event ``⊥_i``;
* ``1 <= index <= k_i`` are the real events, in local execution order;
* ``index == k_i + 1`` is the dummy final event ``⊤_i``.

Events are plain immutable values; all relational structure (causality,
timestamps) lives in :class:`repro.events.poset.Execution`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "EventId",
    "EventKind",
    "Event",
    "bottom_id",
    "is_real_id",
]

#: An event identifier: ``(node, local_index)``.
EventId = tuple[int, int]


class EventKind(enum.Enum):
    """Classification of an atomic event.

    ``INTERNAL``, ``SEND`` and ``RECV`` are the usual message-passing
    event kinds; ``BOTTOM`` and ``TOP`` are the dummy events ``⊥_i``
    and ``⊤_i`` required by the paper's model (Section 1).
    """

    INTERNAL = "internal"
    SEND = "send"
    RECV = "recv"
    BOTTOM = "bottom"
    TOP = "top"

    @property
    def is_dummy(self) -> bool:
        """True for the ``⊥``/``⊤`` sentinel kinds."""
        return self in (EventKind.BOTTOM, EventKind.TOP)


@dataclass(frozen=True, slots=True)
class Event:
    """One atomic event of a distributed execution.

    Parameters
    ----------
    node:
        The process/node partition the event belongs to.
    index:
        Local 1-based index within the node's real events (0 and
        ``k_i + 1`` are reserved for the dummies).
    kind:
        The :class:`EventKind` of the event.
    label:
        Optional application-level tag (e.g. ``"cs-enter"``); used by
        :mod:`repro.nonatomic.selection` to group events into nonatomic
        events.
    time:
        Optional physical timestamp (simulation time); carries no causal
        meaning, but real-time applications report it.
    payload:
        Optional application data attached to the event.
    """

    node: int
    index: int
    kind: EventKind = EventKind.INTERNAL
    label: str | None = None
    time: float | None = None
    payload: Any = field(default=None, compare=False)

    @property
    def eid(self) -> EventId:
        """The ``(node, index)`` identifier of this event."""
        return (self.node, self.index)

    @property
    def is_dummy(self) -> bool:
        """True if this is a ``⊥``/``⊤`` sentinel event."""
        return self.kind.is_dummy

    @property
    def is_real(self) -> bool:
        """True if this is an application (non-dummy) event."""
        return not self.kind.is_dummy

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = f":{self.label}" if self.label else ""
        return f"e({self.node},{self.index}){tag}"


def bottom_id(node: int) -> EventId:
    """Identifier of the dummy initial event ``⊥_node``."""
    return (node, 0)


def is_real_id(eid: EventId, num_real: int) -> bool:
    """True if ``eid`` denotes a real event given ``num_real`` real events.

    Parameters
    ----------
    eid:
        Candidate identifier.
    num_real:
        Number of real events ``k_i`` on the event's node.
    """
    return 1 <= eid[1] <= num_real
