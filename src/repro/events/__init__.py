"""Event/poset substrate: atomic events, traces, vector clocks.

This package implements the execution model of Section 1 and the
timestamping machinery of Section 2.3 of the paper: the poset
``(E, ≺)`` of atomic events partitioned into local executions with
dummy ``⊥``/``⊤`` events, canonical forward vector clocks (Fidge and
Mattern, Def. 13) and reverse clocks (Def. 14).
"""

from .builder import MessageHandle, TraceBuilder
from .clocks import (
    CyclicTraceError,
    GrowableClockTable,
    clock_pass_counts,
    compute_forward_clocks,
    compute_reverse_clocks,
    extend_forward_clocks,
    reset_clock_pass_counts,
)
from .event import Event, EventId, EventKind
from .lamport import compute_lamport_clocks, lamport_order_violations
from .poset import Execution, Ordering
from .serialization import (
    dumps,
    load,
    loads,
    save,
    trace_from_dict,
    trace_to_dict,
)
from .trace import Message, Trace, TraceError

__all__ = [
    "Event",
    "EventId",
    "EventKind",
    "Message",
    "MessageHandle",
    "Trace",
    "TraceBuilder",
    "TraceError",
    "CyclicTraceError",
    "GrowableClockTable",
    "Execution",
    "Ordering",
    "compute_forward_clocks",
    "compute_reverse_clocks",
    "extend_forward_clocks",
    "clock_pass_counts",
    "reset_clock_pass_counts",
    "compute_lamport_clocks",
    "lamport_order_violations",
    "trace_to_dict",
    "trace_from_dict",
    "dumps",
    "loads",
    "save",
    "load",
]
