"""Scalar Lamport clocks — the contrast to vector timestamps.

Section 2.3 requires clocks with ``e ≺ e' ⟺ T(e) < T(e')`` and notes
that vectors of size ``|P|`` are the *minimum* timestamp achieving it.
This module implements the classic scalar Lamport clock [14] to make
the contrast executable:

* soundness holds: ``e ≺ e' ⟹ L(e) < L(e')``;
* completeness fails: concurrent events can have ordered scalars, so
  the converse breaks — which is exactly why the relation machinery
  cannot run on Lamport clocks (the suite exhibits the failure on
  every execution with concurrency).

Also provided: :func:`lamport_order_violations`, which counts how often
the scalar order lies about causality on a trace — a measure used in
the documentation to motivate vector clocks.
"""

from __future__ import annotations


from .event import EventId
from .trace import Trace

__all__ = ["compute_lamport_clocks", "lamport_order_violations"]


def compute_lamport_clocks(trace: Trace) -> dict[EventId, int]:
    """Scalar Lamport timestamps for every real event.

    ``L(e) = L(previous local event) + 1``, maximised with
    ``L(matching send) + 1`` for receives.  Computed with the same
    work-list schedule as the vector pass.
    """
    num_nodes = trace.num_nodes
    lengths = [trace.num_real(i) for i in range(num_nodes)]
    send_of = {}
    for msg in trace.messages:
        send_of[msg.recv] = msg.send

    clocks: dict[EventId, int] = {}
    done = [0] * num_nodes
    waiters: dict[EventId, list[int]] = {}
    stack = list(range(num_nodes))
    while stack:
        node = stack.pop()
        while done[node] < lengths[node]:
            idx = done[node] + 1
            eid = (node, idx)
            dep = send_of.get(eid)
            if dep is not None and dep not in clocks:
                waiters.setdefault(dep, []).append(node)
                break
            base = clocks.get((node, idx - 1), 0)
            if dep is not None:
                base = max(base, clocks[dep])
            clocks[eid] = base + 1
            done[node] = idx
            for w in waiters.pop(eid, ()):  # wake blocked receivers
                stack.append(w)
    if len(clocks) != sum(lengths):
        from .clocks import CyclicTraceError

        raise CyclicTraceError("trace has a causal cycle")
    return clocks


def lamport_order_violations(
    trace: Trace, sample: int | None = None, seed: int = 0
) -> tuple[int, int]:
    """Count scalar-order lies: pairs with ``L(a) < L(b)`` but ``a ⊀ b``.

    Returns ``(violations, pairs_checked)`` over all (or ``sample``)
    distinct ordered pairs.  Non-zero on any execution with cross-node
    concurrency — the executable form of "scalar clocks cannot decide
    causality".
    """
    import numpy as np

    from .poset import Execution

    ex = Execution(trace)
    clocks = compute_lamport_clocks(trace)
    ids = sorted(clocks)
    pairs = [(a, b) for a in ids for b in ids if a != b]
    if sample is not None and sample < len(pairs):
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(pairs), size=sample, replace=False)
        pairs = [pairs[int(i)] for i in picks]
    violations = 0
    for a, b in pairs:
        if clocks[a] < clocks[b] and not ex.precedes(a, b):
            violations += 1
    return violations, len(pairs)
