"""JSON (de)serialisation of traces.

Traces are the durable artifact of a distributed run; real-time
applications record them online and analyse them offline (the paper's
Problem 4 starts from "a recorded trace").  The schema is deliberately
simple and versioned:

.. code-block:: json

    {
      "version": 1,
      "num_nodes": 2,
      "events": [[{"kind": "send", "label": "req", "time": 0.5}], [...]],
      "messages": [[[0, 1], [1, 1]]]
    }

Event ``node``/``index`` fields are implicit in the nesting and position
(index = position + 1), which keeps files compact and unforgeable.
Payloads are serialised only when JSON-representable.
"""

from __future__ import annotations

import json
from typing import Any

from .event import Event, EventKind
from .trace import Message, Trace, TraceError

__all__ = [
    "MAX_TRACE_BYTES",
    "PayloadTooLargeError",
    "SchemaVersionError",
    "trace_to_dict",
    "trace_from_dict",
    "dumps",
    "loads",
    "save",
    "load",
]

SCHEMA_VERSION = 1

#: Default byte ceiling for :func:`loads` when a limit is requested.
#: Wire-facing callers (the monitoring service protocol) pass their own
#: frame budget; the default suits single-trace payloads.
MAX_TRACE_BYTES = 16 * 1024 * 1024


class PayloadTooLargeError(TraceError):
    """A serialised trace exceeded the caller's byte budget.

    Raised *before* JSON parsing, so oversized (or hostile) payloads
    are rejected at O(len) cost without materialising anything.
    """


class SchemaVersionError(TraceError):
    """A trace payload declared an unknown schema version."""


def _event_to_dict(ev: Event) -> dict[str, Any]:
    out: dict[str, Any] = {"kind": ev.kind.value}
    if ev.label is not None:
        out["label"] = ev.label
    if ev.time is not None:
        out["time"] = ev.time
    if ev.payload is not None:
        try:
            json.dumps(ev.payload)
        except (TypeError, ValueError):
            pass
        else:
            out["payload"] = ev.payload
    return out


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    """Convert a trace to a JSON-ready dictionary."""
    return {
        "version": SCHEMA_VERSION,
        "num_nodes": trace.num_nodes,
        "events": [
            [_event_to_dict(ev) for ev in trace.events_of(i)]
            for i in range(trace.num_nodes)
        ],
        "messages": [
            [list(msg.send), list(msg.recv)] for msg in trace.messages
        ],
    }


def trace_from_dict(data: dict[str, Any]) -> Trace:
    """Reconstruct a trace from :func:`trace_to_dict` output.

    Raises
    ------
    TraceError
        If the payload is malformed or uses an unknown schema version.
    """
    version = data.get("version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"unsupported trace schema version: {version!r} "
            f"(this reader speaks version {SCHEMA_VERSION})"
        )
    try:
        num_nodes = int(data["num_nodes"])
        raw_events: list[list[dict[str, Any]]] = data["events"]
        raw_messages = data["messages"]
    except (KeyError, TypeError) as exc:
        raise TraceError(f"malformed trace payload: {exc}") from exc
    if len(raw_events) != num_nodes:
        raise TraceError(
            f"num_nodes={num_nodes} but {len(raw_events)} event lists present"
        )
    events: list[list[Event]] = []
    for node, per_node in enumerate(raw_events):
        row: list[Event] = []
        for pos, rec in enumerate(per_node):
            try:
                kind = EventKind(rec.get("kind", "internal"))
            except ValueError as exc:
                raise TraceError(f"unknown event kind: {rec.get('kind')!r}") from exc
            row.append(
                Event(
                    node=node,
                    index=pos + 1,
                    kind=kind,
                    label=rec.get("label"),
                    time=rec.get("time"),
                    payload=rec.get("payload"),
                )
            )
        events.append(row)
    messages = []
    for pair in raw_messages:
        try:
            (s_node, s_idx), (r_node, r_idx) = pair
        except (TypeError, ValueError) as exc:
            raise TraceError(f"malformed message record: {pair!r}") from exc
        messages.append(
            Message(send=(int(s_node), int(s_idx)), recv=(int(r_node), int(r_idx)))
        )
    return Trace(events, messages)


def dumps(trace: Trace, **json_kwargs: Any) -> str:
    """Serialise a trace to a JSON string."""
    return json.dumps(trace_to_dict(trace), **json_kwargs)


def loads(text: str | bytes, *, max_bytes: int | None = None) -> Trace:
    """Deserialise a trace from a JSON string.

    Parameters
    ----------
    text:
        The JSON document (``str`` or UTF-8 ``bytes``).
    max_bytes:
        Optional size guard: payloads whose encoded size exceeds this
        many bytes are rejected with :class:`PayloadTooLargeError`
        *before* parsing.  Pass :data:`MAX_TRACE_BYTES` for the default
        ceiling; ``None`` (the default) keeps the historical unlimited
        behaviour for trusted local files.

    Raises
    ------
    PayloadTooLargeError
        If ``max_bytes`` is given and the payload exceeds it.
    SchemaVersionError
        If the payload declares an unknown schema version.
    TraceError
        If the payload is otherwise malformed (including non-JSON
        input, which is reported as a malformed payload rather than a
        bare ``json.JSONDecodeError``).
    """
    size = len(text) if isinstance(text, bytes) else len(text.encode("utf-8"))
    if max_bytes is not None and size > max_bytes:
        raise PayloadTooLargeError(
            f"serialised trace is {size} bytes, over the {max_bytes}-byte limit"
        )
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(f"malformed trace payload: {exc}") from exc
    if not isinstance(data, dict):
        raise TraceError(
            f"trace payload must be a JSON object, got {type(data).__name__}"
        )
    return trace_from_dict(data)


def save(trace: Trace, path: str, **json_kwargs: Any) -> None:
    """Write a trace to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_to_dict(trace), fh, **json_kwargs)


def load(path: str) -> Trace:
    """Read a trace previously written by :func:`save`."""
    with open(path, encoding="utf-8") as fh:
        return trace_from_dict(json.load(fh))
