"""The analysed execution poset ``(E, ≺)``.

:class:`Execution` wraps a recorded :class:`~repro.events.trace.Trace`
with the forward and reverse vector timestamp structures of Section 2.3
and exposes the causality relation ``≺`` between atomic events.  It is
the substrate on which nonatomic events, cuts and the synchronization
relations are defined.

Index conventions (see DESIGN.md §2): real events of node ``i`` have
local indices ``1..k_i``; the dummy initial event ``⊥_i`` is index 0 and
the dummy final event ``⊤_i`` is index ``k_i + 1``.  The paper's model
axiom ``∀⊥_i ∀⊤_j ∀e ∈ (E \\ E^⊥ \\ E^⊤): ⊥_i ≺ e ≺ ⊤_j`` is built into
the precedence methods.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set, Tuple

import numpy as np

from .clocks import compute_forward_clocks, compute_reverse_clocks
from .event import Event, EventId, EventKind
from .trace import Trace

__all__ = ["Execution", "Ordering"]


class Ordering:
    """Symbolic outcomes of :meth:`Execution.compare`."""

    BEFORE = "before"
    AFTER = "after"
    EQUAL = "equal"
    CONCURRENT = "concurrent"


class Execution:
    """A distributed execution with its timestamp structures.

    Parameters
    ----------
    trace:
        The recorded trace.  Its happened-before relation must be
        acyclic; otherwise :class:`~repro.events.clocks.CyclicTraceError`
        is raised.

    Notes
    -----
    Building an execution performs the one-time timestamping pass the
    paper assumes: forward clocks (Def. 13) and reverse clocks (Def. 14)
    for every real event, each an ``O(|E|·|P|)`` computation.  All query
    methods afterwards are ``O(1)`` or ``O(|P|)``.
    """

    __slots__ = ("_trace", "_fwd", "_rev", "_lengths")

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self._fwd = compute_forward_clocks(trace)
        self._rev = compute_reverse_clocks(trace)
        self._lengths: Tuple[int, ...] = tuple(
            trace.num_real(i) for i in range(trace.num_nodes)
        )

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def trace(self) -> Trace:
        """The underlying recorded trace."""
        return self._trace

    @property
    def num_nodes(self) -> int:
        """Number of process/node partitions ``|P|``."""
        return self._trace.num_nodes

    @property
    def lengths(self) -> Tuple[int, ...]:
        """Per-node real event counts ``(k_0, ..., k_{P-1})``."""
        return self._lengths

    def num_real(self, node: int) -> int:
        """Number of real events ``k_i`` of ``node``."""
        return self._lengths[node]

    def top_index(self, node: int) -> int:
        """Local index of the dummy final event ``⊤_node``."""
        return self._lengths[node] + 1

    def event(self, eid: EventId) -> Event:
        """The real :class:`Event` with identifier ``eid``."""
        return self._trace.event(eid)

    def is_real(self, eid: EventId) -> bool:
        """True if ``eid`` denotes a real (non-dummy) event."""
        node, idx = eid
        return 0 <= node < self.num_nodes and 1 <= idx <= self._lengths[node]

    def is_bottom(self, eid: EventId) -> bool:
        """True if ``eid`` denotes a dummy initial event ``⊥_i``."""
        node, idx = eid
        return 0 <= node < self.num_nodes and idx == 0

    def is_top(self, eid: EventId) -> bool:
        """True if ``eid`` denotes a dummy final event ``⊤_i``."""
        node, idx = eid
        return 0 <= node < self.num_nodes and idx == self._lengths[node] + 1

    def check_id(self, eid: EventId, allow_dummy: bool = False) -> None:
        """Validate ``eid``; raise :class:`KeyError` if out of range."""
        node, idx = eid
        if not (0 <= node < self.num_nodes):
            raise KeyError(eid)
        lo = 0 if allow_dummy else 1
        hi = self._lengths[node] + (1 if allow_dummy else 0)
        if not (lo <= idx <= hi):
            raise KeyError(eid)

    def iter_ids(self) -> Iterator[EventId]:
        """All real event ids, node-major."""
        return self._trace.iter_ids()

    # ------------------------------------------------------------------
    # timestamps
    # ------------------------------------------------------------------
    def clock(self, eid: EventId) -> np.ndarray:
        """Forward vector timestamp ``T(eid)`` (read-only view).

        Only defined for real events; dummies are handled symbolically
        by the precedence methods.
        """
        node, idx = eid
        return self._fwd[node][idx - 1]

    def rclock(self, eid: EventId) -> np.ndarray:
        """Reverse vector timestamp ``T^R(eid)`` (read-only view)."""
        node, idx = eid
        return self._rev[node][idx - 1]

    def clock_matrix(self, node: int) -> np.ndarray:
        """All forward timestamps of ``node`` as a ``(k_i, P)`` matrix."""
        return self._fwd[node]

    def rclock_matrix(self, node: int) -> np.ndarray:
        """All reverse timestamps of ``node`` as a ``(k_i, P)`` matrix."""
        return self._rev[node]

    # ------------------------------------------------------------------
    # causality
    # ------------------------------------------------------------------
    def leq(self, a: EventId, b: EventId) -> bool:
        """``a ≼ b``: ``a`` causally precedes or equals ``b``.

        Handles dummy events per the model axiom: every ``⊥_i`` precedes
        every non-``⊥`` event, and every ``⊤_j`` follows every
        non-``⊤`` event.  Distinct ``⊥``s (resp. ``⊤``s) are
        incomparable.
        """
        if a == b:
            return True
        a_node, a_idx = a
        b_node, b_idx = b
        if a_idx == 0:  # ⊥ precedes everything except other ⊥s
            return b_idx != 0
        if self.is_top(a):  # ⊤ precedes nothing but itself
            return False
        if b_idx == 0:
            return False
        if self.is_top(b):  # everything except ⊤s precedes ⊤
            return not self.is_top(a)
        # both real and distinct: the canonical clock test
        return bool(self._fwd[b_node][b_idx - 1][a_node] >= a_idx)

    def precedes(self, a: EventId, b: EventId) -> bool:
        """``a ≺ b``: strict causal precedence (irreflexive)."""
        return a != b and self.leq(a, b)

    def concurrent(self, a: EventId, b: EventId) -> bool:
        """``a ∥ b``: neither ``a ≼ b`` nor ``b ≼ a``."""
        return not self.leq(a, b) and not self.leq(b, a)

    def compare(self, a: EventId, b: EventId) -> str:
        """Classify the causal order of two events (:class:`Ordering`)."""
        if a == b:
            return Ordering.EQUAL
        if self.leq(a, b):
            return Ordering.BEFORE
        if self.leq(b, a):
            return Ordering.AFTER
        return Ordering.CONCURRENT

    # ------------------------------------------------------------------
    # causal past / future enumeration
    # ------------------------------------------------------------------
    def causal_past_ids(self, eid: EventId) -> Set[EventId]:
        """All real event ids ``e'`` with ``e' ≼ eid`` (the set ``↓e``).

        ``O(|E|)`` via the forward clock: ``T(eid)[i]`` is exactly the
        number of node-``i`` events in the causal past.
        """
        clock = self.clock(eid)
        return {
            (i, j)
            for i in range(self.num_nodes)
            for j in range(1, int(clock[i]) + 1)
        }

    def causal_future_ids(self, eid: EventId) -> Set[EventId]:
        """All real event ids ``e'`` with ``e' ≽ eid``.

        ``O(|E|)`` via the reverse clock: the node-``i`` events in the
        causal future are the last ``T^R(eid)[i]`` events of ``E_i``.
        """
        rclock = self.rclock(eid)
        out: Set[EventId] = set()
        for i in range(self.num_nodes):
            k = self._lengths[i]
            out.update((i, j) for j in range(k - int(rclock[i]) + 1, k + 1))
        return out

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """The covering digraph of real events (local + message edges).

        Returns a :class:`networkx.DiGraph` whose transitive closure is
        the strict causality relation ``≺`` restricted to real events.
        Used by tests as a ground-truth oracle for the clock algebra.
        """
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self.iter_ids())
        for i in range(self.num_nodes):
            for j in range(1, self._lengths[i]):
                g.add_edge((i, j), (i, j + 1))
        for msg in self._trace.messages:
            g.add_edge(msg.send, msg.recv)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Execution(nodes={self.num_nodes}, "
            f"events={self._trace.total_events}, "
            f"messages={len(self._trace.messages)})"
        )
