"""The analysed execution poset ``(E, ≺)``.

:class:`Execution` wraps a recorded :class:`~repro.events.trace.Trace`
with the forward and reverse vector timestamp structures of Section 2.3
and exposes the causality relation ``≺`` between atomic events.  It is
the substrate on which nonatomic events, cuts and the synchronization
relations are defined.

Index conventions (see DESIGN.md §2): real events of node ``i`` have
local indices ``1..k_i``; the dummy initial event ``⊥_i`` is index 0 and
the dummy final event ``⊤_i`` is index ``k_i + 1``.  The paper's model
axiom ``∀⊥_i ∀⊤_j ∀e ∈ (E \\ E^⊥ \\ E^⊤): ⊥_i ≺ e ≺ ⊤_j`` is built into
the precedence methods.
"""

from __future__ import annotations

# repro: hot

from collections.abc import Iterator

import numpy as np

from .clocks import (
    CLOCK_DTYPE,
    ClockTable,
    GrowableClockTable,
    compute_forward_table,
    compute_reverse_table,
    extend_forward_table,
)
from typing import TYPE_CHECKING

from .event import Event, EventId
from .trace import Trace, TraceError

if TYPE_CHECKING:
    import networkx as nx

__all__ = ["Execution", "Ordering"]


class Ordering:
    """Symbolic outcomes of :meth:`Execution.compare`."""

    __slots__ = ()

    BEFORE = "before"
    AFTER = "after"
    EQUAL = "equal"
    CONCURRENT = "concurrent"


class Execution:
    """A distributed execution with its timestamp structures.

    Parameters
    ----------
    trace:
        The recorded trace.  Its happened-before relation must be
        acyclic; otherwise :class:`~repro.events.clocks.CyclicTraceError`
        is raised.

    forward_clocks:
        Optional precomputed forward timestamps: a columnar
        :class:`~repro.events.clocks.ClockTable` (adopted zero-copy), a
        live :class:`~repro.events.clocks.GrowableClockTable` (its
        version-keyed :meth:`~repro.events.clocks.GrowableClockTable.snapshot`
        is adopted), or one ``(k_i, P)`` matrix per node (as produced
        by :func:`~repro.events.clocks.compute_forward_clocks`).
        Callers that already maintain the forward structure — e.g. the
        online monitor's streaming ingestion — pass it here to skip
        the forward pass entirely.

    Notes
    -----
    Building an execution performs the *forward* timestamping pass the
    paper assumes (Def. 13), an ``O(|E|·|P|)`` computation.  The reverse
    structure (Def. 14) is established lazily on first access to
    :meth:`rclock` / :meth:`rclock_matrix` / :meth:`causal_future_ids`,
    so past-only workloads (online monitoring, R1/R2-style queries)
    never pay for it.  All query methods are ``O(1)`` or ``O(|P|)``
    once the structures exist.

    Both structures are stored columnar — one contiguous ``(|E|, |P|)``
    int32 matrix each (:class:`~repro.events.clocks.ClockTable`),
    exposed via :attr:`forward_table` / :attr:`reverse_table` for the
    batch cut kernels and the zero-copy parallel executor; the
    per-event/per-node accessors below are views into those matrices.
    """

    __slots__ = ("_trace", "_fwd", "_rev", "_lengths", "_version", "__weakref__")

    # Version-discipline contract enforced by `python -m repro lint`
    # (REP001): growing the substrate must bump `_version` so every
    # derived cache (CutCache, SharedVerdictCache, published
    # shared-memory clocks) can detect staleness.  `_rev` is reset to
    # None on growth rather than freshness-checked on read, so it is
    # deliberately not registered as a cache.
    _REPRO_VERSIONED = {
        "version": "_version",
        "state": ("_trace", "_fwd", "_lengths"),
        "caches": (),
        "guards": (),
    }

    def __init__(
        self,
        trace: Trace,
        forward_clocks: "Optional[Sequence[np.ndarray] | ClockTable | GrowableClockTable]" = None,
    ) -> None:
        self._trace = trace
        if forward_clocks is None:
            self._fwd = compute_forward_table(trace)
        else:
            self._fwd = self._adopt_forward(trace, forward_clocks)
        self._rev: ClockTable | None = None
        self._lengths: tuple[int, ...] = tuple(
            trace.num_real(i) for i in range(trace.num_nodes)
        )
        self._version = 0

    @staticmethod
    def _adopt_forward(
        trace: Trace,
        forward_clocks: "Sequence[np.ndarray] | ClockTable | GrowableClockTable",
    ) -> ClockTable:
        """Validate caller-supplied forward clocks into a columnar table."""
        num_nodes = trace.num_nodes
        lengths = [trace.num_real(i) for i in range(num_nodes)]
        if isinstance(forward_clocks, GrowableClockTable):
            forward_clocks = forward_clocks.snapshot()
        if isinstance(forward_clocks, ClockTable):
            if forward_clocks.num_nodes != num_nodes or not np.array_equal(
                forward_clocks.lengths, lengths
            ):
                raise ValueError(
                    f"forward_clocks table shape does not match the trace: "
                    f"expected lengths {lengths}"
                )
            return forward_clocks
        if len(forward_clocks) != num_nodes:
            raise ValueError(
                f"forward_clocks must have one matrix per node "
                f"({num_nodes}), got {len(forward_clocks)}"
            )
        data = np.zeros((sum(lengths), num_nodes), dtype=CLOCK_DTYPE)
        pos = 0
        for i, mat in enumerate(forward_clocks):
            arr = np.asarray(mat)
            if arr.shape != (lengths[i], num_nodes):
                raise ValueError(
                    f"forward_clocks[{i}] must have shape "
                    f"{(lengths[i], num_nodes)}, got {arr.shape}"
                )
            data[pos:pos + lengths[i]] = arr
            pos += lengths[i]
        return ClockTable(data, lengths)

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def trace(self) -> Trace:
        """The underlying recorded trace."""
        return self._trace

    @property
    def version(self) -> int:
        """Monotonic growth counter, bumped by every :meth:`extend`.

        Derived caches (cut quadruples, extremal vectors — see
        :class:`repro.core.context.CutCache`) key their validity on this
        value: a version change means future-side structures computed
        against the shorter trace are stale.
        """
        return self._version

    @property
    def reverse_ready(self) -> bool:
        """True once the reverse timestamp structure has been built.

        Diagnostic for the laziness contract: past-only consumers can
        assert they never forced the reverse pass.
        """
        return self._rev is not None

    @property
    def num_nodes(self) -> int:
        """Number of process/node partitions ``|P|``."""
        return self._trace.num_nodes

    @property
    def lengths(self) -> tuple[int, ...]:
        """Per-node real event counts ``(k_0, ..., k_{P-1})``."""
        return self._lengths

    def num_real(self, node: int) -> int:
        """Number of real events ``k_i`` of ``node``."""
        return self._lengths[node]

    def top_index(self, node: int) -> int:
        """Local index of the dummy final event ``⊤_node``."""
        return self._lengths[node] + 1

    def event(self, eid: EventId) -> Event:
        """The real :class:`Event` with identifier ``eid``."""
        return self._trace.event(eid)

    def is_real(self, eid: EventId) -> bool:
        """True if ``eid`` denotes a real (non-dummy) event."""
        node, idx = eid
        return 0 <= node < self.num_nodes and 1 <= idx <= self._lengths[node]

    def is_bottom(self, eid: EventId) -> bool:
        """True if ``eid`` denotes a dummy initial event ``⊥_i``."""
        node, idx = eid
        return 0 <= node < self.num_nodes and idx == 0

    def is_top(self, eid: EventId) -> bool:
        """True if ``eid`` denotes a dummy final event ``⊤_i``."""
        node, idx = eid
        return 0 <= node < self.num_nodes and idx == self._lengths[node] + 1

    def check_id(self, eid: EventId, allow_dummy: bool = False) -> None:
        """Validate ``eid``; raise :class:`KeyError` if out of range."""
        node, idx = eid
        if not (0 <= node < self.num_nodes):
            raise KeyError(eid)
        lo = 0 if allow_dummy else 1
        hi = self._lengths[node] + (1 if allow_dummy else 0)
        if not (lo <= idx <= hi):
            raise KeyError(eid)

    def iter_ids(self) -> Iterator[EventId]:
        """All real event ids, node-major."""
        return self._trace.iter_ids()

    # ------------------------------------------------------------------
    # timestamps
    # ------------------------------------------------------------------
    def clock(self, eid: EventId) -> np.ndarray:
        """Forward vector timestamp ``T(eid)`` (read-only view).

        Only defined for real events; dummies are handled symbolically
        by the precedence methods.
        """
        node, idx = eid
        return self._fwd.row(node, idx)

    def _reverse(self) -> ClockTable:
        """The reverse table, computing it on first use (lazy)."""
        rev = self._rev
        if rev is None:
            rev = self._rev = compute_reverse_table(self._trace)
        return rev

    def rclock(self, eid: EventId) -> np.ndarray:
        """Reverse vector timestamp ``T^R(eid)`` (read-only view).

        First access triggers the one-time reverse clock pass.
        """
        node, idx = eid
        return self._reverse().row(node, idx)

    def clock_matrix(self, node: int) -> np.ndarray:
        """All forward timestamps of ``node`` as a ``(k_i, P)`` view."""
        return self._fwd.node_view(node)

    def rclock_matrix(self, node: int) -> np.ndarray:
        """All reverse timestamps of ``node`` as a ``(k_i, P)`` view.

        First access triggers the one-time reverse clock pass.
        """
        return self._reverse().node_view(node)

    @property
    def forward_table(self) -> ClockTable:
        """The columnar forward timestamp structure (zero-copy)."""
        return self._fwd

    @property
    def reverse_table(self) -> ClockTable:
        """The columnar reverse timestamp structure (zero-copy).

        First access triggers the one-time reverse clock pass.
        """
        return self._reverse()

    # ------------------------------------------------------------------
    # causality
    # ------------------------------------------------------------------
    def leq(self, a: EventId, b: EventId) -> bool:
        """``a ≼ b``: ``a`` causally precedes or equals ``b``.

        Handles dummy events per the model axiom: every ``⊥_i`` precedes
        every non-``⊥`` event, and every ``⊤_j`` follows every
        non-``⊤`` event.  Distinct ``⊥``s (resp. ``⊤``s) are
        incomparable.
        """
        if a == b:
            return True
        a_node, a_idx = a
        b_node, b_idx = b
        if a_idx == 0:  # ⊥ precedes everything except other ⊥s
            return b_idx != 0
        if self.is_top(a):  # ⊤ precedes nothing but itself
            return False
        if b_idx == 0:
            return False
        if self.is_top(b):  # everything except ⊤s precedes ⊤
            return not self.is_top(a)
        # both real and distinct: the canonical clock test
        return bool(self._fwd.row(b_node, b_idx)[a_node] >= a_idx)

    def precedes(self, a: EventId, b: EventId) -> bool:
        """``a ≺ b``: strict causal precedence (irreflexive)."""
        return a != b and self.leq(a, b)

    def concurrent(self, a: EventId, b: EventId) -> bool:
        """``a ∥ b``: neither ``a ≼ b`` nor ``b ≼ a``."""
        return not self.leq(a, b) and not self.leq(b, a)

    def compare(self, a: EventId, b: EventId) -> str:
        """Classify the causal order of two events (:class:`Ordering`)."""
        if a == b:
            return Ordering.EQUAL
        if self.leq(a, b):
            return Ordering.BEFORE
        if self.leq(b, a):
            return Ordering.AFTER
        return Ordering.CONCURRENT

    # ------------------------------------------------------------------
    # causal past / future enumeration
    # ------------------------------------------------------------------
    def causal_past_ids(self, eid: EventId) -> set[EventId]:
        """All real event ids ``e'`` with ``e' ≼ eid`` (the set ``↓e``).

        ``O(|E|)`` via the forward clock: ``T(eid)[i]`` is exactly the
        number of node-``i`` events in the causal past.
        """
        clock = self.clock(eid)
        return {
            (i, j)
            for i in range(self.num_nodes)
            for j in range(1, int(clock[i]) + 1)
        }

    def causal_future_ids(self, eid: EventId) -> set[EventId]:
        """All real event ids ``e'`` with ``e' ≽ eid``.

        ``O(|E|)`` via the reverse clock: the node-``i`` events in the
        causal future are the last ``T^R(eid)[i]`` events of ``E_i``.
        """
        rclock = self.rclock(eid)
        out: set[EventId] = set()
        for i in range(self.num_nodes):
            k = self._lengths[i]
            out.update((i, j) for j in range(k - int(rclock[i]) + 1, k + 1))
        return out

    # ------------------------------------------------------------------
    # append-only growth
    # ------------------------------------------------------------------
    def extend(self, trace: Trace) -> "Execution":
        """Grow this execution in place to an append-only extension.

        ``trace`` must extend the current trace: same node count, every
        node's current event sequence a prefix of its new one, the
        current messages a subset of the new ones, and every *new*
        message received by a *new* event (so no existing timestamp can
        change).  Forward clocks are advanced incrementally — only the
        appended events are processed (see
        :func:`~repro.events.clocks.extend_forward_table`); the reverse
        structure is discarded and will be rebuilt lazily if queried,
        since every reverse timestamp can change when the future grows.

        Bumps :attr:`version` so shared caches invalidate; returns
        ``self`` for chaining.

        Raises
        ------
        TraceError
            If ``trace`` is not an append-only extension.
        CyclicTraceError
            If the extension introduces a causal cycle.
        """
        old = self._trace
        if trace.num_nodes != old.num_nodes:
            raise TraceError(
                f"extension changes node count: {old.num_nodes} -> "
                f"{trace.num_nodes}"
            )
        for i in range(old.num_nodes):
            k_old = old.num_real(i)
            if trace.num_real(i) < k_old or (
                trace.events_of(i)[:k_old] != old.events_of(i)
            ):
                raise TraceError(
                    f"node {i}: existing events are not a prefix of the "
                    "extension"
                )
        old_messages = set(old.messages)
        for msg in trace.messages:
            if msg in old_messages:
                old_messages.discard(msg)
                continue
            node, idx = msg.recv
            if idx <= old.num_real(node):
                raise TraceError(
                    f"new message {msg} targets existing event {msg.recv}; "
                    "extensions may only deliver to appended events"
                )
        if old_messages:
            raise TraceError(
                f"extension drops existing message(s): "
                f"{sorted(old_messages, key=str)[:3]}"
            )
        self._fwd = extend_forward_table(trace, self._fwd)
        self._trace = trace
        self._lengths = tuple(
            trace.num_real(i) for i in range(trace.num_nodes)
        )
        self._rev = None
        self._version += 1
        return self

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.DiGraph":
        """The covering digraph of real events (local + message edges).

        Returns a :class:`networkx.DiGraph` whose transitive closure is
        the strict causality relation ``≺`` restricted to real events.
        Used by tests as a ground-truth oracle for the clock algebra.
        """
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self.iter_ids())
        for i in range(self.num_nodes):
            for j in range(1, self._lengths[i]):
                g.add_edge((i, j), (i, j + 1))
        for msg in self._trace.messages:
            g.add_edge(msg.send, msg.recv)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Execution(nodes={self.num_nodes}, "
            f"events={self._trace.total_events}, "
            f"messages={len(self._trace.messages)})"
        )
