"""Project-specific static analysis for the repro codebase.

A dependency-free (stdlib ``ast``) linter enforcing invariants the
generic tools cannot see: cache/version discipline (REP001, REP005),
the canonical clock dtype (REP002), shared-memory lifecycles (REP003),
and hot-path hygiene (REP004).  Run it as ``python -m repro lint``.
"""

from .baseline import Baseline, partition
from .engine import RULES, FileContext, Finding, Rule, run_file, run_paths
from . import rules as _rules  # noqa: F401  (side effect: rule registration)

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "RULES",
    "Rule",
    "partition",
    "run_file",
    "run_paths",
]
