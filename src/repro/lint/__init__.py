"""Project-specific static analysis for the repro codebase.

A dependency-free (stdlib ``ast``) linter enforcing invariants the
generic tools cannot see.  Two phases:

* **per-file rules** — cache/version discipline (REP001, REP005), the
  canonical clock dtype (REP002), shared-memory lifecycles (REP003),
  hot-path hygiene (REP004), socket lifecycles (REP006);
* **project rules** (``--project``) — a whole-program symbol index and
  call graph (:mod:`repro.lint.project`) powering blocking-call-in-
  coroutine detection (REP007), task-lifecycle checks (REP008), and
  frame-protocol consistency (REP009).

Run it as ``python -m repro lint [--project]``.
"""

from .baseline import Baseline, partition
from .engine import (
    RULES,
    FileContext,
    Finding,
    Rule,
    parse_file,
    run_file,
    run_paths,
)
from .project import PROJECT_RULES, ProjectContext, build_project, run_project
from . import rules as _rules  # noqa: F401  (side effect: rule registration)

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "PROJECT_RULES",
    "ProjectContext",
    "RULES",
    "Rule",
    "build_project",
    "parse_file",
    "partition",
    "run_file",
    "run_paths",
    "run_project",
]
