"""Command-line front end: ``python -m repro lint [paths...]``.

Output is one ``path:line:col: RULE message`` line per finding (the
ruff/flake8 convention, so editors and CI annotators parse it for
free), or a JSON document with ``--format=json`` for machine
consumers.  Exit status: 0 when every finding is grandfathered by the
baseline (or there are none), 1 when new findings exist, 2 on usage
errors.

``--project`` enables the second, whole-program analysis phase
(REP007-REP009); ``--no-project`` forces it off so scripts can pin the
behaviour regardless of future defaults.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline, partition
from .engine import RULES, Finding, run_paths
from .project import PROJECT_RULES

__all__ = ["add_lint_arguments", "run_lint", "main"]

DEFAULT_BASELINE = Path("lint-baseline.json")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's flags to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather all current findings",
    )
    parser.add_argument(
        "--project",
        dest="project",
        action="store_true",
        default=False,
        help="also run the whole-program phase (call-graph rules REP007+)",
    )
    parser.add_argument(
        "--no-project",
        dest="project",
        action="store_false",
        help="run only the per-file rules (the default, stated explicitly)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule finding count summary",
    )


def _resolve_baseline_path(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    if DEFAULT_BASELINE.exists() or args.write_baseline:
        return DEFAULT_BASELINE
    return None


def _all_rules() -> dict[str, object]:
    merged: dict[str, object] = dict(RULES)
    merged.update(PROJECT_RULES)
    return merged


def _finding_dict(f: Finding) -> dict[str, object]:
    return {
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "rule": f.rule,
        "message": f.message,
        "severity": f.severity,
    }


def _emit_json(
    new: list[Finding],
    grandfathered: list[Finding],
    stale: list[tuple[str, str, str]],
) -> None:
    doc = {
        "findings": [_finding_dict(f) for f in new],
        "grandfathered": len(grandfathered),
        "stale_baseline_entries": [list(key) for key in stale],
        "counts": _rule_counts(new),
    }
    print(json.dumps(doc, indent=2, sort_keys=True))


def _rule_counts(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return dict(sorted(counts.items()))


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; return the exit code."""
    # Rule modules self-register on import (run_paths triggers it), but
    # --list-rules must see them without a run.
    from . import rules as _rules  # noqa: F401

    registry = _all_rules()
    if args.list_rules:
        for code in sorted(registry):
            entry = registry[code]
            phase = " (project)" if code in PROJECT_RULES else ""
            print(
                f"{code} [{entry.severity}] {entry.name}{phase}: "  # type: ignore[attr-defined]
                f"{entry.description}"  # type: ignore[attr-defined]
            )
        return 0

    paths: list[Path] = list(args.paths) if args.paths else [Path("src")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2

    findings = run_paths(paths, project=args.project)

    baseline_path = _resolve_baseline_path(args)
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()

    if args.write_baseline:
        if baseline_path is None:  # pragma: no cover - argparse default covers it
            baseline_path = DEFAULT_BASELINE
        Baseline.from_findings(findings, previous=baseline).save(baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}", file=sys.stderr
        )
        return 0

    new, grandfathered, stale = partition(findings, baseline)
    if args.format == "json":
        _emit_json(new, grandfathered, stale)
        return 1 if new else 0

    for f in new:
        print(f.render())
    if grandfathered:
        print(
            f"({len(grandfathered)} baselined finding(s) suppressed)",
            file=sys.stderr,
        )
    for key in stale:
        print(
            f"stale baseline entry (finding no longer occurs): "
            f"{key[0]} {key[1]} {key[2]!r}",
            file=sys.stderr,
        )
    if args.statistics and new:
        print("--")
        for code, count in _rule_counts(new).items():
            name = getattr(registry.get(code), "name", code)
            print(f"{count:5d}  {code}  {name}")
    if new:
        noun = "finding" if len(new) == 1 else "findings"
        print(f"{len(new)} {noun}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific static analysis (REP001-REP009)",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
