"""Command-line front end: ``python -m repro lint [paths...]``.

Output is one ``path:line:col: RULE message`` line per finding (the
ruff/flake8 convention, so editors and CI annotators parse it for
free).  Exit status: 0 when every finding is grandfathered by the
baseline (or there are none), 1 when new findings exist, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import Baseline, partition
from .engine import RULES, run_paths

__all__ = ["add_lint_arguments", "run_lint", "main"]

DEFAULT_BASELINE = Path("lint-baseline.json")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather all current findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule finding count summary",
    )


def _resolve_baseline_path(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    if DEFAULT_BASELINE.exists() or args.write_baseline:
        return DEFAULT_BASELINE
    return None


def run_lint(args: argparse.Namespace) -> int:
    # Rule modules self-register on import (run_paths triggers it), but
    # --list-rules must see them without a run.
    from . import rules as _rules  # noqa: F401

    if args.list_rules:
        for code in sorted(RULES):
            entry = RULES[code]
            print(f"{code} [{entry.severity}] {entry.name}: {entry.description}")
        return 0

    paths: list[Path] = list(args.paths) if args.paths else [Path("src")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2

    findings = run_paths(paths)

    baseline_path = _resolve_baseline_path(args)
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()

    if args.write_baseline:
        if baseline_path is None:  # pragma: no cover - argparse default covers it
            baseline_path = DEFAULT_BASELINE
        Baseline.from_findings(findings, previous=baseline).save(baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}", file=sys.stderr
        )
        return 0

    new, grandfathered, stale = partition(findings, baseline)
    for f in new:
        print(f.render())
    if grandfathered:
        print(
            f"({len(grandfathered)} baselined finding(s) suppressed)",
            file=sys.stderr,
        )
    for key in stale:
        print(
            f"stale baseline entry (finding no longer occurs): "
            f"{key[0]} {key[1]} {key[2]!r}",
            file=sys.stderr,
        )
    if args.statistics and new:
        counts: dict = {}
        for f in new:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        print("--")
        for code in sorted(counts):
            print(f"{counts[code]:5d}  {code}  {RULES[code].name}")
    if new:
        noun = "finding" if len(new) == 1 else "findings"
        print(f"{len(new)} {noun}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific static analysis (REP001-REP005)",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
