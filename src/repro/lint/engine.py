"""Core machinery for the repro project linter.

The linter is a small, dependency-free (stdlib ``ast`` + ``tokenize``)
static checker for project invariants that generic tools cannot see:
cache/version discipline, the canonical clock dtype, shared-memory
lifecycles, and hot-path hygiene.  This module provides:

* :class:`Finding` — one diagnostic, ordered for stable output;
* :class:`Rule` / :func:`rule` — the rule registry (rules live in
  :mod:`repro.lint.rules` and self-register on import);
* :class:`FileContext` — parsed source handed to every rule: AST,
  parent links, module pragma tags, and inline suppressions;
* :func:`run_paths` / :func:`run_file` — the runner.

Module pragmas
--------------
A comment line of the form ``# repro: tag[, tag...]`` anywhere in a
module declares tags that gate optional rules.  Recognised tags:

``hot``
    The module is a measured hot path; :data:`REP004` applies.
``dtype-strict``
    NumPy arrays constructed here feed the clock kernels; :data:`REP002`
    applies.

Inline suppressions
-------------------
``# repro-lint: disable=REP004[,REP005] -- justification`` silences the
named rules.  A trailing comment applies to its own line; a comment that
is alone on its line applies to the *next* line.  ``disable`` without
``=RULES`` silences every rule for the target line.  The justification
text after ``--`` is conventional but not enforced.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "RULES",
    "rule",
    "iter_python_files",
    "parse_file",
    "run_file",
    "run_file_rules",
    "run_paths",
]

#: Severity levels, in increasing order of gravity.  Severity does not
#: change the exit code (any non-baselined finding fails the run); it is
#: surfaced in ``--list-rules`` and in the findings themselves so that
#: downstream tooling can triage.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic.  Ordering gives deterministic report output."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift, messages rarely do."""
        return (self.path, self.rule, self.message)


@dataclass(frozen=True)
class Rule:
    """A registered check.

    ``check(ctx)`` yields ``(node_or_pos, message)`` pairs where
    ``node_or_pos`` is an AST node (or a ``(line, col)`` tuple); the
    engine attaches the rule code, severity, and file path, and applies
    inline suppressions.
    """

    code: str
    name: str
    severity: str
    description: str
    check: Callable[["FileContext"], Iterator[tuple[object, str]]]
    requires_tag: str | None = None


#: Global registry, keyed by rule code (``REP001`` ...).
RULES: dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    *,
    severity: str = "error",
    description: str,
    requires_tag: str | None = None,
) -> Callable[[Callable[["FileContext"], Iterator[tuple[object, str]]]], Rule]:
    """Decorator: register a check function under ``code``."""

    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def register(fn: Callable[["FileContext"], Iterator[tuple[object, str]]]) -> Rule:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        entry = Rule(
            code=code,
            name=name,
            severity=severity,
            description=description,
            check=fn,
            requires_tag=requires_tag,
        )
        RULES[code] = entry
        return entry

    return register


_PRAGMA_PREFIX = "repro:"
_SUPPRESS_PREFIX = "repro-lint:"


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    tags: frozenset[str]
    #: line -> frozenset of silenced rule codes; ``None`` means all.
    suppressions: dict[int, frozenset[str] | None] = field(default_factory=dict)
    _parents: dict[ast.AST, ast.AST] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent map over the module AST (built lazily)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(line, frozenset())
        return codes is None or code in codes


def _scan_comments(source: str) -> tuple[frozenset[str], dict[int, frozenset[str] | None]]:
    """Extract module pragma tags and per-line suppressions.

    Uses :mod:`tokenize` so comments inside string literals are never
    misread as pragmas.
    """
    tags: set = set()
    suppressions: dict[int, frozenset[str] | None] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return frozenset(), {}
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        text = tok.string.lstrip("#").strip()
        line = tok.start[0]
        standalone = source.splitlines()[line - 1][: tok.start[1]].strip() == ""
        if text.startswith(_PRAGMA_PREFIX):
            body = text[len(_PRAGMA_PREFIX):]
            for raw in body.replace(",", " ").split():
                tags.add(raw.strip())
        elif text.startswith(_SUPPRESS_PREFIX):
            body = text[len(_SUPPRESS_PREFIX):].strip()
            if not body.startswith("disable"):
                continue
            body = body[len("disable"):]
            # Strip the justification ("-- reason") before parsing codes.
            body = body.split("--", 1)[0].strip()
            codes: frozenset[str] | None
            if body.startswith("="):
                codes = frozenset(
                    c.strip() for c in body[1:].replace(",", " ").split() if c.strip()
                )
            else:
                codes = None  # blanket disable
            target = line + 1 if standalone else line
            existing = suppressions.get(target, frozenset())
            if codes is None or existing is None:
                suppressions[target] = None
            else:
                suppressions[target] = existing | codes
    return frozenset(tags), suppressions


def _display_path(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_file(
    path: Path, root: Path | None = None
) -> tuple[FileContext | None, Finding | None]:
    """Phase-one parse: return ``(context, None)`` or ``(None, finding)``.

    A file that cannot be read or parsed yields a single ``PARSE``
    finding and is excluded from both rule phases.
    """
    display = _display_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return None, Finding(display, 1, 1, "PARSE", f"unreadable file: {exc}", "error")
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return None, Finding(
            display,
            exc.lineno or 1,
            (exc.offset or 1),
            "PARSE",
            f"syntax error: {exc.msg}",
            "error",
        )
    tags, suppressions = _scan_comments(source)
    ctx = FileContext(
        path=display, source=source, tree=tree, tags=tags, suppressions=suppressions
    )
    return ctx, None


def run_file_rules(ctx: FileContext) -> list[Finding]:
    """Run every registered per-file rule over one parsed context."""
    findings: list[Finding] = []
    for entry in RULES.values():
        if entry.requires_tag is not None and entry.requires_tag not in ctx.tags:
            continue
        for node_or_pos, message in entry.check(ctx):
            if isinstance(node_or_pos, tuple):
                line, col = node_or_pos
            else:
                line = getattr(node_or_pos, "lineno", 1)
                col = getattr(node_or_pos, "col_offset", 0) + 1
            if ctx.suppressed(line, entry.code):
                continue
            findings.append(
                Finding(ctx.path, line, col, entry.code, message, entry.severity)
            )
    findings.sort()
    return findings


def run_file(path: Path, root: Path | None = None) -> list[Finding]:
    """Run every registered per-file rule over one file."""
    ctx, parse_finding = parse_file(path, root)
    if ctx is None:
        return [parse_finding] if parse_finding is not None else []
    return run_file_rules(ctx)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file stream."""
    seen: set = set()
    for p in paths:
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if "__pycache__" in c.parts:
                continue
            if any(part.startswith(".") and part not in (".", "..") for part in c.parts):
                continue
            resolved = c.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield c


def run_paths(
    paths: Iterable[Path],
    root: Path | None = None,
    *,
    project: bool = False,
) -> list[Finding]:
    """Run all rules over every python file reachable from ``paths``.

    With ``project=True`` a second, whole-program phase runs after the
    per-file rules: every successfully parsed file is indexed into a
    :class:`~repro.lint.project.ProjectContext` (symbol table + call
    graph) and the registered project rules (REP007+) run over it.
    """
    # Import for side effect: rule modules self-register on import.
    from . import rules as _rules  # noqa: F401

    findings: list[Finding] = []
    contexts: list[FileContext] = []
    for path in iter_python_files(paths):
        ctx, parse_finding = parse_file(path, root)
        if ctx is None:
            if parse_finding is not None:
                findings.append(parse_finding)
            continue
        contexts.append(ctx)
        findings.extend(run_file_rules(ctx))
    if project:
        from .project import run_project

        findings.extend(run_project(contexts))
    findings.sort()
    return findings
