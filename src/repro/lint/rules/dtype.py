"""REP002 — canonical clock dtype discipline.

Clock tables, cut vectors, and the pairwise kernels all run on
``CLOCK_DTYPE`` (``np.int32``) arrays; an array constructed with a
defaulted or platform-width dtype silently doubles memory traffic or,
worse, widens one operand of a broadcast comparison.  In modules tagged
``# repro: dtype-strict``, every NumPy array construction must pass an
explicit dtype, that dtype must not be a platform-width Python builtin
(``int``/``float``/``complex``; ``bool`` is width-unambiguous and
allowed), and a literal 32-bit int dtype must be spelled through the
canonical ``CLOCK_DTYPE`` constant so a future width change has one
edit site.

``*_like`` constructors, ``np.stack``/``np.concatenate`` (dtype follows
the operands), and dtype-preserving reductions are out of scope;
``.astype`` calls are checked for *which* dtype, not for presence.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, rule

#: Constructor -> positional index of its dtype parameter (None: kw-only
#: in practice for this codebase).
CONSTRUCTOR_DTYPE_POS: dict[str, int | None] = {
    "zeros": 1,
    "empty": 1,
    "ones": 1,
    "full": 2,
    "array": 1,
    "asarray": 1,
    "ascontiguousarray": 1,
    "asfortranarray": 1,
    "fromiter": 1,
    "frombuffer": 1,
    "ndarray": 1,
    "arange": 4,
    "linspace": None,
}

#: Python builtins whose width is platform/implementation defined.
PLATFORM_BUILTINS = frozenset({"int", "float", "complex"})

#: Names of the canonical int32 constant; any other spelling of int32
#: in a dtype position is flagged.
CANONICAL_INT32 = "CLOCK_DTYPE"


def _numpy_call_name(node: ast.Call) -> str | None:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


def _dtype_argument(node: ast.Call, name: str) -> ast.AST | None:
    for kw in node.keywords:
        if kw.arg == "dtype":
            return kw.value
    pos = CONSTRUCTOR_DTYPE_POS.get(name)
    if pos is not None and len(node.args) > pos:
        return node.args[pos]
    return None


def _dtype_problem(value: ast.AST) -> str | None:
    """Return a complaint about an explicit dtype expression, if any."""
    if isinstance(value, ast.Name):
        if value.id in PLATFORM_BUILTINS:
            return (
                f"platform-width builtin dtype '{value.id}'; use an explicit "
                "NumPy dtype (CLOCK_DTYPE for clock data)"
            )
        return None
    if isinstance(value, ast.Attribute):
        # np.int32 spelled directly instead of through the constant.
        if (
            value.attr == "int32"
            and isinstance(value.value, ast.Name)
            and value.value.id in ("np", "numpy")
        ):
            return "hardcoded np.int32; spell the clock dtype as CLOCK_DTYPE"
        return None
    if isinstance(value, ast.Constant) and value.value in ("int32", "i4", "<i4"):
        return (
            f"hardcoded {value.value!r} dtype string; spell the clock dtype "
            "as CLOCK_DTYPE"
        )
    return None


@rule(
    "REP002",
    "dtype-discipline",
    severity="error",
    description=(
        "NumPy array constructions in dtype-strict modules must pass an "
        "explicit, non-platform-width dtype; int32 must be spelled "
        "CLOCK_DTYPE"
    ),
    requires_tag="dtype-strict",
)
def check_dtype_discipline(ctx: FileContext) -> Iterator[tuple[object, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _numpy_call_name(node)
        if name in CONSTRUCTOR_DTYPE_POS:
            dtype = _dtype_argument(node, name)
            if dtype is None:
                yield (
                    node,
                    f"np.{name}(...) without an explicit dtype in a "
                    "dtype-strict module",
                )
                continue
            problem = _dtype_problem(dtype)
            if problem is not None:
                yield (dtype, problem)
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            target = node.args[0] if node.args else _dtype_argument(node, "astype")
            if target is not None:
                problem = _dtype_problem(target)
                if problem is not None:
                    yield (target, problem)
