"""REP003 — shared-memory lifecycle.

A ``multiprocessing.shared_memory.SharedMemory(create=True)`` segment is
a kernel object: if the creating process raises between creation and
publication to the worker pool, the segment leaks until reboot (or the
resource tracker's exit-time complaint).  Every creating call must be
dominated by a construct that guarantees ``close()`` *and* ``unlink()``
on the failure path:

* a ``with`` statement whose context expression owns the call, or
* an enclosing ``try`` whose handlers or ``finally`` block contain both
  a ``.close()`` and a ``.unlink()`` call.

Attaching calls (``SharedMemory(name=...)`` without ``create=True``)
are the consumer side and out of scope — consumers must ``close()`` but
never ``unlink()``, and their lifetime is tied to worker teardown.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, rule


def _is_creating_shm_call(node: ast.Call) -> bool:
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
    if name != "SharedMemory":
        return False
    for kw in node.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _contains_cleanup(nodes: Iterator[ast.AST]) -> tuple[bool, bool]:
    has_close = False
    has_unlink = False
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr == "close":
                    has_close = True
                elif sub.func.attr == "unlink":
                    has_unlink = True
    return has_close, has_unlink


@rule(
    "REP003",
    "shared-memory-lifecycle",
    severity="error",
    description=(
        "SharedMemory(create=True) must be dominated by a with statement "
        "or a try whose cleanup path reaches close() and unlink()"
    ),
)
def check_shm_lifecycle(ctx: FileContext) -> Iterator[tuple[object, str]]:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and _is_creating_shm_call(node)):
            continue
        protected = False
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                # Owned by a with-item context expression?
                for item in ancestor.items:
                    if any(sub is node for sub in ast.walk(item.context_expr)):
                        protected = True
                        break
                if protected:
                    break
            if isinstance(ancestor, ast.Try):
                # Only counts if the call sits in the try body (not in a
                # handler/else, where the try no longer shields it).
                in_body = any(
                    any(sub is node for sub in ast.walk(stmt))
                    for stmt in ancestor.body
                )
                if not in_body:
                    continue
                cleanup_stmts = list(ancestor.finalbody)
                for handler in ancestor.handlers:
                    cleanup_stmts.extend(handler.body)
                has_close, has_unlink = _contains_cleanup(iter(cleanup_stmts))
                if has_close and has_unlink:
                    protected = True
                    break
        if not protected:
            yield (
                node,
                "SharedMemory(create=True) can leak the segment on an "
                "exception before publication; wrap in try/finally (or a "
                "handler) that reaches close() and unlink()",
            )
