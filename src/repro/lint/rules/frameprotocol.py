"""REP009 — frame-protocol consistency across the service modules.

The wire protocol is a set of JSON frames distinguished by their
``"type"`` field.  The sender and the dispatcher live in *different*
files (client constructs ``{"type": "event", ...}``; the server's
session loop compares ``frame.get("type") == "event"``), so a typo'd
or orphaned frame type is exactly the class of bug no per-file rule
can see: both sides parse, both sides run, and the frame is silently
dropped at runtime.

This rule collects, across every module in the *protocol group*:

* **constructed** types — ``dict`` literals containing a literal
  ``"type"`` key with a string value;
* **dispatched** types — string literals compared (``==``/``!=``/
  ``in``/``not in``/``match``) against a *type expression*:
  ``x.get("type")``, ``x["type"]``, or a name assigned from one in the
  same scope.

and flags the symmetric difference: a type that is constructed but
never dispatched on (dead frame — silently dropped by every receiver)
and a type that is dispatched on but never constructed (dead handler —
or a sender typo).

The protocol group is every module under ``src/repro/service/`` plus
any module tagged ``# repro: frame-protocol``.  The rule is silent
when the group has fewer than two modules: judging protocol symmetry
requires seeing both sides, so linting a single file in isolation
must not produce noise.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext
from ..project import ProjectContext, project_rule

_TAG = "frame-protocol"

#: (ctx, node) anchor lists per frame type.
_Sites = dict[str, list[tuple[FileContext, ast.AST]]]


def _in_group(ctx: FileContext) -> bool:
    return "/service/" in ctx.path.replace("\\", "/") or _TAG in ctx.tags


def _is_type_expr(node: ast.AST) -> bool:
    """``x.get("type")`` or ``x["type"]``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "type"
    ):
        return True
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == "type"
    ):
        return True
    return False


def _type_names(tree: ast.AST) -> set[str]:
    """Names assigned from a type expression anywhere in the module.

    Scoping is deliberately coarse (module-wide name set): frame
    dispatchers are short functions and a false *handled* entry only
    ever silences a finding, never invents one.
    """
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_type_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        elif isinstance(node, ast.NamedExpr) and _is_type_expr(node.value):
            if isinstance(node.target, ast.Name):
                out.add(node.target.id)
    return out


def _collect_constructed(ctx: FileContext, sites: _Sites) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "type"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                sites.setdefault(value.value, []).append((ctx, node))


def _collect_dispatched(ctx: FileContext, sites: _Sites) -> None:
    names = _type_names(ctx.tree)

    def is_selector(node: ast.AST) -> bool:
        return _is_type_expr(node) or (
            isinstance(node, ast.Name) and node.id in names
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left, op, right = node.left, node.ops[0], node.comparators[0]
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for selector, literal in ((left, right), (right, left)):
                    if (
                        is_selector(selector)
                        and isinstance(literal, ast.Constant)
                        and isinstance(literal.value, str)
                    ):
                        sites.setdefault(literal.value, []).append((ctx, node))
            elif isinstance(op, (ast.In, ast.NotIn)) and is_selector(left):
                if isinstance(right, (ast.Tuple, ast.List, ast.Set)):
                    for elt in right.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            sites.setdefault(elt.value, []).append((ctx, node))
        elif isinstance(node, ast.Match) and is_selector(node.subject):
            for case in node.cases:
                pattern = case.pattern
                if isinstance(pattern, ast.MatchValue) and isinstance(
                    pattern.value, ast.Constant
                ):
                    if isinstance(pattern.value.value, str):
                        sites.setdefault(pattern.value.value, []).append(
                            (ctx, node)
                        )


def _anchor(sites: list[tuple[FileContext, ast.AST]]) -> tuple[FileContext, ast.AST]:
    return min(
        sites,
        key=lambda s: (
            s[0].path,
            getattr(s[1], "lineno", 1),
            getattr(s[1], "col_offset", 0),
        ),
    )


@project_rule(
    "REP009",
    "frame-protocol-consistency",
    severity="error",
    description=(
        "every frame type constructed in the service protocol group must "
        "have a dispatch handler somewhere in the group, and vice versa"
    ),
)
def check_frame_protocol(
    project: ProjectContext,
) -> Iterator[tuple[FileContext, object, str]]:
    group = [
        project.modules[name].ctx
        for name in sorted(project.modules)
        if _in_group(project.modules[name].ctx)
    ]
    if len(group) < 2:
        return
    constructed: _Sites = {}
    dispatched: _Sites = {}
    for ctx in group:
        _collect_constructed(ctx, constructed)
        _collect_dispatched(ctx, dispatched)
    for ftype in sorted(set(constructed) - set(dispatched)):
        ctx, node = _anchor(constructed[ftype])
        yield (
            ctx,
            node,
            f"frame type {ftype!r} is constructed here but no module in "
            "the protocol group dispatches on it; the frame is silently "
            "dropped by every receiver",
        )
    for ftype in sorted(set(dispatched) - set(constructed)):
        ctx, node = _anchor(dispatched[ftype])
        yield (
            ctx,
            node,
            f"handler dispatches on frame type {ftype!r} but no module in "
            "the protocol group constructs it; dead handler or sender typo",
        )
