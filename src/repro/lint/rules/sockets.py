"""REP006 — socket and server lifecycle in the service layer.

The networked monitoring service holds kernel objects with real
lifetimes: listening ``asyncio.Server`` instances, stream-writer
transports, and blocking client sockets.  A socket acquired and then
lost to an exception before it is published (stored on ``self``,
returned, or entered into a ``with``) leaks a file descriptor per
occurrence — and in a long-running monitor that is an eventual
``EMFILE`` outage, not a cosmetic warning.

Every *acquiring* call —

* ``asyncio.start_server(...)`` / ``loop.create_server(...)``
* ``asyncio.open_connection(...)``
* ``socket.socket(...)`` / ``socket.create_connection(...)`` /
  ``socket.create_server(...)``

— must be dominated by a construct that guarantees closure on the
failure path between acquisition and publication:

* a ``with`` / ``async with`` statement whose context expression owns
  the call, or
* an enclosing ``try`` (the call in its *body*) whose handlers or
  ``finally`` block reach a ``.close()``, ``.wait_closed()``, or
  ``.__exit__`` call, or
* a *publication guard*: the statement performing the acquisition is
  immediately followed by a ``try`` whose handlers or ``finally``
  reach a closer, so the object is owned by a cleanup scope from the
  first instruction after it exists (the shape the service layer
  uses around ``start_server`` and ``open_connection``).

The rule applies to every module under ``src/repro/service/`` (by
path) and to any module tagged ``repro: service-sockets``.  It is the
REP003 shared-memory discipline transplanted to sockets: guard the
acquisition-to-publication window; steady-state lifetime is the
owner's concern.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, rule

#: ``module-or-object attribute`` call forms that acquire a socket-like
#: kernel object.
_ACQUIRERS = {
    ("asyncio", "start_server"),
    ("asyncio", "open_connection"),
    ("socket", "socket"),
    ("socket", "create_connection"),
    ("socket", "create_server"),
}

#: Attribute names that release such an object.
_CLOSERS = {"close", "wait_closed", "__exit__"}

_TAG = "service-sockets"


def _acquiring_call(node: ast.Call) -> str | None:
    """The dotted name of an acquiring call, or None."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        pair = (func.value.id, func.attr)
        if pair in _ACQUIRERS:
            return f"{pair[0]}.{pair[1]}"
        # loop.create_server(...) on any receiver name
        if func.attr == "create_server":
            return f"{func.value.id}.create_server"
    return None


def _cleanup_reaches_close(stmts: list[ast.stmt]) -> bool:
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _CLOSERS
            ):
                return True
    return False


def _applies(ctx: FileContext) -> bool:
    path = ctx.path.replace("\\", "/")
    return "/service/" in path or _TAG in ctx.tags


def _stmt_sequences(tree: ast.AST) -> list[list[ast.stmt]]:
    """Every statement list in the module (bodies, orelse, finally)."""
    out: list[list[ast.stmt]] = []
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            seq = getattr(node, field, None)
            if isinstance(seq, list) and seq and isinstance(seq[0], ast.stmt):
                out.append(seq)
    return out


def _publication_guard_follows(
    call: ast.Call, sequences: list[list[ast.stmt]]
) -> bool:
    """True if the statement containing ``call`` is immediately followed
    by a ``try`` whose cleanup path reaches a closer."""
    for seq in sequences:
        for i, stmt in enumerate(seq[:-1]):
            nxt = seq[i + 1]
            if not isinstance(nxt, ast.Try):
                continue
            if not any(sub is call for sub in ast.walk(stmt)):
                continue
            cleanup = list(nxt.finalbody)
            for handler in nxt.handlers:
                cleanup.extend(handler.body)
            if _cleanup_reaches_close(cleanup):
                return True
    return False


@rule(
    "REP006",
    "socket-lifecycle",
    severity="error",
    description=(
        "socket/server acquisition in the service layer must be dominated "
        "by a with statement or a try whose cleanup path reaches close()"
    ),
)
def check_socket_lifecycle(ctx: FileContext) -> Iterator[tuple[object, str]]:
    if not _applies(ctx):
        return
    sequences = _stmt_sequences(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _acquiring_call(node)
        if name is None:
            continue
        if _publication_guard_follows(node, sequences):
            continue
        protected = False
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if any(sub is node for sub in ast.walk(item.context_expr)):
                        protected = True
                        break
                if protected:
                    break
            if isinstance(ancestor, ast.Try):
                # Shielded only while inside the try body; a call in a
                # handler or else block is past the shield.
                in_body = any(
                    any(sub is node for sub in ast.walk(stmt))
                    for stmt in ancestor.body
                )
                if not in_body:
                    continue
                cleanup = list(ancestor.finalbody)
                for handler in ancestor.handlers:
                    cleanup.extend(handler.body)
                if _cleanup_reaches_close(cleanup):
                    protected = True
                    break
        if not protected:
            yield (
                node,
                f"{name}() can leak the descriptor on an exception before "
                "the object is published; wrap the acquisition in a with "
                "statement or a try whose handler/finally reaches close()",
            )
