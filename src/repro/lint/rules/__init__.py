"""Rule modules; importing this package registers every rule.

Per-file rules (REP001-REP006) register into
:data:`repro.lint.engine.RULES`; project rules (REP007-REP009) into
:data:`repro.lint.project.PROJECT_RULES`.
"""

from . import (
    asyncblocking,
    dtype,
    frameprotocol,
    hotpath,
    shm,
    sockets,
    tasklifecycle,
    versioning,
)

__all__ = [
    "asyncblocking",
    "dtype",
    "frameprotocol",
    "hotpath",
    "shm",
    "sockets",
    "tasklifecycle",
    "versioning",
]
