"""Rule modules; importing this package registers every rule."""

from . import dtype, hotpath, shm, versioning

__all__ = ["dtype", "hotpath", "shm", "versioning"]
