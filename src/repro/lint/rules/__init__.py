"""Rule modules; importing this package registers every rule."""

from . import dtype, hotpath, shm, sockets, versioning

__all__ = ["dtype", "hotpath", "shm", "sockets", "versioning"]
