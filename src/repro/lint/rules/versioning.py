"""REP001 / REP005 — cache/version discipline for registered classes.

The analysis layer memoizes derived data (cut quadruples, verdict
tables, stacked matrices) keyed by ``Execution.version``.  A method
that mutates tracked state without bumping the version, or that reads a
memoized field without first validating it against the version, silently
serves stale physics.  These rules enforce the protocol on every class
registered for version discipline via either spelling:

* the :func:`repro.core.versioning.versioned_state` decorator, or
* a ``_REPRO_VERSIONED`` dict class attribute (for layers that cannot
  import :mod:`repro.core`).

REP001 (version-discipline)
    A method that rebinds/mutates a declared *state* attribute must bump
    the version attribute in the same method.  A method that
    rebinds/mutates a declared *cache* attribute must bump the version,
    call a declared guard, or compare against the version.

REP005 (cache-read-before-check)
    A method that reads a declared *cache* attribute must call a guard
    or compare against the version attribute on a line no later than the
    first read.

``__init__``, declared guard methods, and read-only dunders are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from collections.abc import Iterator

from ..engine import FileContext, rule

#: Method names on tracked attributes that mutate in place.
MUTATING_METHODS = frozenset(
    {
        "clear", "update", "pop", "popitem", "setdefault",
        "append", "extend", "insert", "remove", "add", "discard",
        "sort", "reverse", "fill", "resize",
    }
)

#: Methods exempt from both rules: constructors never have stale state,
#: guards *are* the protocol, and these dunders are read-only by
#: convention (a mutating __eq__ would be a much bigger problem).
EXEMPT_DUNDERS = frozenset(
    {
        "__init__", "__new__", "__del__", "__len__", "__repr__", "__str__",
        "__bool__", "__hash__", "__eq__", "__ne__", "__contains__",
        "__iter__", "__sizeof__", "__getstate__", "__reduce__",
    }
)


@dataclass(frozen=True)
class Registration:
    """A class's version-discipline declaration, read from the AST."""

    version: str
    state: tuple[str, ...]
    caches: tuple[str, ...]
    guards: tuple[str, ...]


def _literal_str_tuple(node: ast.AST) -> tuple[str, ...] | None:
    if isinstance(node, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return tuple(out)
    return None


def _registration_from_decorator(cls: ast.ClassDef) -> tuple[Registration | None, bool]:
    """Return (registration, found) from a ``@versioned_state(...)`` mark."""
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "versioned_state":
            continue
        version: str | None = None
        state: tuple[str, ...] = ()
        caches: tuple[str, ...] = ()
        guards: tuple[str, ...] = ("invalidate",)
        ok = True
        for kw in deco.keywords:
            if kw.arg == "version":
                if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
                    version = kw.value.value
                else:
                    ok = False
            elif kw.arg in ("state", "caches", "guards"):
                tup = _literal_str_tuple(kw.value)
                if tup is None:
                    ok = False
                elif kw.arg == "state":
                    state = tup
                elif kw.arg == "caches":
                    caches = tup
                else:
                    guards = tup
        if not ok or version is None:
            return None, True
        return Registration(version, state, caches, guards), True
    return None, False


def _registration_from_attr(cls: ast.ClassDef) -> tuple[Registration | None, bool]:
    """Return (registration, found) from a ``_REPRO_VERSIONED`` dict."""
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "_REPRO_VERSIONED" for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, ast.Dict):
            return None, True
        version: str | None = None
        state: tuple[str, ...] = ()
        caches: tuple[str, ...] = ()
        guards: tuple[str, ...] = ("invalidate",)
        ok = True
        for key, value in zip(stmt.value.keys, stmt.value.values, strict=True):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                ok = False
                continue
            if key.value == "version":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    version = value.value
                else:
                    ok = False
            elif key.value in ("state", "caches", "guards"):
                tup = _literal_str_tuple(value)
                if tup is None:
                    ok = False
                elif key.value == "state":
                    state = tup
                elif key.value == "caches":
                    caches = tup
                else:
                    guards = tup
        if not ok or version is None:
            return None, True
        return Registration(version, state, caches, guards), True
    return None, False


def _is_self_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _self_attr_name(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _target_attrs(target: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """Tracked-attribute names written by an assignment/delete target."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_attrs(elt)
        return
    node = target
    # self.x[k] = v / self.x[k] += v / del self.x[k] mutate self.x
    while isinstance(node, ast.Subscript):
        node = node.value
    name = _self_attr_name(node)
    if name is not None:
        yield name, target


@dataclass
class _MethodFacts:
    """What one method does to the tracked attributes."""

    mutated: list[tuple[str, ast.AST]]
    write_nodes: set[int]  # id()s of Attribute nodes that are write targets
    bump_lines: list[int]
    guard_lines: list[int]
    compare_lines: list[int]


def _collect(fn: ast.AST, reg: Registration) -> _MethodFacts:
    tracked = set(reg.state) | set(reg.caches)
    facts = _MethodFacts([], set(), [], [], [])
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            continue  # nested defs still walked below; acceptable over-approximation
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for name, tnode in _target_attrs(target):
                    base = tnode
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    facts.write_nodes.add(id(base))
                    if name in tracked:
                        facts.mutated.append((name, node))
                    if name == reg.version:
                        facts.bump_lines.append(node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                for name, tnode in _target_attrs(target):
                    base = tnode
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    facts.write_nodes.add(id(base))
                    if name in tracked:
                        facts.mutated.append((name, node))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                owner = _self_attr_name(func.value)
                if owner in tracked and func.attr in MUTATING_METHODS:
                    facts.mutated.append((owner, node))
                    facts.write_nodes.add(id(func.value))
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in reg.guards
                ):
                    facts.guard_lines.append(node.lineno)
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for op in operands:
                if any(
                    _is_self_attr(sub, reg.version) for sub in ast.walk(op)
                ):
                    facts.compare_lines.append(node.lineno)
                    break
    return facts


def _cache_reads(fn: ast.AST, reg: Registration, write_nodes: set[int]) -> dict[str, int]:
    """First-read line per cache attribute (Load uses that aren't writes)."""
    first: dict[str, int] = {}
    caches = set(reg.caches)
    for node in ast.walk(fn):
        if not isinstance(node, ast.Attribute):
            continue
        if id(node) in write_nodes:
            continue
        name = _self_attr_name(node)
        if name in caches and isinstance(node.ctx, ast.Load):
            line = first.get(name)
            if line is None or node.lineno < line:
                first[name] = node.lineno
    return first


def _iter_registered_classes(
    ctx: FileContext,
) -> Iterator[tuple[ast.ClassDef, Registration | None]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        reg, found = _registration_from_decorator(node)
        if not found:
            reg, found = _registration_from_attr(node)
        if found:
            yield node, reg


@rule(
    "REP001",
    "version-discipline",
    severity="error",
    description=(
        "methods of version-registered classes must bump the version "
        "attribute when mutating tracked state, and guard or bump when "
        "refilling caches"
    ),
)
def check_version_discipline(ctx: FileContext) -> Iterator[tuple[object, str]]:
    for cls, reg in _iter_registered_classes(ctx):
        if reg is None:
            yield (
                cls,
                f"class '{cls.name}' has an unreadable version-discipline "
                "registration (use literal strings/tuples)",
            )
            continue
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in EXEMPT_DUNDERS or item.name in reg.guards:
                continue
            facts = _collect(item, reg)
            protected = bool(
                facts.bump_lines or facts.guard_lines or facts.compare_lines
            )
            reported: set[tuple[str, bool]] = set()
            for attr, node in facts.mutated:
                is_state = attr in reg.state
                if is_state and not facts.bump_lines:
                    if (attr, True) not in reported:
                        reported.add((attr, True))
                        yield (
                            node,
                            f"'{cls.name}.{item.name}' mutates versioned state "
                            f"'{attr}' without bumping '{reg.version}'",
                        )
                elif not is_state and not protected:
                    if (attr, False) not in reported:
                        reported.add((attr, False))
                        yield (
                            node,
                            f"'{cls.name}.{item.name}' refills cache '{attr}' "
                            f"without a '{reg.version}' bump, guard call, or "
                            "version check",
                        )


@rule(
    "REP005",
    "cache-read-before-check",
    severity="error",
    description=(
        "reads of memoized cache attributes must be preceded by a guard "
        "call or a version comparison in the same method"
    ),
)
def check_cache_read_before_check(ctx: FileContext) -> Iterator[tuple[object, str]]:
    for cls, reg in _iter_registered_classes(ctx):
        if reg is None or not reg.caches:
            continue
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in EXEMPT_DUNDERS or item.name in reg.guards:
                continue
            facts = _collect(item, reg)
            reads = _cache_reads(item, reg, facts.write_nodes)
            if not reads:
                continue
            check_lines = facts.guard_lines + facts.compare_lines
            earliest_check = min(check_lines) if check_lines else None
            for attr, first_line in sorted(reads.items(), key=lambda kv: kv[1]):
                if earliest_check is None or earliest_check > first_line:
                    yield (
                        (first_line, 1),
                        f"'{cls.name}.{item.name}' reads cache '{attr}' before "
                        f"any guard call or '{reg.version}' comparison",
                    )
