"""REP008 — spawned task handles must be kept and settled.

``asyncio.create_task`` / ``asyncio.ensure_future`` return a handle
that is the *only* place the task's exception can surface.  A handle
that is discarded (bare expression statement) or stored but never
awaited, cancelled, or handed onward is a task whose failure vanishes
— the service keeps running with a dead pump and nobody is told.  It
is also vulnerable to premature garbage collection: the event loop
holds only a weak reference to scheduled tasks.

Checked shapes:

* ``create_task(...)`` as a bare expression statement → flagged.
* ``name = create_task(...)`` → the name must be *consumed* somewhere
  in the same function: awaited, ``.cancel()``-ed,
  ``.add_done_callback()``-ed, passed to a call (``gather``,
  ``wait_for``, list building), returned/yielded, or stored onward.
* ``self.attr = create_task(...)`` → the attribute name must be
  consumed the same way somewhere in the project (the owner often
  cancels in another method or module).

Tasks spawned through ``asyncio.TaskGroup`` (``tg.create_task`` where
``tg`` is bound by ``async with asyncio.TaskGroup()``) are exempt: the
group awaits its children structurally.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext
from ..project import FunctionInfo, ProjectContext, project_rule

_SPAWN_EXTERNALS = {"asyncio.create_task", "asyncio.ensure_future"}
_SPAWN_ATTRS = {"create_task", "ensure_future"}
_SETTLE_ATTRS = {"cancel", "add_done_callback"}


def _taskgroup_vars(fn: FunctionInfo) -> set[str]:
    """Names bound by ``async with asyncio.TaskGroup() as tg``."""
    out: set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.AsyncWith):
            continue
        for item in node.items:
            expr = item.context_expr
            is_group = (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "TaskGroup"
            )
            if is_group and isinstance(item.optional_vars, ast.Name):
                out.add(item.optional_vars.id)
    return out


def _spawn_sites(fn: FunctionInfo) -> Iterator[ast.Call]:
    groups = _taskgroup_vars(fn)
    for site in fn.calls:
        if any(c in _SPAWN_EXTERNALS for c in site.callees):
            yield site.node
            continue
        func = site.node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SPAWN_ATTRS
            and not site.callees
            and not (isinstance(func.value, ast.Name) and func.value.id in groups)
        ):
            # unresolved receiver (loop.create_task, tg outside groups)
            yield site.node


def _name_consumed(fn: FunctionInfo, ctx: FileContext, name: str) -> bool:
    """Does any *load* of ``name`` in the function settle the task?"""
    for node in ast.walk(fn.node):
        if not (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
        ):
            continue
        if _consuming_use(ctx, node):
            return True
    return False


def _consuming_use(ctx: FileContext, node: ast.AST) -> bool:
    """True when this use awaits, settles, or hands the value onward."""
    parent = ctx.parents.get(node)
    # receiver of t.cancel() / t.add_done_callback(...)
    if (
        isinstance(parent, ast.Attribute)
        and parent.value is node
        and parent.attr in _SETTLE_ATTRS
        and isinstance(ctx.parents.get(parent), ast.Call)
    ):
        return True
    cur: ast.AST | None = node
    while cur is not None:
        up = ctx.parents.get(cur)
        if isinstance(up, (ast.Await, ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(up, ast.Call) and cur is not up.func:
            return True  # passed as an argument (gather, wait_for, append)
        if isinstance(up, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            value = getattr(up, "value", None)
            if value is not None and any(sub is node for sub in ast.walk(value)):
                return True  # stored onward
            return False
        if isinstance(up, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            return False
        cur = up
    return False


def _attr_consumed(project: ProjectContext, attr: str) -> bool:
    """Is ``<anything>.attr`` settled anywhere in the project?"""
    for name in sorted(project.modules):
        ctx = project.modules[name].ctx
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Attribute) and node.attr == attr
                    and isinstance(node.ctx, ast.Load)):
                continue
            if _consuming_use(ctx, node):
                return True
    return False


@project_rule(
    "REP008",
    "task-lifecycle",
    severity="error",
    description=(
        "asyncio.create_task/ensure_future handles must be stored and later "
        "awaited, cancelled, or handed onward; a discarded task loses its "
        "exception and may be garbage-collected mid-flight"
    ),
)
def check_task_lifecycle(
    project: ProjectContext,
) -> Iterator[tuple[FileContext, object, str]]:
    for fn in project.iter_functions():
        for call in _spawn_sites(fn):
            parent = fn.ctx.parents.get(call)
            # unwrap `name = await create_task(...)`-style oddities
            if isinstance(parent, ast.Await):
                continue  # awaited immediately: settled
            if isinstance(parent, ast.Expr):
                yield (
                    fn.ctx,
                    call,
                    "task handle is discarded; store it and await or "
                    "cancel it (or use asyncio.TaskGroup) so its "
                    "exception cannot vanish",
                )
                continue
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                targets = (
                    parent.targets
                    if isinstance(parent, ast.Assign)
                    else [parent.target]
                )
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    name = targets[0].id
                    if not _name_consumed(fn, fn.ctx, name):
                        yield (
                            fn.ctx,
                            call,
                            f"task handle {name!r} is stored but never "
                            "awaited, cancelled, or handed onward in "
                            f"{fn.qualname.rsplit('.', 1)[-1]}()",
                        )
                    continue
                if len(targets) == 1 and isinstance(targets[0], ast.Attribute):
                    attr = targets[0].attr
                    if not _attr_consumed(project, attr):
                        yield (
                            fn.ctx,
                            call,
                            f"task handle stored on .{attr} is never "
                            "awaited, cancelled, or handed onward "
                            "anywhere in the project",
                        )
                    continue
            # any other context (call argument, return, container
            # literal) hands the handle onward — fine.
