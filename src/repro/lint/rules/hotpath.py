"""REP004 — hot-path hygiene.

Modules tagged ``# repro: hot`` hold the measured kernels (clock
construction, cut folds, pairwise broadcasting, the online monitor).
Three Python-level habits reliably show up in their profiles:

* **per-event Python loops** — iterating ``Execution.events`` /
  ``iter_ids()`` / ``iter_events()`` / ``events_of()`` one event at a
  time re-introduces the O(|E|) interpreter overhead the columnar
  substrate exists to avoid (reference oracles may suppress with a
  justification);
* **mutable default arguments** — besides the classic aliasing bug,
  they defeat the argument-tuple memoization used by the query planner;
* **classes without ``__slots__``** — per-instance dicts dominate
  memory for the small per-interval record types created in bulk.
  ``@dataclass(slots=True)`` counts; exception types and classes with
  non-trivial bases (which may not support slots) are exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, rule

#: Call / attribute names whose iteration is per-event by construction.
PER_EVENT_SOURCES = frozenset({"iter_ids", "iter_events", "events_of"})
PER_EVENT_ATTRS = frozenset({"events"})

#: Base-class name suffixes that exempt a class from the __slots__
#: requirement (BaseException disallows nonempty slots layouts in
#: multiple-inheritance scenarios, and exceptions are never bulk data).
EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning")
EXEMPT_BASES = frozenset(
    {"NamedTuple", "TypedDict", "Protocol", "Enum", "IntEnum", "StrEnum", "Flag"}
)


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_per_event_iterable(node: ast.AST) -> str | None:
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in PER_EVENT_SOURCES:
            return f"{name}()"
    if isinstance(node, ast.Attribute) and node.attr in PER_EVENT_ATTRS:
        return f".{node.attr}"
    return None


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


def _has_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call):
            name = _call_name(deco)
            if name == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


def _slots_exempt(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
        if name is None:
            continue
        if name.endswith(EXEMPT_BASE_SUFFIXES) or name in EXEMPT_BASES:
            return True
    return False


@rule(
    "REP004",
    "hot-path-hygiene",
    severity="warning",
    description=(
        "hot modules must avoid per-event Python loops, mutable default "
        "arguments, and __slots__-less classes"
    ),
    requires_tag="hot",
)
def check_hot_path(ctx: FileContext) -> Iterator[tuple[object, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            label = _is_per_event_iterable(node.iter)
            if label is not None:
                yield (
                    node,
                    f"per-event Python loop over {label} in a hot module; "
                    "use the columnar kernels or suppress with a "
                    "justification",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                label = _is_per_event_iterable(gen.iter)
                if label is not None:
                    yield (
                        (gen.iter.lineno, gen.iter.col_offset + 1),
                        f"per-event Python comprehension over {label} in a "
                        "hot module; use the columnar kernels or suppress "
                        "with a justification",
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield (
                        default,
                        f"mutable default argument in '{node.name}' "
                        "(aliasing hazard; defeats argument memoization)",
                    )
        elif isinstance(node, ast.ClassDef):
            if not _has_slots(node) and not _slots_exempt(node):
                yield (
                    node,
                    f"class '{node.name}' in a hot module lacks __slots__ "
                    "(per-instance dicts dominate bulk allocations)",
                )
