"""REP007 — blocking call reachable from a coroutine.

The paper's message, applied to our own event loop: a synchronization
fault is invisible where it is written and only observable in the
global order of events.  A synchronous ``os.fsync`` buried three call
hops below ``MonitorService._session_loop`` stalls *every* session,
watch push, and heartbeat sharing that loop — yet no single file shows
anything suspicious.

The rule works on the project call graph:

1. A seed set of known-blocking primitives (``time.sleep``,
   ``os.fsync``, ``open``/file I/O, ``socket.*``, blocking
   ``queue.Queue`` operations, ``subprocess.run`` and friends) marks
   external calls as blocking.
2. Every *synchronous* project function that calls a seed — or calls a
   tainted sync function — is tainted transitively, carrying a witness
   chain down to the primitive.
3. Any ``async def`` that calls a seed directly, or calls a tainted
   sync function, is flagged.  The sanctioned escape hatches are
   ``loop.run_in_executor(...)`` and ``asyncio.to_thread(...)``:
   passing a tainted function as an argument creates no call edge, so
   offloaded work never trips the rule.

Async callees never propagate taint: calling a coroutine function just
builds the coroutine object, and awaiting it yields to the loop.
"""

from __future__ import annotations

import ast
from collections import deque
from fnmatch import fnmatchcase
from collections.abc import Iterator

from ..engine import FileContext
from ..project import FunctionInfo, ProjectContext, project_rule

#: External call names considered blocking (fnmatch patterns).
BLOCKING_SEEDS: tuple[str, ...] = (
    "time.sleep",
    "os.fsync",
    "os.fdatasync",
    "os.waitpid",
    "open",
    "io.open",
    "socket.*",
    "select.select",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "queue.Queue.get",
    "queue.Queue.put",
    "queue.Queue.join",
    "queue.SimpleQueue.get",
    "queue.SimpleQueue.put",
    "requests.*",
    "urllib.request.*",
)


def _seed_match(name: str) -> bool:
    return any(fnmatchcase(name, pat) for pat in BLOCKING_SEEDS)


def _short(qualname: str, project: ProjectContext) -> str:
    """Render a qualname without its module prefix for messages."""
    fn = project.functions.get(qualname)
    if fn is None:
        return qualname
    prefix = fn.module + "."
    return qualname[len(prefix):] if qualname.startswith(prefix) else qualname


def _taint(
    project: ProjectContext,
) -> dict[str, tuple[str, tuple[str, ...]]]:
    """Map tainted sync qualname -> (seed name, witness chain).

    The chain lists qualnames from the tainted function down to (but
    not including) the external seed.
    """
    tainted: dict[str, tuple[str, tuple[str, ...]]] = {}
    # direct seed hits, in deterministic order
    order: deque[str] = deque()
    for fn in project.iter_functions():
        if fn.is_async:
            continue
        for site in fn.calls:
            seed = next((c for c in site.callees if _seed_match(c)), None)
            if seed is not None:
                tainted[fn.qualname] = (seed, (fn.qualname,))
                order.append(fn.qualname)
                break
    # reverse-BFS: sync callers of tainted sync functions become tainted
    callers: dict[str, list[str]] = {}
    for fn in project.iter_functions():
        if fn.is_async:
            continue
        for site in fn.calls:
            for callee in site.callees:
                callers.setdefault(callee, []).append(fn.qualname)
    while order:
        cur = order.popleft()
        seed, chain = tainted[cur]
        for caller in callers.get(cur, ()):
            if caller in tainted:
                continue
            tainted[caller] = (seed, (caller, *chain))
            order.append(caller)
    return tainted


def _render_chain(
    fn: FunctionInfo, chain: tuple[str, ...], seed: str, project: ProjectContext
) -> str:
    hops = [_short(q, project) for q in (fn.qualname, *chain)]
    return " -> ".join((*hops, seed))


@project_rule(
    "REP007",
    "blocking-call-in-coroutine",
    severity="error",
    description=(
        "an async def reaches a blocking primitive (time.sleep, os.fsync, "
        "file/socket I/O, queue.Queue, subprocess) through the call graph; "
        "offload with loop.run_in_executor or asyncio.to_thread"
    ),
)
def check_blocking_in_coroutine(
    project: ProjectContext,
) -> Iterator[tuple[FileContext, object, str]]:
    tainted = _taint(project)
    for fn in project.iter_functions():
        if not fn.is_async:
            continue
        for site in fn.calls:
            for callee in site.callees:
                if _seed_match(callee):
                    yield (
                        fn.ctx,
                        site.node,
                        f"coroutine {_short(fn.qualname, project)}() calls "
                        f"blocking primitive {callee}() on the event loop; "
                        "offload with loop.run_in_executor or "
                        "asyncio.to_thread",
                    )
                    break
                entry = tainted.get(callee)
                if entry is not None:
                    seed, chain = entry
                    yield (
                        fn.ctx,
                        site.node,
                        f"coroutine {_short(fn.qualname, project)}() calls "
                        f"{_short(callee, project)}(), which blocks the "
                        f"event loop via {_render_chain(fn, chain, seed, project)}; "
                        "offload with loop.run_in_executor or "
                        "asyncio.to_thread",
                    )
                    break
