"""Project-wide analysis phase: symbol index, call graph, project rules.

The per-file rules (REP001-REP006) are deliberately local: one
:class:`~repro.lint.engine.FileContext` in, findings out.  That blind
spot is exactly the paper's point about synchronization bugs — the
error is invisible in any single process and only shows up in the
cross-process order of events.  The analogous lint bugs are invisible
in any single *file*: a synchronous ``fsync`` reached from a coroutine
three call hops away, a spawned task whose handle no module ever
awaits, a frame type emitted by the client that the server never
dispatches.

This module is the second phase that sees them.  After every file is
parsed, :func:`build_project` constructs a :class:`ProjectContext`:

* a **module index** — every parsed file, keyed by its dotted module
  name (derived from the path: everything under a ``src`` directory is
  package-qualified, anything else is its stem);
* a **symbol table** — module-qualified functions, methods, and
  classes (:class:`FunctionInfo` / :class:`ClassInfo`), with
  async-ness recorded per def and per-class attribute types inferred
  from annotated ``__init__`` parameters, ``self.x: T`` declarations,
  and constructor assignments;
* a **call graph** — one edge per ``Call`` node, resolved through the
  module's import table (including aliases and relative imports),
  ``self``/parameter/local types, and attribute chains like
  ``self.core.submit_event``.  Calls that resolve outside the project
  keep their dotted external name (``os.fsync``, ``asyncio.create_task``)
  so rules can match primitive seeds.

Project rules register with :func:`project_rule` and receive the
:class:`ProjectContext`; they yield ``(file_ctx, node_or_pos, message)``
triples so each finding lands in the file that owns the offending node
— which also means the per-file inline suppressions and the shared
baseline machinery apply to project findings unchanged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator

from .engine import FileContext, Finding, Rule

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "PROJECT_RULES",
    "ProjectContext",
    "build_project",
    "project_rule",
    "run_project",
]

#: Registry of project-phase rules, keyed by rule code.
PROJECT_RULES: dict[str, Rule] = {}

#: Spellings that appear in annotations but never name a concrete
#: class worth tracking (typing machinery, builtins, containers).
_TYPE_NOISE = frozenset({
    "None", "Any", "Optional", "Union", "Callable", "Coroutine", "Awaitable",
    "Iterable", "Iterator", "Sequence", "Mapping", "MutableMapping", "Generator",
    "list", "dict", "tuple", "set", "frozenset", "deque", "type", "object",
    "str", "bytes", "bytearray", "int", "float", "complex", "bool",
    "Final", "ClassVar", "Self", "Literal", "Annotated", "TypeVar",
})

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def project_rule(
    code: str,
    name: str,
    *,
    severity: str = "error",
    description: str,
) -> Callable[
    [Callable[["ProjectContext"], Iterator[tuple[FileContext, object, str]]]],
    Rule,
]:
    """Decorator: register a project-phase check under ``code``."""

    def register(
        fn: Callable[["ProjectContext"], Iterator[tuple[FileContext, object, str]]]
    ) -> Rule:
        if code in PROJECT_RULES:
            raise ValueError(f"duplicate project rule code {code}")
        entry = Rule(
            code=code,
            name=name,
            severity=severity,
            description=description,
            check=fn,  # type: ignore[arg-type]  (project signature)
        )
        PROJECT_RULES[code] = entry
        return entry

    return register


@dataclass
class CallSite:
    """One ``Call`` node inside a function, with its resolved callees.

    ``callees`` holds project qualnames (``pkg.mod.Cls.method``) and/or
    external dotted names (``os.fsync``); empty when unresolvable.
    """

    __slots__ = ("node", "callees")

    node: ast.Call
    callees: tuple[str, ...]


@dataclass
class FunctionInfo:
    """One function or method in the project symbol table."""

    qualname: str
    module: str
    ctx: FileContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    cls: str | None = None  #: enclosing class qualname, if any
    calls: list[CallSite] = field(default_factory=list)
    #: immediate nested defs: local name -> qualname
    local_defs: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class definition in the project symbol table."""

    qualname: str
    module: str
    ctx: FileContext
    node: ast.ClassDef
    #: base-class refs (project qualnames or external dotted names)
    bases: tuple[str, ...] = ()
    #: direct method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)
    #: instance attribute -> inferred type refs
    attr_types: dict[str, frozenset[str]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module: its context plus the local import table."""

    name: str
    ctx: FileContext
    #: true for package ``__init__`` files: relative imports resolve
    #: against the package itself, not its parent
    is_package: bool = False
    #: local alias -> dotted target ("os", "repro.service.log.EventLog")
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level function/class name -> qualname
    toplevel: dict[str, str] = field(default_factory=dict)


class ProjectContext:
    """The whole-program view handed to every ``@project_rule``."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    # symbol lookups
    # ------------------------------------------------------------------
    def method(self, cls_qualname: str, name: str) -> str | None:
        """Resolve ``name`` on a class, walking project base classes."""
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            cur = stack.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            info = self.classes.get(cur)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.bases)
        return None

    def attr_types_of(self, cls_qualname: str, attr: str) -> frozenset[str]:
        """Inferred types of ``self.attr`` on a class (bases included)."""
        out: set[str] = set()
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            cur = stack.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            info = self.classes.get(cur)
            if info is None:
                continue
            out.update(info.attr_types.get(attr, ()))
            stack.extend(info.bases)
        return frozenset(out)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """All functions in deterministic (qualname) order."""
        for qualname in sorted(self.functions):
            yield self.functions[qualname]


# ----------------------------------------------------------------------
# module naming and imports
# ----------------------------------------------------------------------
def module_name_for(path: str) -> str:
    """Dotted module name for a display path.

    ``src/pkg/sub/mod.py`` (any prefix before ``src``) becomes
    ``pkg.sub.mod``; ``__init__`` maps to its package.  Paths without a
    ``src`` component fall back to the file stem, which keeps loose
    fixture files addressable.
    """
    parts = list(path.replace("\\", "/").split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "?"


def _collect_imports(module: ModuleInfo) -> None:
    # level-1 relative imports drop the trailing module name; a package
    # __init__ *is* its package, so pad so level 1 keeps the full name
    pkg = module.name.split(".")
    if module.is_package:
        pkg = pkg + ["__init__"]
    for node in ast.walk(module.ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # relative: drop the module's own name plus (level - 1)
                # further packages, then append the stated module
                base = pkg[: len(pkg) - node.level]
            else:
                base = []
            if node.module:
                base = base + node.module.split(".")
            prefix = ".".join(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )


# ----------------------------------------------------------------------
# definition collection
# ----------------------------------------------------------------------
def _collect_defs(module: ModuleInfo, project: ProjectContext) -> None:
    def visit(body: list[ast.stmt], prefix: str, cls: str | None) -> None:
        for stmt in body:
            if isinstance(stmt, _DEF_NODES):
                qualname = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qualname=qualname,
                    module=module.name,
                    ctx=module.ctx,
                    node=stmt,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    cls=cls,
                )
                project.functions[qualname] = info
                if prefix == module.name:
                    module.toplevel.setdefault(stmt.name, qualname)
                elif cls is not None and prefix == cls:
                    project.classes[cls].methods.setdefault(stmt.name, qualname)
                # nested defs keep the enclosing class for self-resolution
                visit(stmt.body, qualname, cls)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{prefix}.{stmt.name}"
                project.classes[qualname] = ClassInfo(
                    qualname=qualname,
                    module=module.name,
                    ctx=module.ctx,
                    node=stmt,
                )
                if prefix == module.name:
                    module.toplevel.setdefault(stmt.name, qualname)
                visit(stmt.body, qualname, qualname)

    visit(module.ctx.tree.body, module.name, None)
    # wire immediate nested defs onto their parents
    for qualname, info in project.functions.items():
        if info.module != module.name:
            continue
        parent = qualname.rsplit(".", 1)[0]
        if parent in project.functions:
            project.functions[parent].local_defs[
                qualname.rsplit(".", 1)[1]
            ] = qualname


# ----------------------------------------------------------------------
# name and type resolution
# ----------------------------------------------------------------------
def _annotation_names(node: ast.AST | None) -> list[str]:
    """Dotted type-name spellings mentioned by an annotation."""
    out: list[str] = []
    if node is None:
        return out
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, ast.Constant) and isinstance(cur.value, str):
            try:
                stack.append(ast.parse(cur.value, mode="eval").body)
            except SyntaxError:
                pass
        elif isinstance(cur, ast.Name):
            out.append(cur.id)
        elif isinstance(cur, ast.Attribute):
            dotted = _dotted_name(cur)
            if dotted is not None:
                out.append(dotted)
        elif isinstance(cur, (ast.Subscript, ast.BinOp, ast.Tuple, ast.List)):
            stack.extend(ast.iter_child_nodes(cur))
    return [n for n in out if n.split(".")[0] not in _TYPE_NOISE]


def _dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains rooted at a Name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Resolver:
    """Import-aware name, type, and call resolution over the index."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project

    # -- names ----------------------------------------------------------
    def ref(self, name: str, module: ModuleInfo) -> str:
        """Resolve a (possibly dotted) local spelling to a project
        qualname or an external dotted name."""
        head, _, rest = name.partition(".")
        if head in module.toplevel:
            target = module.toplevel[head]
        elif head in module.imports:
            target = module.imports[head]
        else:
            target = head
        full = f"{target}.{rest}" if rest else target
        return self._chase(full)

    def _chase(self, full: str, depth: int = 0) -> str:
        """Follow package re-exports: ``repro.service.MonitorService``
        imported from ``repro.service/__init__`` resolves through that
        module's own import table to the defining module's qualname."""
        if depth > 4 or full in self.project.classes or full in self.project.functions:
            return full
        prefix, _, symbol = full.rpartition(".")
        if not prefix:
            return full
        owner = self.project.modules.get(prefix)
        if owner is None:
            return full
        if symbol in owner.toplevel:
            return owner.toplevel[symbol]
        if symbol in owner.imports:
            return self._chase(owner.imports[symbol], depth + 1)
        return full

    def type_refs(self, names: list[str], module: ModuleInfo) -> frozenset[str]:
        out: set[str] = set()
        for name in names:
            ref = self.ref(name, module)
            out.add(ref)
        return frozenset(out)

    # -- expression types ----------------------------------------------
    def expr_types(
        self, expr: ast.AST, fn: FunctionInfo, depth: int = 0
    ) -> frozenset[str]:
        """Candidate class refs an expression may evaluate to."""
        if depth > 5:
            return frozenset()
        module = self.project.modules[fn.module]
        if isinstance(expr, ast.Name):
            if fn.cls is not None and expr.id in ("self", "cls"):
                return frozenset({fn.cls})
            ann = self._param_annotation(fn, expr.id)
            if ann is not None:
                return self.type_refs(_annotation_names(ann), module)
            out: set[str] = set()
            for value in self._local_bindings(fn, expr.id):
                out.update(self.expr_types(value, fn, depth + 1))
            return frozenset(out)
        if isinstance(expr, ast.Attribute):
            out = set()
            for base in self.expr_types(expr.value, fn, depth + 1):
                if base in self.project.classes:
                    out.update(self.project.attr_types_of(base, expr.attr))
            return frozenset(out)
        if isinstance(expr, ast.Call):
            out = set()
            for callee in self.call_targets(expr, fn, depth + 1):
                if callee.endswith(".__init__"):
                    out.add(callee[: -len(".__init__")])
                elif callee in self.project.classes:
                    out.add(callee)
                elif callee not in self.project.functions and "." in callee:
                    # external constructor-ish call: queue.Queue(), etc.
                    out.add(callee)
            return frozenset(out)
        if isinstance(expr, ast.Await):
            return self.expr_types(expr.value, fn, depth + 1)
        return frozenset()

    def _param_annotation(self, fn: FunctionInfo, name: str) -> ast.AST | None:
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg == name:
                return arg.annotation
        return None

    def _local_bindings(self, fn: FunctionInfo, name: str) -> list[ast.AST]:
        out: list[ast.AST] = []
        for node in _own_nodes(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        out.append(node.value)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == name
                ):
                    out.append(node.annotation)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.optional_vars, ast.Name)
                        and item.optional_vars.id == name
                    ):
                        out.append(item.context_expr)
        return out

    # -- calls ----------------------------------------------------------
    def call_targets(
        self, call: ast.Call, fn: FunctionInfo, depth: int = 0
    ) -> tuple[str, ...]:
        """Resolved callee refs for one ``Call`` node."""
        module = self.project.modules[fn.module]
        func = call.func
        out: list[str] = []
        if isinstance(func, ast.Name):
            if func.id in fn.local_defs:
                out.append(fn.local_defs[func.id])
            else:
                out.extend(self._named_target(func.id, module))
        elif isinstance(func, ast.Attribute):
            value = func.value
            # module-attribute form: os.fsync, asyncio.create_task,
            # log_mod.read_records, MonitorCore.from_records
            if isinstance(value, ast.Name):
                dotted = _dotted_name(func)
                if dotted is not None:
                    head = dotted.split(".")[0]
                    if head in module.imports or head in module.toplevel:
                        out.extend(self._named_target(dotted, module))
            if not out:
                for base in self.expr_types(value, fn, depth + 1):
                    if base in self.project.classes:
                        method = self.project.method(base, func.attr)
                        if method is not None:
                            out.append(method)
                    elif "." in base and base not in self.project.functions:
                        out.append(f"{base}.{func.attr}")
        return tuple(dict.fromkeys(out))

    def _named_target(self, name: str, module: ModuleInfo) -> list[str]:
        ref = self.ref(name, module)
        if ref in self.project.functions:
            return [ref]
        if ref in self.project.classes:
            ctor = self.project.method(ref, "__init__")
            return [ctor] if ctor is not None else [f"{ref}.__init__"]
        return [ref]  # external dotted (os.fsync) or bare builtin (open)


def _own_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, excluding nested def/lambda
    bodies (their calls belong to the nested function)."""
    stack: list[ast.AST] = [fn_node]
    first = True
    while stack:
        node = stack.pop()
        if not first and isinstance(node, (*_DEF_NODES, ast.Lambda)):
            continue
        first = False
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# attribute-type inference
# ----------------------------------------------------------------------
def _collect_attr_types(project: ProjectContext, resolver: _Resolver) -> None:
    for qualname in sorted(project.classes):
        cls = project.classes[qualname]
        module = project.modules[cls.module]
        cls.bases = tuple(
            resolver.ref(name, module)
            for base in cls.node.bases
            if (name := _dotted_name(base)) is not None
        )
        attr_types: dict[str, set[str]] = {}
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                attr_types.setdefault(stmt.target.id, set()).update(
                    resolver.type_refs(_annotation_names(stmt.annotation), module)
                )
        for method_qual in cls.methods.values():
            fn = project.functions[method_qual]
            for node in _own_nodes(fn.node):
                target: ast.AST | None = None
                value: ast.AST | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.annotation
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and value is not None
                ):
                    refs: frozenset[str]
                    if isinstance(node, ast.AnnAssign):
                        refs = resolver.type_refs(
                            _annotation_names(value), module
                        )
                    else:
                        refs = resolver.expr_types(value, fn)
                    if refs:
                        attr_types.setdefault(target.attr, set()).update(refs)
        cls.attr_types = {
            attr: frozenset(refs) for attr, refs in attr_types.items()
        }


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------
def build_project(contexts: list[FileContext]) -> ProjectContext:
    """Index every parsed file and resolve the call graph."""
    project = ProjectContext()
    for ctx in contexts:
        name = module_name_for(ctx.path)
        if name in project.modules:
            # duplicate module name (two loose files with one stem):
            # keep the first deterministically, skip the shadow
            continue
        is_package = ctx.path.replace("\\", "/").endswith("/__init__.py") or (
            ctx.path == "__init__.py"
        )
        project.modules[name] = ModuleInfo(
            name=name, ctx=ctx, is_package=is_package
        )
    resolver = _Resolver(project)
    for name in sorted(project.modules):
        module = project.modules[name]
        _collect_imports(module)
        _collect_defs(module, project)
    _collect_attr_types(project, resolver)
    for fn in project.iter_functions():
        for node in _own_nodes(fn.node):
            if isinstance(node, ast.Call):
                fn.calls.append(
                    CallSite(node=node, callees=resolver.call_targets(node, fn))
                )
    return project


def run_project(contexts: list[FileContext]) -> list[Finding]:
    """Build the project index and run every registered project rule."""
    from . import rules as _rules  # noqa: F401  (side effect: registration)

    project = build_project(contexts)
    findings: list[Finding] = []
    for code in sorted(PROJECT_RULES):
        entry = PROJECT_RULES[code]
        for ctx, node_or_pos, message in entry.check(project):  # type: ignore[arg-type]
            if isinstance(node_or_pos, tuple):
                line, col = node_or_pos
            else:
                line = getattr(node_or_pos, "lineno", 1)
                col = getattr(node_or_pos, "col_offset", 0) + 1
            if ctx.suppressed(line, entry.code):
                continue
            findings.append(
                Finding(ctx.path, line, col, entry.code, message, entry.severity)
            )
    findings.sort()
    return findings
