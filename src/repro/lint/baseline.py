"""Baseline support: grandfathering known findings.

The baseline is a checked-in JSON file listing findings that are
acknowledged but not yet fixed.  Each entry matches on
``(path, rule, message)`` — line numbers drift with unrelated edits, so
they are recorded for humans but ignored for matching.  Matching is
multiset-style: an entry absorbs at most ``count`` findings, so a
regression that *adds* a second instance of a baselined finding still
fails the run.  Entries carry an optional ``justification`` string;
``repro lint --write-baseline`` preserves justifications for entries
that survive the rewrite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .engine import Finding

__all__ = ["Baseline", "partition"]

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """Parsed baseline file: entry key -> (budget, justification)."""

    entries: dict[tuple[str, str, str], int] = field(default_factory=dict)
    justifications: dict[tuple[str, str, str], str] = field(default_factory=dict)
    lines: dict[tuple[str, str, str], int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline format version {data.get('version')!r}"
            )
        baseline = cls()
        for item in data.get("findings", []):
            key = (item["path"], item["rule"], item["message"])
            baseline.entries[key] = baseline.entries.get(key, 0) + int(
                item.get("count", 1)
            )
            if "justification" in item:
                baseline.justifications[key] = item["justification"]
            if "line" in item:
                baseline.lines[key] = int(item["line"])
        return baseline

    @classmethod
    def from_findings(
        cls, findings: list[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        baseline = cls()
        for f in findings:
            key = f.key()
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
            baseline.lines.setdefault(key, f.line)
            if previous is not None and key in previous.justifications:
                baseline.justifications[key] = previous.justifications[key]
        return baseline

    def save(self, path: Path) -> None:
        findings = []
        for key in sorted(self.entries):
            fpath, rule, message = key
            item: dict[str, object] = {
                "path": fpath,
                "rule": rule,
                "message": message,
            }
            if self.entries[key] != 1:
                item["count"] = self.entries[key]
            if key in self.lines:
                item["line"] = self.lines[key]
            if key in self.justifications:
                item["justification"] = self.justifications[key]
            findings.append(item)
        payload = {"version": _FORMAT_VERSION, "findings": findings}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[tuple[str, str, str]]]:
    """Split findings into (new, grandfathered) and report stale entries.

    Stale entries are baseline lines whose finding no longer occurs —
    a nudge to prune the file (``--write-baseline`` does it).
    """
    budget = dict(baseline.entries)
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        key = f.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            old.append(f)
        else:
            new.append(f)
    stale = sorted(key for key, remaining in budget.items() if remaining > 0)
    return new, old, stale
