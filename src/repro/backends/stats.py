"""Backend-neutral cut-statistics containers and columnar kernels.

:class:`CutStats` is the stacked per-interval answer every causality
backend produces for a batched cut fill — the complete per-interval
state the vectorized relation conditions consume.  The segmented
gather-and-reduce kernel :func:`_stats_from_extrema` and its raw-array
entry points (:func:`cut_stats_from_arrays`,
:func:`cut_stats_from_extrema`) operate on *columnar clock matrices*
and therefore belong to the vector-clock substrate, but they are kept
here — below :mod:`repro.core` — so both the in-process
:class:`~repro.backends.vector.VectorClockBackend` and the
shared-memory parallel workers (which hold raw matrices and no
:class:`~repro.events.poset.Execution`) can share one implementation.

Historically these lived in :mod:`repro.core.cuts`, which still
re-exports them for compatibility.
"""

from __future__ import annotations

# repro: hot, dtype-strict

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..events.event import EventId

if TYPE_CHECKING:
    from ..nonatomic.event import NonatomicEvent

__all__ = [
    "CutStats",
    "flatten_extrema",
    "cut_stats_from_arrays",
    "cut_stats_from_extrema",
]


@dataclass(frozen=True, slots=True)
class CutStats:
    """Stacked per-interval cut and extremal vectors for k intervals.

    Six read-only ``(k, P)`` int64 matrices, rows aligned with the
    interval order they were built from: the four Table-2 cut
    timestamps plus the per-node first/last component indices (0
    encoding "node not in ``N_X``").  This is the complete per-interval
    state the vectorized relation conditions consume — both the
    all-pairs kernel (:mod:`repro.core.pairwise`) and the per-pair
    gather path of the parallel executor.
    """

    c1: np.ndarray  # T(∩⇓X)
    c2: np.ndarray  # T(∪⇓X)
    c3: np.ndarray  # T(∩⇑X)
    c4: np.ndarray  # T(∪⇑X)
    first: np.ndarray
    last: np.ndarray

    def __len__(self) -> int:
        return self.c1.shape[0]


def flatten_extrema(
    intervals: "Sequence[NonatomicEvent]",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten ``intervals``' per-node extremal events, interval-major.

    Returns ``(nodes, first_idx, last_idx, counts)`` — the exact input
    shape of the segmented kernel :func:`_stats_from_extrema`, with
    ``counts[i]`` entries for interval ``i``.  This is the shared front
    half of every backend's batched ``cut_stats`` entry point (the
    vector backend follows it with dense-table gathers, the
    reachability backend with closure-row reconstruction), kept here so
    the flattening layout cannot drift between backends.
    """
    k = len(intervals)
    counts = np.fromiter((iv.width for iv in intervals), np.intp, count=k)
    total = int(counts.sum())
    nodes = np.empty(total, dtype=np.int64)
    first_idx = np.empty(total, dtype=np.int64)
    last_idx = np.empty(total, dtype=np.int64)
    pos = 0
    for iv in intervals:
        for node, j in iv.first_ids():
            nodes[pos] = node
            first_idx[pos] = j
            pos += 1
    pos = 0
    for iv in intervals:
        for _node, j in iv.last_ids():
            last_idx[pos] = j
            pos += 1
    return nodes, first_idx, last_idx, counts


def _stats_from_extrema(
    fwd: np.ndarray,
    rev: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    nodes: np.ndarray,
    first_idx: np.ndarray,
    last_idx: np.ndarray,
    counts: np.ndarray,
) -> CutStats:
    """The one-pass columnar cut fill.

    ``nodes``/``first_idx``/``last_idx`` are the flattened per-node
    extremal events of all intervals (interval-major, ``counts[i]``
    entries for interval ``i``); ``fwd``/``rev`` are the columnar clock
    matrices and ``offsets`` the node-major row offsets.  All four
    Table-2 cut vectors for every interval come out of four gathers and
    four segmented min/max reductions — no per-interval Python loop.
    """
    k = len(counts)
    num_nodes = fwd.shape[1]
    if k == 0:
        empty = np.zeros((0, num_nodes), dtype=np.int64)
        return CutStats(empty, empty, empty, empty, empty, empty)
    starts = np.zeros(k, dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])
    fi = offsets[nodes] + first_idx - 1
    li = offsets[nodes] + last_idx - 1
    beyond = lengths.astype(np.int64) + 1  # T(e↑) = k_i + 1 - T^R(e)
    c1 = np.minimum.reduceat(fwd[fi], starts, axis=0).astype(np.int64)
    c2 = np.maximum.reduceat(fwd[li], starts, axis=0).astype(np.int64)
    c3 = beyond - np.maximum.reduceat(rev[fi], starts, axis=0)
    c4 = beyond - np.minimum.reduceat(rev[li], starts, axis=0)
    first = np.zeros((k, num_nodes), dtype=np.int64)
    last = np.zeros((k, num_nodes), dtype=np.int64)
    row_of = np.repeat(np.arange(k, dtype=np.intp), counts)
    first[row_of, nodes] = first_idx
    last[row_of, nodes] = last_idx
    for mat in (c1, c2, c3, c4, first, last):
        mat.setflags(write=False)
    return CutStats(c1, c2, c3, c4, first, last)


def cut_stats_from_arrays(
    fwd: np.ndarray,
    rev: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    id_groups: Sequence[Sequence[EventId]],
) -> CutStats:
    """Batched cut fill over raw columnar arrays and raw id groups.

    The substrate-only entry point used by
    :mod:`repro.core.parallel` workers, which hold the shared-memory
    clock matrices but no :class:`~repro.events.poset.Execution`.
    Per-node extremal events are derived from each id group here.
    """
    nodes_l: list[int] = []
    first_l: list[int] = []
    last_l: list[int] = []
    counts = np.empty(len(id_groups), dtype=np.intp)
    for g, ids in enumerate(id_groups):
        first: dict[int, int] = {}
        last: dict[int, int] = {}
        for node, idx in ids:
            if node not in first or idx < first[node]:
                first[node] = idx
            if idx > last.get(node, 0):
                last[node] = idx
        counts[g] = len(first)
        for node in sorted(first):
            nodes_l.append(node)
            first_l.append(first[node])
            last_l.append(last[node])
    return _stats_from_extrema(
        fwd, rev,
        np.asarray(offsets, dtype=np.int64),
        np.asarray(lengths, dtype=np.int64),
        np.asarray(nodes_l, dtype=np.int64),
        np.asarray(first_l, dtype=np.int64),
        np.asarray(last_l, dtype=np.int64),
        counts,
    )


def cut_stats_from_extrema(
    fwd: np.ndarray,
    rev: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    extrema: Sequence[tuple[Sequence[int], Sequence[int], Sequence[int]]],
) -> CutStats:
    """Batched cut fill over raw arrays and precomputed extrema.

    ``extrema[i]`` is ``(nodes, first_indices, last_indices)`` for
    interval ``i`` — exactly the per-node extremal encoding
    :class:`~repro.nonatomic.event.NonatomicEvent` precomputes, which
    the parallel executor ships to workers instead of full component
    id sets (an interval's wire size is then ``O(|N_X|)``, not
    ``O(|X|)``).
    """
    counts = np.fromiter(
        (len(nodes) for nodes, _f, _l in extrema), np.intp, count=len(extrema)
    )
    nodes = np.fromiter(
        (n for ns, _f, _l in extrema for n in ns), np.int64, count=counts.sum()
    )
    first_idx = np.fromiter(
        (j for _ns, fs, _l in extrema for j in fs), np.int64, count=counts.sum()
    )
    last_idx = np.fromiter(
        (j for _ns, _f, ls in extrema for j in ls), np.int64, count=counts.sum()
    )
    return _stats_from_extrema(
        fwd, rev,
        np.asarray(offsets, dtype=np.int64),
        np.asarray(lengths, dtype=np.int64),
        nodes, first_idx, last_idx, counts,
    )
