"""Pluggable causality backends.

One protocol — :class:`~repro.backends.base.CausalityBackend` — and two
encodings of the causal order ``≺``:

* ``vector`` (:class:`~repro.backends.vector.VectorClockBackend`):
  the columnar vector-clock substrate, default;
* ``reachability``
  (:class:`~repro.backends.reachability.ReachabilityBackend`):
  breakpoint-compressed transitive reachability, no dense matrices.

Select per call site (``AnalysisContext(ex, backend="reachability")``,
``--backend`` on the CLI) or process-wide via the ``REPRO_BACKEND``
environment variable.  :mod:`repro.backends.reduction` provides the
commutativity-based trace-coarsening preprocessing pass.

Layering: this package sits between the events substrate and the
evaluation engines (``events < nonatomic < backends < core``); nothing
here imports :mod:`repro.core`.
"""

# repro: dtype-strict

from .base import (
    BACKENDS,
    CausalityBackend,
    StreamingClockTable,
    default_backend_name,
    make_backend,
    make_streaming_table,
    register_backend,
)
from .reachability import ReachabilityBackend
from .reduction import CommutativityRules, TraceReduction, reduce_trace
from .stats import CutStats, cut_stats_from_arrays, cut_stats_from_extrema
from .vector import VectorClockBackend, vector_cut_stats

__all__ = [
    "BACKENDS",
    "CausalityBackend",
    "CommutativityRules",
    "CutStats",
    "ReachabilityBackend",
    "StreamingClockTable",
    "TraceReduction",
    "VectorClockBackend",
    "cut_stats_from_arrays",
    "cut_stats_from_extrema",
    "default_backend_name",
    "make_backend",
    "make_streaming_table",
    "reduce_trace",
    "register_backend",
    "vector_cut_stats",
]
