"""Commutativity-based trace reduction (event coarsening).

Following the commutativity-closure idea of "Coarser Equivalences for
Causal Concurrency", maximal runs of *adjacent, same-node, internal*
events whose labels commute are merged into a single coarser internal
event before any analysis runs.  Because a run contains no send or
receive, every member has **identical causal relations to every event
outside the run** — sends later on the node are the common successors,
receives earlier on the node the common predecessors — so the quotient
preserves ``≼`` exactly and, with it, all 40 Table-1 relation verdicts
for label-selected nonatomic events (property-tested in
``tests/test_backends.py``).

Merging is label-homogeneous (optionally absorbing unlabeled
neighbours), so an interval selected by label in the original trace
maps to the interval selected by the same label in the reduced trace,
and disjoint label-selected intervals stay disjoint.

Why this is sound (sketch; THEORY.md §8 has the full argument): the
relations R1–R4 and their 40 refinements are boolean combinations of
``≼``-statements between interval members quantified ∀/∃.  The quotient
map sends each member to its run; runs are causal-equivalence classes
with respect to events outside themselves, so every quantified
statement evaluates identically pre and post reduction.  Sends and
receives — the only events with cross-node edges — are never merged.
"""

from __future__ import annotations

# repro: dtype-strict

from dataclasses import dataclass, field

from ..events.event import Event, EventId, EventKind
from ..events.trace import Message, Trace

__all__ = ["CommutativityRules", "TraceReduction", "reduce_trace"]


@dataclass(frozen=True, slots=True)
class CommutativityRules:
    """Which adjacent same-node internal events commute.

    Parameters
    ----------
    commuting_labels:
        Labels allowed to participate in merging; None means every
        label commutes with itself.  Application scenarios supply the
        set of labels whose repeated local steps are order-insensitive
        (e.g. idempotent status updates), keeping semantically ordered
        labels atomic.
    absorb_unlabeled:
        Whether unlabeled internal events merge — with each other and
        into an adjacent labeled run.  Sound because run members are
        causally equivalent to the outside regardless of label; the
        merged event carries the run's (unique non-None) label.
    """

    commuting_labels: "frozenset[str] | None" = None
    absorb_unlabeled: bool = True

    def mergeable(self, ev: Event) -> bool:
        """True if ``ev`` may belong to a merged run at all."""
        if ev.kind is not EventKind.INTERNAL:
            return False
        if ev.label is None:
            return self.absorb_unlabeled
        return self.commuting_labels is None or ev.label in self.commuting_labels

    def joins(self, run_label: "str | None", ev: Event) -> bool:
        """True if ``ev`` extends a run whose label so far is
        ``run_label`` (None: only unlabeled members yet)."""
        if not self.mergeable(ev):
            return False
        if ev.label is None or run_label is None:
            return True
        return ev.label == run_label


@dataclass(frozen=True, slots=True)
class TraceReduction:
    """The result of :func:`reduce_trace`.

    Attributes
    ----------
    original, trace:
        The input trace and its reduced quotient.
    event_map:
        Original event id → reduced event id (total over real events).
    groups:
        Reduced event id → the ordered original member ids.
    """

    original: Trace
    trace: Trace
    event_map: dict[EventId, EventId] = field(repr=False)
    groups: dict[EventId, tuple[EventId, ...]] = field(repr=False)

    @property
    def original_events(self) -> int:
        """``|E|`` of the input trace."""
        return self.original.total_events

    @property
    def reduced_events(self) -> int:
        """``|E|`` of the reduced trace."""
        return self.trace.total_events

    @property
    def ratio(self) -> float:
        """Fraction of events removed (0.0 = nothing merged)."""
        total = self.original_events
        return 1.0 - self.reduced_events / total if total else 0.0

    def map_ids(self, ids: "list[EventId] | tuple[EventId, ...] | frozenset[EventId]") -> list[EventId]:
        """Map original event ids to sorted, de-duplicated reduced ids."""
        return sorted({self.event_map[eid] for eid in ids})


def _flush(
    run: list[Event],
    run_label: "str | None",
    out: list[Event],
    event_map: dict[EventId, EventId],
    groups: dict[EventId, tuple[EventId, ...]],
) -> None:
    """Emit the pending run as one reduced event (no-op if empty)."""
    if not run:
        return
    idx = len(out) + 1
    rid = (run[0].node, idx)
    members = tuple(ev.eid for ev in run)
    if len(run) == 1:
        ev = run[0]
        out.append(
            Event(node=ev.node, index=idx, kind=ev.kind,
                  label=ev.label, time=ev.time, payload=ev.payload)
        )
    else:
        out.append(
            Event(node=run[0].node, index=idx, kind=EventKind.INTERNAL,
                  label=run_label, time=run[-1].time, payload=None)
        )
    for mid in members:
        event_map[mid] = rid
    groups[rid] = members
    run.clear()


def _reduce_node(
    events: "tuple[Event, ...]",
    rules: CommutativityRules,
    event_map: dict[EventId, EventId],
    groups: dict[EventId, tuple[EventId, ...]],
) -> list[Event]:
    """One node's local order, runs merged (see :func:`reduce_trace`)."""
    out: list[Event] = []
    run: list[Event] = []
    run_label: "str | None" = None
    for ev in events:
        if rules.mergeable(ev):
            if run and not rules.joins(run_label, ev):
                _flush(run, run_label, out, event_map, groups)
                run_label = None
            run.append(ev)
            if ev.label is not None:
                run_label = ev.label
        else:
            _flush(run, run_label, out, event_map, groups)
            run_label = None
            run.append(ev)
            _flush(run, ev.label, out, event_map, groups)
    _flush(run, run_label, out, event_map, groups)
    return out


def reduce_trace(
    trace: Trace, rules: "CommutativityRules | None" = None
) -> TraceReduction:
    """Merge commuting adjacent same-node internal events.

    Walks each node's local order once, growing label-homogeneous runs
    of mergeable internal events; every send, receive, or
    non-commuting event flushes the current run and stays a singleton.
    A merged event is ``INTERNAL`` with the run's label and the *last*
    member's physical time (the coarse activity's completion instant).

    Returns a :class:`TraceReduction`; cost is ``O(|E| + |M|)``.
    """
    if rules is None:
        rules = CommutativityRules()
    event_map: dict[EventId, EventId] = {}
    groups: dict[EventId, tuple[EventId, ...]] = {}
    new_events: list[list[Event]] = [
        _reduce_node(trace.events_of(node), rules, event_map, groups)
        for node in range(trace.num_nodes)
    ]
    messages = [
        Message(send=event_map[m.send], recv=event_map[m.recv])
        for m in trace.messages
    ]
    return TraceReduction(
        original=trace,
        trace=Trace(new_events, messages),
        event_map=event_map,
        groups=groups,
    )
