"""Transitive reachability over breakpoint-compressed step functions.

The vector-clock substrate materialises two dense ``(|E|, |P|)``
matrices.  On *sparse-communication* traces that is mostly redundant: a
component ``T((n, j))[m]`` (``m ≠ n``) only changes at the receive
events of node ``n`` whose transitive past reaches deeper into node
``m`` — between receives it is constant in ``j``.  Following the
interval/summary encodings of graph reachability ("Causality is
Graphically Simple"), :class:`ReachabilityBackend` stores, per ordered
node pair ``(n, m)``, only the *breakpoints* of that step function:
ascending local indices where the value increases, with the value at
each.  The own component needs no storage at all
(``T((n, j))[n] = j``).

Queries bisect the breakpoint arrays:

* ``a = (m, i) ≼ b = (n, j)`` ⟺ value of ``(n, ·)[m]`` at ``j`` is
  ``≥ i`` — one ``O(log B)`` bisection (``B`` = breakpoints);
* timestamp-row reconstruction for the cut fills is one vectorized
  ``searchsorted`` per (node, column) over all queried indices of that
  node.

The *reverse* structure (Definition 14) is the same construction run on
the time-reversed trace; both directions are built lazily and
independently (at most one ``O(|E| + |M|·|P|)`` pass each per execution
version), so past-only consumers never pay for the future side —
matching the laziness contract of the vector substrate.

Total storage is ``O(|P|² + Σ breakpoints)`` with at most one
breakpoint per (receive, column): ``O(|P|² + |M|·|P|)`` worst case,
``≪ |E|·|P|`` whenever messages are rare — exactly the regime the
``backend_sparse`` benchmark section measures.
"""

from __future__ import annotations

# repro: dtype-strict

from bisect import bisect_right
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..events.clocks import CyclicTraceError
from ..events.event import EventId
from .base import CausalityBackend, register_backend
from .stats import CutStats, flatten_extrema

if TYPE_CHECKING:
    from ..events.poset import Execution
    from ..nonatomic.event import NonatomicEvent

__all__ = ["ReachabilityBackend"]


class _SparseClosure:
    """Breakpoint-compressed timestamps for one direction.

    ``bp[n]`` maps a column ``m ≠ n`` to a pair of aligned int64
    arrays ``(idx, val)``: ascending local indices on node ``n`` where
    component ``m`` of the timestamp increases, and the value from that
    index on.  Columns that never advance are simply absent (their
    component is 0 everywhere), so storage and iteration scale with the
    breakpoints that exist, not with ``|P|²``.  Component ``n`` of
    ``T((n, j))`` is ``j`` implicitly.
    """

    __slots__ = ("num_nodes", "lengths", "bp")

    def __init__(
        self,
        lengths: Sequence[int],
        bp: list[dict[int, tuple[np.ndarray, np.ndarray]]],
    ) -> None:
        self.num_nodes = len(lengths)
        self.lengths = tuple(lengths)
        self.bp = bp

    # ------------------------------------------------------------------
    def component(self, node: int, idx: int, col: int) -> int:
        """``T((node, idx))[col]`` — one bisection."""
        if col == node:
            return idx
        ent = self.bp[node].get(col)
        if ent is None:
            return 0
        pos = bisect_right(ent[0], idx) - 1
        return int(ent[1][pos]) if pos >= 0 else 0

    def rows(self, node: int, idxs: np.ndarray) -> np.ndarray:
        """Timestamp rows of events ``(node, idxs[i])`` as ``(k, P)``
        int64 — one vectorized ``searchsorted`` per *stored* column."""
        out = np.zeros((len(idxs), self.num_nodes), dtype=np.int64)
        out[:, node] = idxs
        for col, (bi, bv) in self.bp[node].items():
            pos = np.searchsorted(bi, idxs, side="right") - 1
            hit = pos >= 0
            out[hit, col] = bv[pos[hit]]
        return out

    @property
    def num_breakpoints(self) -> int:
        """Total stored breakpoints (compression diagnostic)."""
        return sum(
            int(bi.size) for per_node in self.bp for bi, _ in per_node.values()
        )


def _build_closure(
    lengths: Sequence[int],
    cross_deps: Mapping[EventId, tuple[EventId, ...]],
) -> _SparseClosure:
    """One worklist topological pass recording breakpoints only.

    Mirrors the scheduling of the dense clock pass
    (:func:`repro.events.clocks._run_clock_pass`) but keeps a single
    rolling row per node: events without cross dependencies cost O(1)
    (only the implicit own component moves), and each dependency-bearing
    event folds its predecessors' reconstructed rows and records a
    breakpoint per column that actually advanced.
    """
    num_nodes = len(lengths)
    # During the build, breakpoints live in per-node dicts of Python
    # lists (appended in ascending index order by construction) and are
    # frozen to arrays at the end; only columns that actually advance
    # ever exist, so nothing here scales with |P|².
    bp_l: list[dict[int, tuple[list[int], list[int]]]] = [
        {} for _ in range(num_nodes)
    ]
    # cur[n][m] = component m of the latest processed event of node n.
    cur = np.zeros((num_nodes, num_nodes), dtype=np.int64)

    def row_at(node: int, idx: int) -> np.ndarray:
        row = np.zeros(num_nodes, dtype=np.int64)
        row[node] = idx
        for col, (il, vl) in bp_l[node].items():
            pos = bisect_right(il, idx) - 1
            if pos >= 0:
                row[col] = vl[pos]
        return row

    done = [0] * num_nodes
    waiters: dict[EventId, list[int]] = {}
    stack = list(range(num_nodes))
    processed = 0
    total = sum(lengths)

    while stack:
        node = stack.pop()
        k = lengths[node]
        while done[node] < k:
            idx = done[node] + 1
            eid = (node, idx)
            deps = cross_deps.get(eid, ())
            blocked_on = None
            for dep_node, dep_idx in deps:
                if done[dep_node] < dep_idx:
                    blocked_on = (dep_node, dep_idx)
                    break
            if blocked_on is not None:
                waiters.setdefault(blocked_on, []).append(node)
                break
            if deps:
                row = cur[node]
                for dep_node, dep_idx in deps:
                    np.maximum(row, row_at(dep_node, dep_idx), out=row)
                per = bp_l[node]
                for col in map(int, np.flatnonzero(row)):
                    if col == node:
                        continue
                    v = int(row[col])
                    ent = per.get(col)
                    if ent is None:
                        per[col] = ([idx], [v])
                    elif v > ent[1][-1]:
                        ent[0].append(idx)
                        ent[1].append(v)
            done[node] = idx
            processed += 1
            woken = waiters.pop(eid, None)
            if woken:
                stack.extend(woken)

    if processed != total:
        stuck = [
            (i, done[i] + 1) for i in range(num_nodes) if done[i] < lengths[i]
        ]
        raise CyclicTraceError(
            f"trace has a causal cycle; events stuck at {stuck[:5]}"
        )
    bp = [
        {
            col: (
                np.asarray(il, dtype=np.int64),
                np.asarray(vl, dtype=np.int64),
            )
            for col, (il, vl) in per.items()
        }
        for per in bp_l
    ]
    return _SparseClosure(lengths, bp)


@register_backend
class ReachabilityBackend(CausalityBackend):
    """Causality queries via breakpoint-compressed reachability.

    Answers every protocol query without dense ``(|E|, |P|)`` matrices
    and without the execution's own reverse clock pass — the forward
    and reverse sparse closures are built directly from the trace,
    lazily per direction, keyed on the execution version.
    """

    __slots__ = ("_version", "_fwd", "_rev")

    name = "reachability"

    # Version-discipline contract enforced by `python -m repro lint`
    # (REP001/REP005); the decorator form lives in repro.core.versioning,
    # which this layer cannot import (core depends on backends).
    _REPRO_VERSIONED = {
        "version": "_version",
        "state": (),
        "caches": ("_fwd", "_rev"),
        "guards": ("invalidate", "_forward", "_reverse"),
    }

    def __init__(self, execution: "Execution") -> None:
        super().__init__(execution)
        self._version = execution.version
        self._fwd: _SparseClosure | None = None
        self._rev: _SparseClosure | None = None

    # ------------------------------------------------------------------
    # version discipline
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop both closures and re-arm against the current version."""
        self._fwd = None
        self._rev = None
        self._version = self._execution.version

    def _forward(self) -> _SparseClosure:
        """The forward closure, (re)built lazily per execution version."""
        if self._version != self._execution.version:
            self.invalidate()
        fwd = self._fwd
        if fwd is None:
            trace = self._execution.trace
            deps: dict[EventId, tuple[EventId, ...]] = {}
            for msg in trace.messages:
                deps[msg.recv] = deps.get(msg.recv, ()) + (msg.send,)
            fwd = self._fwd = _build_closure(self._execution.lengths, deps)
        return fwd

    def _reverse(self) -> _SparseClosure:
        """The reverse closure: the forward construction on the
        time-reversed trace (built lazily, independently of forward)."""
        if self._version != self._execution.version:
            self.invalidate()
        rev = self._rev
        if rev is None:
            trace = self._execution.trace
            lengths = self._execution.lengths

            def flip(eid: EventId) -> EventId:
                node, idx = eid
                return (node, lengths[node] - idx + 1)

            deps: dict[EventId, tuple[EventId, ...]] = {}
            for msg in trace.messages:
                r_send = flip(msg.send)
                deps[r_send] = deps.get(r_send, ()) + (flip(msg.recv),)
            rev = self._rev = _build_closure(lengths, deps)
        return rev

    # ------------------------------------------------------------------
    # pairwise order
    # ------------------------------------------------------------------
    def leq(self, a: EventId, b: EventId) -> bool:
        """``a ≼ b`` via one bisection on ``b``'s step function."""
        if a == b:
            return True
        a_node, a_idx = a
        b_node, b_idx = b
        if a_node == b_node:
            return a_idx <= b_idx
        return self._forward().component(b_node, b_idx, a_node) >= a_idx

    # ------------------------------------------------------------------
    # timestamp-row queries
    # ------------------------------------------------------------------
    def _rows(self, closure: _SparseClosure, ids: Sequence[EventId],
              flip: bool) -> np.ndarray:
        """Stacked rows for arbitrary ids, grouped by node so each
        (node, column) pair costs one vectorized bisection."""
        arr = np.asarray(ids, dtype=np.int64).reshape(-1, 2)
        out = np.zeros((arr.shape[0], self.num_nodes), dtype=np.int64)
        if flip:
            lengths = np.asarray(self._execution.lengths, dtype=np.int64)
            arr = arr.copy()
            arr[:, 1] = lengths[arr[:, 0]] - arr[:, 1] + 1
        for node in np.unique(arr[:, 0]):
            sel = np.flatnonzero(arr[:, 0] == node)
            out[sel] = closure.rows(int(node), arr[sel, 1])
        return out

    def forward_rows(self, ids: Sequence[EventId]) -> np.ndarray:
        """Stacked ``T(e)`` rows reconstructed from the forward closure."""
        return self._rows(self._forward(), ids, flip=False)

    def reverse_rows(self, ids: Sequence[EventId]) -> np.ndarray:
        """Stacked ``T^R(e)`` rows: the reverse closure is indexed by
        time-reversed local indices ``k_n - j + 1``."""
        return self._rows(self._reverse(), ids, flip=True)

    # ------------------------------------------------------------------
    # batched cut fill
    # ------------------------------------------------------------------
    def cut_stats(self, intervals: Sequence["NonatomicEvent"]) -> CutStats:
        """All four Table-2 cuts via extremal-row reconstruction.

        Reconstructs the forward and reverse timestamp rows of every
        per-node extremal event (grouped by node, one bisection batch
        per (node, column)), then reuses the segmented-reduction kernel
        of the columnar fill on the *gathered* rows — the dense
        matrices are never materialised.
        """
        ex = self._execution
        for iv in intervals:
            if iv.execution is not ex:
                raise ValueError("interval does not belong to this execution")
        nodes, first_idx, last_idx, counts = flatten_extrema(intervals)
        total = int(counts.sum())
        extremal_ids = np.empty((2 * total, 2), dtype=np.int64)
        extremal_ids[:total, 0] = nodes
        extremal_ids[:total, 1] = first_idx
        extremal_ids[total:, 0] = nodes
        extremal_ids[total:, 1] = last_idx
        fwd_rows = self.forward_rows(extremal_ids)
        rev_rows = self.reverse_rows(extremal_ids)
        lengths = np.asarray(ex.lengths, dtype=np.int64)
        return self._stats_from_rows(
            fwd_rows[:total], fwd_rows[total:],
            rev_rows[:total], rev_rows[total:],
            nodes, first_idx, last_idx, counts, lengths,
        )

    @staticmethod
    def _stats_from_rows(
        fwd_first: np.ndarray,
        fwd_last: np.ndarray,
        rev_first: np.ndarray,
        rev_last: np.ndarray,
        nodes: np.ndarray,
        first_idx: np.ndarray,
        last_idx: np.ndarray,
        counts: np.ndarray,
        lengths: np.ndarray,
    ) -> CutStats:
        """Segmented reductions over pre-gathered extremal rows."""
        k = len(counts)
        num_nodes = lengths.shape[0]
        if k == 0:
            empty = np.zeros((0, num_nodes), dtype=np.int64)
            return CutStats(empty, empty, empty, empty, empty, empty)
        starts = np.zeros(k, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        beyond = lengths + 1
        c1 = np.minimum.reduceat(fwd_first, starts, axis=0)
        c2 = np.maximum.reduceat(fwd_last, starts, axis=0)
        c3 = beyond - np.maximum.reduceat(rev_first, starts, axis=0)
        c4 = beyond - np.minimum.reduceat(rev_last, starts, axis=0)
        first = np.zeros((k, num_nodes), dtype=np.int64)
        last = np.zeros((k, num_nodes), dtype=np.int64)
        row_of = np.repeat(np.arange(k, dtype=np.intp), counts)
        first[row_of, nodes] = first_idx
        last[row_of, nodes] = last_idx
        for mat in (c1, c2, c3, c4, first, last):
            mat.setflags(write=False)
        return CutStats(c1, c2, c3, c4, first, last)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def forward_breakpoints(self) -> int:
        """Stored forward breakpoints (builds the closure if needed)."""
        return self._forward().num_breakpoints
