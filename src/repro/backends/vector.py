"""The default causality backend: columnar vector clocks.

:class:`VectorClockBackend` is a thin adapter over the columnar clock
substrate the :class:`~repro.events.poset.Execution` already maintains
(forward table eager, reverse table lazy), so it adds no storage of its
own and inherits the substrate's version discipline for free —
:meth:`Execution.extend` advances the forward table incrementally and
the reverse table rebuilds lazily.

:func:`vector_cut_stats` is the batched Table-2 cut fill over the dense
matrices (four gathers + four segmented reductions); it is the
implementation behind the long-standing
:func:`repro.core.cuts.cut_stats` entry point, which now delegates here.
"""

from __future__ import annotations

# repro: hot, dtype-strict

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..events.event import EventId
from .base import CausalityBackend, register_backend
from .stats import CutStats, _stats_from_extrema, flatten_extrema

if TYPE_CHECKING:
    from ..events.poset import Execution
    from ..nonatomic.event import NonatomicEvent

__all__ = ["VectorClockBackend", "vector_cut_stats"]


def vector_cut_stats(
    execution: "Execution", intervals: Sequence["NonatomicEvent"]
) -> CutStats:
    """All four Table-2 cuts (plus extremal vectors) for a whole
    interval set in one vectorized pass over the columnar clock tables.

    Row ``i`` equals ``cuts_of(intervals[i])``'s vectors — the
    equivalence is property-tested — but the fill is a single
    gather-and-reduce over the ``(|E|, |P|)`` matrices instead of a
    per-interval Python fold, which is what the ``≥5x`` cut-fill
    speedup of ``benchmarks/bench_parallel_batch.py`` measures.
    """
    for iv in intervals:
        if iv.execution is not execution:
            raise ValueError("interval does not belong to this execution")
    fwd = execution.forward_table
    rev = execution.reverse_table
    nodes, first_idx, last_idx, counts = flatten_extrema(intervals)
    return _stats_from_extrema(
        fwd.data, rev.data, fwd.offsets, fwd.lengths,
        nodes, first_idx, last_idx, counts,
    )


@register_backend
class VectorClockBackend(CausalityBackend):
    """Causality queries answered by the columnar clock tables.

    Stateless beyond the execution reference: both tables live on the
    execution (version-disciplined there), so :meth:`invalidate` is a
    no-op and every query reads the current structures directly.
    """

    __slots__ = ()

    name = "vector"

    def invalidate(self) -> None:
        """No-op: the clock tables are owned (and versioned) by the
        execution itself."""

    # ------------------------------------------------------------------
    # pairwise order
    # ------------------------------------------------------------------
    def leq(self, a: EventId, b: EventId) -> bool:
        """``a ≼ b`` via the canonical O(1) clock-component test."""
        return self._execution.leq(a, b)

    # ------------------------------------------------------------------
    # timestamp-row queries
    # ------------------------------------------------------------------
    def forward_rows(self, ids: Sequence[EventId]) -> np.ndarray:
        """Stacked ``T(e)`` rows — one gather from the forward table."""
        table = self._execution.forward_table
        rows = table.data[table.flat_indices(ids)].astype(np.int64)
        rows.setflags(write=False)
        return rows

    def reverse_rows(self, ids: Sequence[EventId]) -> np.ndarray:
        """Stacked ``T^R(e)`` rows — one gather from the reverse table
        (first use triggers the execution's lazy reverse pass)."""
        table = self._execution.reverse_table
        rows = table.data[table.flat_indices(ids)].astype(np.int64)
        rows.setflags(write=False)
        return rows

    # ------------------------------------------------------------------
    # batched cut fill
    # ------------------------------------------------------------------
    def cut_stats(self, intervals: Sequence["NonatomicEvent"]) -> CutStats:
        """Delegate to the columnar gather-and-reduce fill."""
        return vector_cut_stats(self._execution, intervals)
