"""The :class:`CausalityBackend` protocol and backend registry.

The paper's Table-1/Table-2 tests only ever consume the causal order
``≺`` through a handful of primitives: pairwise ``precedes`` /
``concurrent`` queries, per-event timestamp rows, and batched Table-2
cut fills over interval sets.  This module carves that contract out of
the ``Execution``/``ClockTable`` tangle as an explicit protocol so the
evaluation layers (:mod:`repro.core`, :mod:`repro.monitor`, the CLI)
can be retargeted onto *any* encoding of ``≺``:

* :class:`~repro.backends.vector.VectorClockBackend` — a thin adapter
  over the columnar clock substrate (the default);
* :class:`~repro.backends.reachability.ReachabilityBackend` — a
  breakpoint-compressed transitive-reachability encoding that answers
  the same queries without materialising ``(|E|, |P|)`` matrices.

Backends follow the repository-wide version discipline: all derived
structures are keyed on :attr:`Execution.version
<repro.events.poset.Execution.version>` and rebuilt (at most once per
version) after :meth:`Execution.extend` growth.

This module also owns the *streaming* seam: the online monitor obtains
its append-only clock storage through :func:`make_streaming_table`
(type :data:`StreamingClockTable`) instead of importing the clock
substrate directly — no engine above the events layer names
``ClockTable``/``GrowableClockTable`` anymore (enforced by
``tests/test_backends.py``).
"""

from __future__ import annotations

# repro: dtype-strict

import os
from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..events.clocks import (
    CLOCK_DTYPE,
    GrowableClockTable,
    clock_pass_counts,
    reset_clock_pass_counts,
)
from ..events.event import EventId
from .stats import CutStats

if TYPE_CHECKING:
    from ..events.poset import Execution
    from ..nonatomic.event import NonatomicEvent

__all__ = [
    "CLOCK_DTYPE",
    "BACKENDS",
    "CausalityBackend",
    "StreamingClockTable",
    "clock_pass_counts",
    "default_backend_name",
    "make_backend",
    "make_streaming_table",
    "register_backend",
    "reset_clock_pass_counts",
]

#: Environment variable naming the process-default backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Append-only forward-clock storage handed to streaming consumers.
#: An alias (not a subclass) so monitor code can type-annotate and
#: construct streaming storage without importing the clock substrate.
StreamingClockTable = GrowableClockTable


def make_streaming_table(num_nodes: int, capacity: int = 16) -> StreamingClockTable:
    """Append-only forward-clock storage for streaming ingestion.

    The online monitor's substrate factory: one capacity-doubling
    ``(cap_i, |P|)`` block per node, O(|P|) amortized appends, and a
    version-memoized zero-pass :meth:`snapshot
    <repro.events.clocks.GrowableClockTable.snapshot>` for finalisation.
    """
    return GrowableClockTable(num_nodes, capacity=capacity)


class CausalityBackend(ABC):
    """One encoding of the causal order ``≺`` over an execution.

    A backend owns four query families, each defined over *real*
    events (dummy ``⊥``/``⊤`` handling stays symbolic in
    :class:`~repro.events.poset.Execution`):

    * pairwise order: :meth:`leq` / :meth:`precedes` / :meth:`concurrent`;
    * extremal-vector queries: :meth:`forward_rows` / :meth:`reverse_rows`
      return stacked timestamp rows for arbitrary event ids;
    * scalar cut fills: :meth:`cut_vector` computes one Table-2 cut;
    * batched cut-stat fills: :meth:`cut_stats` fills all four cuts plus
      extremal indices for a whole interval set.

    Derived structures must be keyed on ``execution.version``; callers
    may invoke any query after :meth:`Execution.extend` and expect
    answers for the grown execution (rebuilds happen lazily, at most
    once per version per direction).
    """

    __slots__ = ("_execution",)

    #: Registry key; subclasses override.
    name = "abstract"

    def __init__(self, execution: "Execution") -> None:
        self._execution = execution

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def execution(self) -> "Execution":
        """The execution whose causal order this backend encodes."""
        return self._execution

    @property
    def num_nodes(self) -> int:
        """``|P|`` — the vector width."""
        return self._execution.num_nodes

    # ------------------------------------------------------------------
    # pairwise order
    # ------------------------------------------------------------------
    @abstractmethod
    def leq(self, a: EventId, b: EventId) -> bool:
        """``a ≼ b`` for real events ``a``, ``b``."""

    def precedes(self, a: EventId, b: EventId) -> bool:
        """``a ≺ b``: strict causal precedence (irreflexive)."""
        return a != b and self.leq(a, b)

    def concurrent(self, a: EventId, b: EventId) -> bool:
        """``a ∥ b``: neither ``a ≼ b`` nor ``b ≼ a``."""
        return not self.leq(a, b) and not self.leq(b, a)

    # ------------------------------------------------------------------
    # timestamp-row queries
    # ------------------------------------------------------------------
    @abstractmethod
    def forward_rows(self, ids: Sequence[EventId]) -> np.ndarray:
        """Stacked forward timestamps ``T(e)`` as a ``(k, P)`` int64
        array, row ``i`` for ``ids[i]``."""

    @abstractmethod
    def reverse_rows(self, ids: Sequence[EventId]) -> np.ndarray:
        """Stacked reverse timestamps ``T^R(e)`` as a ``(k, P)`` int64
        array, row ``i`` for ``ids[i]``."""

    # ------------------------------------------------------------------
    # cut fills
    # ------------------------------------------------------------------
    def cut_vector(self, x: "NonatomicEvent", which: str) -> np.ndarray:
        """One Table-2 cut timestamp of ``x`` as a read-only int64
        vector (``which`` in ``C1``/``C2``/``C3``/``C4``).

        Past cuts (C1/C2) must not force the reverse structure, so
        past-only consumers keep the laziness contract of the vector
        substrate under every backend.
        """
        if which == "C1":
            vec = self.forward_rows(x.first_ids()).min(axis=0)
        elif which == "C2":
            vec = self.forward_rows(x.last_ids()).max(axis=0)
        elif which in ("C3", "C4"):
            beyond = np.asarray(self._execution.lengths, dtype=np.int64) + 1
            if which == "C3":
                vec = beyond - self.reverse_rows(x.first_ids()).max(axis=0)
            else:
                vec = beyond - self.reverse_rows(x.last_ids()).min(axis=0)
        else:
            raise ValueError(f"unknown cut: {which!r}")
        vec = np.ascontiguousarray(vec, dtype=np.int64)
        vec.setflags(write=False)
        return vec

    @abstractmethod
    def cut_stats(self, intervals: Sequence["NonatomicEvent"]) -> CutStats:
        """All four Table-2 cuts plus extremal vectors for a whole
        interval set, rows aligned with the input order."""

    # ------------------------------------------------------------------
    # version discipline
    # ------------------------------------------------------------------
    @abstractmethod
    def invalidate(self) -> None:
        """Drop derived structures and re-arm against the current
        execution version."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self._execution!r})"


#: Registered backend implementations, keyed by :attr:`CausalityBackend.name`.
BACKENDS: dict[str, type[CausalityBackend]] = {}


def register_backend(cls: type[CausalityBackend]) -> type[CausalityBackend]:
    """Class decorator adding a backend to :data:`BACKENDS`."""
    BACKENDS[cls.name] = cls
    return cls


def _ensure_registered() -> None:
    # Import the bundled implementations for their registration side
    # effect; deferred to avoid a base <-> implementation import cycle.
    if "vector" not in BACKENDS:
        from . import reachability, vector  # noqa: F401


def default_backend_name() -> str:
    """The process-default backend name.

    Reads the ``REPRO_BACKEND`` environment variable (CI runs the whole
    tier-1 suite under ``REPRO_BACKEND=reachability``); defaults to
    ``"vector"``.
    """
    _ensure_registered()
    name = os.environ.get(BACKEND_ENV, "vector")
    if name not in BACKENDS:
        raise ValueError(
            f"unknown causality backend {name!r} (from ${BACKEND_ENV}); "
            f"available: {sorted(BACKENDS)}"
        )
    return name


def make_backend(
    name: "str | None", execution: "Execution"
) -> CausalityBackend:
    """Instantiate a causality backend over ``execution``.

    ``name`` is a :data:`BACKENDS` key, or None for the process default
    (see :func:`default_backend_name`).
    """
    _ensure_registered()
    if name is None:
        name = default_backend_name()
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown causality backend {name!r}; available: "
            f"{sorted(BACKENDS)}"
        ) from None
    return cls(execution)
