"""The lattice of consistent global states.

Section 2.1 notes that *"It is known from lattice theory that the set
of all cuts, denoted C, forms a lattice ordered by ⊂"*.  The cuts the
paper manipulates are per-node prefixes; the subset that is also
downward-closed under ``≺`` — no message received before it is sent —
are the **consistent global states** of Mattern, and they again form a
lattice under componentwise min/max.

This module provides that lattice as a first-class object: membership
tests, enabled advances, level-order traversal, counting, and meet/join
— the substrate for global predicate detection
(:mod:`repro.globalstates.detection`), which [11] demonstrates on the
air-defence application.

Consistency test used throughout: a cut vector ``c`` is consistent iff
for every node ``i`` with ``c[i] >= 1``, the forward clock of its
surface event is componentwise ``<= c`` — i.e. the surface's causal
past is inside the cut.  (Equivalent to the no-orphan-receive
formulation; ``O(|P|²)`` per test.)

The lattice is exponentially large in general (``∏(k_i + 1)`` upper
bound); the traversals below are level-order with memoisation and take
an optional ``limit`` guard so misuse fails loudly instead of hanging.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..core.cuts import Cut
from ..events.poset import Execution

__all__ = ["GlobalStateLattice", "StateVector"]

#: A consistent global state as a tuple of per-node prefix lengths.
StateVector = tuple[int, ...]


class GlobalStateLattice:
    """The lattice of consistent global states of one execution.

    Global states are represented as tuples ``c`` with
    ``0 <= c[i] <= k_i`` (real events only; the dummy ``⊤`` prefix adds
    nothing here since every real-complete state is already maximal).

    Parameters
    ----------
    execution:
        The analysed execution.
    limit:
        Safety cap on the number of states any full traversal may
        visit; :class:`RuntimeError` is raised beyond it.
    """

    def __init__(self, execution: Execution, limit: int = 200_000) -> None:
        self.execution = execution
        self.limit = int(limit)
        self._lengths = execution.lengths

    # ------------------------------------------------------------------
    # membership and structure
    # ------------------------------------------------------------------
    @property
    def bottom(self) -> StateVector:
        """The initial global state (only the ``⊥_i``)."""
        return tuple(0 for _ in self._lengths)

    @property
    def top(self) -> StateVector:
        """The final global state (every real event executed)."""
        return tuple(self._lengths)

    def is_consistent(self, state: StateVector) -> bool:
        """Is this prefix vector a consistent global state?"""
        ex = self.execution
        for i, c in enumerate(state):
            if not (0 <= c <= self._lengths[i]):
                return False
        for i, c in enumerate(state):
            if c == 0:
                continue
            clock = ex.clock((i, c))
            for j, need in enumerate(clock):
                if need > state[j]:
                    return False
        return True

    def enabled_advances(self, state: StateVector) -> list[int]:
        """Nodes whose next event can be appended consistently.

        Node ``i`` is enabled iff it has a next event whose causal past
        (beyond itself) is already inside the state — for a receive,
        its send has happened.
        """
        ex = self.execution
        out: list[int] = []
        for i, c in enumerate(state):
            nxt = c + 1
            if nxt > self._lengths[i]:
                continue
            clock = ex.clock((i, nxt))
            ok = True
            for j, need in enumerate(clock):
                if j != i and need > state[j]:
                    ok = False
                    break
            if ok:
                out.append(i)
        return out

    def successors(self, state: StateVector) -> list[StateVector]:
        """The consistent states one event beyond ``state``."""
        return [
            state[:i] + (state[i] + 1,) + state[i + 1 :]
            for i in self.enabled_advances(state)
        ]

    def meet(self, a: StateVector, b: StateVector) -> StateVector:
        """Greatest lower bound (componentwise min)."""
        return tuple(int(x) for x in np.minimum(a, b))

    def join(self, a: StateVector, b: StateVector) -> StateVector:
        """Least upper bound (componentwise max).

        The join/meet of consistent states is consistent — the lattice
        property the paper leans on (property-tested in the suite).
        """
        return tuple(int(x) for x in np.maximum(a, b))

    def to_cut(self, state: StateVector) -> Cut:
        """The state as a :class:`~repro.core.cuts.Cut`."""
        return Cut(self.execution, state)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def levels(self) -> Iterator[list[StateVector]]:
        """Level-order traversal: level t holds the consistent states
        with exactly t events.  The classic Cooper–Marzullo sweep."""
        current: set[StateVector] = {self.bottom}
        visited = 1
        while current:
            yield sorted(current)
            nxt: set[StateVector] = set()
            for state in current:
                for succ in self.successors(state):
                    if succ not in nxt:
                        nxt.add(succ)
                        visited += 1
                        if visited > self.limit:
                            raise RuntimeError(
                                f"lattice traversal exceeded limit="
                                f"{self.limit}; raise the cap or use the "
                                "conjunctive fast path"
                            )
            current = nxt

    def iter_states(self) -> Iterator[StateVector]:
        """All consistent global states, level by level."""
        for level in self.levels():
            yield from level

    def count(self) -> int:
        """Number of consistent global states (may be exponential)."""
        return sum(len(level) for level in self.levels())
