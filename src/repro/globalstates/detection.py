"""Global predicate detection: Possibly(φ) and Definitely(φ).

[11] demonstrates the relation family alongside *distributed predicate
specification* for a real-time air-defence system.  This module
implements the two classic detection modalities over the consistent
global-state lattice:

* ``Possibly(φ)`` — some consistent observation of the execution
  passes through a global state satisfying φ;
* ``Definitely(φ)`` — every consistent observation does.

Two engines are provided:

* the general Cooper–Marzullo level sweep
  (:func:`possibly`, :func:`definitely`) — works for any global-state
  predicate, cost proportional to the lattice size;
* the Garg–Waldecker fast path for **weak conjunctive predicates**
  (:func:`possibly_conjunctive`) — φ is a conjunction of per-node
  local predicates; the least solution state is found in
  ``O(|E| · |P|)`` using vector clocks, no lattice enumeration.

Local predicates are evaluated on *local states*: predicate
``p(node, index)`` refers to the state of ``node`` after its
``index``-th event (index 0 = initial state).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from ..events.poset import Execution
from .lattice import GlobalStateLattice, StateVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.context import AnalysisContext

__all__ = [
    "LocalPredicate",
    "GlobalPredicate",
    "possibly",
    "definitely",
    "possibly_conjunctive",
]

#: p(node, index) -> bool over a node's local state after ``index`` events.
LocalPredicate = Callable[[int, int], bool]

#: φ(state) -> bool over a consistent global state vector.
GlobalPredicate = Callable[[StateVector], bool]


def _as_execution(execution: "Execution | AnalysisContext") -> Execution:
    """Accept either a bare :class:`Execution` or an
    :class:`~repro.core.context.AnalysisContext` (detection only needs
    the forward-clock substrate, shared with the relation engines)."""
    from ..core.context import AnalysisContext

    if isinstance(execution, AnalysisContext):
        return execution.execution
    return execution


def possibly(
    execution: "Execution | AnalysisContext",
    predicate: GlobalPredicate,
    limit: int = 200_000,
) -> StateVector | None:
    """``Possibly(φ)``: the first (lowest-level) satisfying consistent
    global state, or None.

    Level-order sweep of the lattice; ``limit`` bounds the number of
    visited states (:class:`RuntimeError` beyond it).
    """
    lattice = GlobalStateLattice(_as_execution(execution), limit=limit)
    for level in lattice.levels():
        for state in level:
            if predicate(state):
                return state
    return None


def definitely(
    execution: "Execution | AnalysisContext",
    predicate: GlobalPredicate,
    limit: int = 200_000,
) -> bool:
    """``Definitely(φ)``: every observation passes through a satisfying
    state.

    Cooper–Marzullo: sweep levels keeping only the states reachable
    *without* satisfying φ; if that frontier dies out before the final
    state, φ was unavoidable.
    """
    lattice = GlobalStateLattice(_as_execution(execution), limit=limit)
    frontier: list[StateVector] = (
        [] if predicate(lattice.bottom) else [lattice.bottom]
    )
    if not frontier:
        return True
    top = lattice.top
    visited = 0
    while frontier:
        if any(state == top for state in frontier):
            return False  # a φ-avoiding observation reached the end
        nxt = set()
        for state in frontier:
            for succ in lattice.successors(state):
                if not predicate(succ):
                    nxt.add(succ)
                    visited += 1
                    if visited > limit:
                        raise RuntimeError(
                            f"definitely() exceeded limit={limit}"
                        )
        frontier = list(nxt)
    return True


def possibly_conjunctive(
    execution: "Execution | AnalysisContext",
    locals_: dict[int, LocalPredicate],
    limit: int | None = None,
) -> StateVector | None:
    """Garg–Waldecker detection of a weak conjunctive predicate.

    ``locals_`` maps each constrained node to its local predicate;
    unconstrained nodes may be in any state.  Returns the *least*
    consistent global state where every constrained node satisfies its
    predicate (with unconstrained components minimised), or None.

    Algorithm: keep one candidate local state per constrained node
    (the earliest satisfying one not yet eliminated); if candidate
    ``s_i`` happened-before candidate ``s_j`` 's *next* advance — i.e.
    the candidates are not pairwise concurrent-or-equal-cut-compatible
    — advance the one that is causally behind.  Linear in the trace.

    The returned state is verified consistent; the suite cross-checks
    against the lattice sweep on every generated instance.
    """
    ex = _as_execution(execution)
    lengths = ex.lengths
    nodes = sorted(locals_)
    if not nodes:
        return tuple(0 for _ in lengths)

    def first_satisfying(node: int, start: int) -> int | None:
        for idx in range(start, lengths[node] + 1):
            if locals_[node](node, idx):
                return idx
        return None

    cand: dict[int, int] = {}
    for node in nodes:
        idx = first_satisfying(node, 0)
        if idx is None:
            return None
        cand[node] = idx

    # Eliminate candidates that are causally *behind* another candidate:
    # state (i, c_i) is incompatible with (j, c_j) if the past of j's
    # candidate state requires more than c_i events on i.
    changed = True
    while changed:
        changed = False
        for i in nodes:
            for j in nodes:
                if i == j:
                    continue
                cj = cand[j]
                if cj == 0:
                    continue
                need_on_i = int(ex.clock((j, cj))[i])
                if need_on_i > cand[i]:
                    nxt = first_satisfying(i, need_on_i)
                    if nxt is None:
                        return None
                    cand[i] = nxt
                    changed = True

    # Assemble the least global state: constrained nodes at their
    # candidates, others at the minimum forced by those candidates'
    # pasts (componentwise max of their clocks).
    state = np.zeros(len(lengths), dtype=np.int64)
    for node in nodes:
        state[node] = cand[node]
    for node in nodes:
        if cand[node]:
            np.maximum(state, ex.clock((node, cand[node])), out=state)
    result: StateVector = tuple(int(v) for v in state)
    lattice = GlobalStateLattice(ex)
    assert lattice.is_consistent(result)
    return result
