"""Observations: linear extensions of the execution poset.

An *observation* is one totally ordered view of the execution — a
linear extension of ``≺``, equivalently a maximal path through the
consistent-global-state lattice.  Observations give operational
meaning to the detection modalities: ``Possibly(φ)`` holds iff *some*
observation passes through a φ-state, ``Definitely(φ)`` iff *all* do.

This module provides:

* :func:`sample_observation` — a uniformly seeded (not uniformly
  distributed) random linear extension, drawn by walking the lattice
  through randomly chosen enabled advances;
* :func:`observation_states` — the global-state path an observation
  induces;
* :func:`is_observation` — validity check for an event sequence;
* :func:`count_observations` — the exact number of linear extensions
  (path-counting DP over the lattice levels; exponential-size guard
  inherited from the lattice traversal).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..events.event import EventId
from ..events.poset import Execution
from .lattice import GlobalStateLattice, StateVector

__all__ = [
    "sample_observation",
    "observation_states",
    "is_observation",
    "count_observations",
]


def sample_observation(
    execution: Execution, rng: np.random.Generator
) -> list[EventId]:
    """One random observation (linear extension) of the execution.

    Drawn by repeatedly advancing a uniformly chosen enabled node —
    every linear extension has positive probability (though not all are
    equally likely).
    """
    lattice = GlobalStateLattice(execution)
    state = list(lattice.bottom)
    order: list[EventId] = []
    total = sum(execution.lengths)
    while len(order) < total:
        enabled = lattice.enabled_advances(tuple(state))
        node = enabled[int(rng.integers(0, len(enabled)))]
        state[node] += 1
        order.append((node, state[node]))
    return order


def observation_states(
    execution: Execution, order: Sequence[EventId]
) -> list[StateVector]:
    """The consistent-global-state path induced by an observation.

    Returns ``len(order) + 1`` states from bottom to the final state.

    Raises
    ------
    ValueError
        If ``order`` is not a valid observation.
    """
    if not is_observation(execution, order):
        raise ValueError("sequence is not a linear extension of ≺")
    state = [0] * execution.num_nodes
    path: list[StateVector] = [tuple(state)]
    for node, idx in order:
        state[node] = idx
        path.append(tuple(state))
    return path


def is_observation(execution: Execution, order: Sequence[EventId]) -> bool:
    """Is ``order`` a linear extension of the execution?

    Requires every real event exactly once, per-node index order, and
    every event after its causal predecessors.
    """
    seen = set()
    counts = [0] * execution.num_nodes
    for node, idx in order:
        if not execution.is_real((node, idx)) or (node, idx) in seen:
            return False
        if idx != counts[node] + 1:
            return False
        clock = execution.clock((node, idx))
        for j, need in enumerate(clock):
            if j != node and need > counts[j]:
                return False
        counts[node] = idx
        seen.add((node, idx))
    return len(seen) == sum(execution.lengths)


def count_observations(execution: Execution, limit: int = 200_000) -> int:
    """Exact number of linear extensions of the execution.

    Path-counting dynamic program over the lattice levels: the count of
    paths into a state is the sum over its predecessors.  Subject to
    the same ``limit`` guard as lattice traversal (linear extensions of
    wide posets are astronomically many — the *lattice* must fit, the
    count itself is returned as a Python int of any size).
    """
    lattice = GlobalStateLattice(execution, limit=limit)
    paths: dict[StateVector, int] = {lattice.bottom: 1}
    for level in lattice.levels():
        for state in level:
            count = paths[state]
            for succ in lattice.successors(state):
                paths[succ] = paths.get(succ, 0) + count
    return paths[lattice.top]
