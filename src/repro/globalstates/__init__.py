"""Consistent global states and distributed predicate detection."""

from .detection import (
    GlobalPredicate,
    LocalPredicate,
    definitely,
    possibly,
    possibly_conjunctive,
)
from .lattice import GlobalStateLattice, StateVector
from .observations import (
    count_observations,
    is_observation,
    observation_states,
    sample_observation,
)

__all__ = [
    "GlobalStateLattice",
    "StateVector",
    "possibly",
    "definitely",
    "possibly_conjunctive",
    "LocalPredicate",
    "GlobalPredicate",
    "sample_observation",
    "observation_states",
    "is_observation",
    "count_observations",
]
