"""ASCII space-time visualisation."""

from .spacetime import render, render_cut_table

__all__ = ["render", "render_cut_table"]
