"""ASCII space-time diagrams with cut overlays.

Regenerates the paper's figures textually: node time lines with events,
interval membership markers, and cut surfaces.  The renderer is
deterministic and width-bounded, so diagrams are usable in docs, test
failure output and example scripts.

Legend::

    .  internal event          s  send event        r  receive event
    X  event in the highlighted interval (uppercase of its marker)
    |  cut surface sits immediately after this position

Each cut is drawn as its own annotation row per node, labelled on the
left; surfaces at ``⊥`` (before the first event) and ``⊤`` (after the
last) render at the margins.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.cuts import Cut
from ..events.event import EventKind
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent

__all__ = ["render", "render_cut_table"]

_KIND_CHAR = {
    EventKind.INTERNAL: ".",
    EventKind.SEND: "s",
    EventKind.RECV: "r",
}


def render(
    execution: Execution,
    intervals: Mapping[str, NonatomicEvent] | None = None,
    cuts: Mapping[str, Cut] | None = None,
    show_messages: bool = True,
    cell_width: int = 2,
) -> str:
    """Render an execution as an ASCII space-time diagram.

    Parameters
    ----------
    execution:
        The execution to draw.
    intervals:
        Named intervals; member events are drawn as the uppercase first
        letter of the interval's name (falling back to ``X``).
    cuts:
        Named cuts; each adds one annotation row per node with a ``|``
        marking its surface position.
    show_messages:
        Append a message list (``(0,3) -> (1,2)``) below the diagram.
    cell_width:
        Horizontal width per event slot (>= 2).
    """
    if cell_width < 2:
        raise ValueError("cell_width must be >= 2")
    intervals = dict(intervals or {})
    cuts = dict(cuts or {})
    member_char: dict[tuple, str] = {}
    for name, iv in intervals.items():
        ch = (name or "X")[0].upper()
        for eid in iv.ids:
            member_char[eid] = ch

    max_k = max(execution.lengths, default=0)
    name_w = max(
        [len(f"P{i}") for i in range(execution.num_nodes)]
        + [len(label) for label in cuts]
        + [2]
    )
    lines = []
    header = " " * (name_w + 2) + "".join(
        str(j).ljust(cell_width) for j in range(1, max_k + 1)
    )
    lines.append(header.rstrip())
    for i in range(execution.num_nodes):
        row = [f"P{i}".ljust(name_w), ": "]
        for j in range(1, execution.num_real(i) + 1):
            ev = execution.event((i, j))
            ch = member_char.get((i, j)) or _KIND_CHAR.get(ev.kind, "?")
            row.append(ch.ljust(cell_width))
        lines.append("".join(row).rstrip())
        for label, cut in cuts.items():
            pos = int(cut.vector[i])
            marks = [" "] * (max_k + 1)
            col = min(pos, max_k)  # ⊤ renders at the right margin
            marks[col] = "|"
            ann = (
                label.ljust(name_w)
                + "  "
                + "".join(m.ljust(cell_width) for m in marks)
            )
            lines.append(ann.rstrip())
    if show_messages and execution.trace.messages:
        lines.append("")
        lines.append("messages:")
        for msg in execution.trace.messages:
            lines.append(f"  {msg.send} -> {msg.recv}")
    return "\n".join(lines)


def render_cut_table(cuts: Mapping[str, Cut]) -> str:
    """Tabulate cut timestamp vectors (one row per cut)."""
    if not cuts:
        return "(no cuts)"
    width = max(len(label) for label in cuts)
    lines = []
    for label, cut in cuts.items():
        vec = " ".join(f"{int(v):3d}" for v in cut.vector)
        lines.append(f"{label.ljust(width)}  [{vec} ]")
    return "\n".join(lines)
