"""Nonatomic poset events (intervals).

A *nonatomic event* (Section 1 of the paper) is a non-empty subset
``X ⊆ E`` of atomic events: a higher-level application activity whose
component events may occur concurrently at several nodes.  This module
implements:

* :class:`NonatomicEvent` — the interval itself, with its *node set*
  ``N_X`` (Definition 1) and per-node extremal events precomputed;
* the coupling point where the relation engines cache the four cuts
  C1–C4 (Key Idea 1: *"Once identified at a one-time cost, these cuts
  can be reused at a low cost to evaluate causality relations with
  respect to all other nonatomic events."*).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from ..events.event import EventId
from ..events.poset import Execution

__all__ = ["NonatomicEvent"]


class NonatomicEvent:
    """A nonatomic poset event ``X`` over an :class:`Execution`.

    Parameters
    ----------
    execution:
        The analysed execution the component events belong to.
    ids:
        The component atomic events, as ``(node, index)`` identifiers.
        Must be non-empty, unique, and denote *real* (non-dummy) events
        — the paper notes that *"an event A of interest to an
        application will usually not contain any dummy events"*, and the
        evaluation theory requires it.
    name:
        Optional human-readable name used in reports and specs.

    Notes
    -----
    Construction is ``O(|X|)``.  The per-node least and greatest
    component events (which determine the proxies of Definition 2 and
    all four cuts of Table 2) are computed eagerly; the cut timestamps
    themselves are computed lazily by :mod:`repro.core.cuts` and cached
    on the instance.
    """

    __slots__ = ("_execution", "_ids", "_name", "_first", "_last", "_nodes", "cache")

    def __init__(
        self,
        execution: Execution,
        ids: Iterable[EventId],
        name: str | None = None,
    ) -> None:
        id_set = frozenset((int(n), int(j)) for n, j in ids)
        if not id_set:
            raise ValueError("a nonatomic event must contain at least one event")
        first: dict[int, int] = {}
        last: dict[int, int] = {}
        for node, idx in id_set:
            if not execution.is_real((node, idx)):
                raise ValueError(
                    f"event id {(node, idx)} is not a real event of the execution"
                )
            if node not in first or idx < first[node]:
                first[node] = idx
            if node not in last or idx > last[node]:
                last[node] = idx
        self._execution = execution
        self._ids: frozenset[EventId] = id_set
        self._name = name
        self._first = first
        self._last = last
        self._nodes: tuple[int, ...] = tuple(sorted(first))
        #: scratch cache used by the cut machinery (Key Idea 1)
        self.cache: dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def execution(self) -> Execution:
        """The execution this event lives in."""
        return self._execution

    @property
    def ids(self) -> frozenset[EventId]:
        """The component atomic event identifiers."""
        return self._ids

    @property
    def name(self) -> str | None:
        """Optional human-readable name."""
        return self._name

    @property
    def node_set(self) -> tuple[int, ...]:
        """``N_X`` (Definition 1): nodes where X has component events,
        sorted ascending."""
        return self._nodes

    @property
    def width(self) -> int:
        """``|N_X|`` — the number of nodes the event spans."""
        return len(self._nodes)

    def first_at(self, node: int) -> int:
        """Local index of the least component event on ``node``.

        Raises
        ------
        KeyError
            If ``node`` is not in the node set.
        """
        return self._first[node]

    def last_at(self, node: int) -> int:
        """Local index of the greatest component event on ``node``."""
        return self._last[node]

    def first_ids(self) -> tuple[EventId, ...]:
        """Per-node least component events — ``L_X`` under Definition 2."""
        return tuple((n, self._first[n]) for n in self._nodes)

    def last_ids(self) -> tuple[EventId, ...]:
        """Per-node greatest component events — ``U_X`` under Definition 2."""
        return tuple((n, self._last[n]) for n in self._nodes)

    def restrict(self, node: int) -> tuple[EventId, ...]:
        """``X_i = X ∩ E_i``: the component events on ``node``, ordered."""
        return tuple(
            sorted(eid for eid in self._ids if eid[0] == node)
        )

    def is_disjoint(self, other: "NonatomicEvent") -> bool:
        """True if the two intervals share no atomic event."""
        return self._ids.isdisjoint(other._ids)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[EventId]:
        return iter(sorted(self._ids))

    def __contains__(self, eid: object) -> bool:
        return eid in self._ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NonatomicEvent):
            return NotImplemented
        return self._execution is other._execution and self._ids == other._ids

    def __hash__(self) -> int:
        return hash((id(self._execution), self._ids))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self._name!r}" if self._name else ""
        return (
            f"NonatomicEvent({tag and tag + ', '}|X|={len(self._ids)}, "
            f"N_X={list(self._nodes)})"
        )
