"""Identifying nonatomic events in recorded traces.

The paper's Problem 4 assumes *"the application identifies pertinent
nonatomic events"*.  This module provides the standard identification
mechanisms a monitoring layer uses:

* **by label** — component events tagged with an application-level
  label (e.g. all ``"cs:lock-17"`` events form one critical-section
  interval);
* **by time window** — all events whose physical timestamp falls in an
  interval, optionally restricted to a node subset (the natural notion
  for real-time specifications);
* **random sampling** — reproducible synthetic intervals for tests and
  benchmarks, with precise control of ``|N_X|`` and per-node population.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..events.event import EventId
from ..events.poset import Execution
from .event import NonatomicEvent

__all__ = [
    "by_label",
    "by_label_prefix",
    "by_window",
    "random_interval",
    "random_disjoint_pair",
]


def by_label(
    execution: Execution, label: str, name: str | None = None
) -> NonatomicEvent:
    """The interval of all events carrying exactly ``label``.

    Raises
    ------
    ValueError
        If no event carries the label.
    """
    ids = [ev.eid for ev in execution.trace.iter_events() if ev.label == label]
    if not ids:
        raise ValueError(f"no events labelled {label!r}")
    return NonatomicEvent(execution, ids, name=name or label)


def by_label_prefix(
    execution: Execution, prefix: str
) -> dict[str, NonatomicEvent]:
    """Group events by label under a common prefix.

    Returns a mapping ``label -> interval`` for every distinct label
    starting with ``prefix``.  Useful for e.g. collecting all critical
    section occupancies tagged ``"cs:..."``.
    """
    groups: dict[str, list[EventId]] = {}
    for ev in execution.trace.iter_events():
        if ev.label is not None and ev.label.startswith(prefix):
            groups.setdefault(ev.label, []).append(ev.eid)
    return {
        label: NonatomicEvent(execution, ids, name=label)
        for label, ids in groups.items()
    }


def by_window(
    execution: Execution,
    t_start: float,
    t_end: float,
    nodes: Sequence[int] | None = None,
    name: str | None = None,
) -> NonatomicEvent:
    """The interval of all events with ``t_start <= time <= t_end``.

    Events without a physical timestamp are skipped.  ``nodes``
    restricts the window to a node subset.

    Raises
    ------
    ValueError
        If the window contains no events.
    """
    node_filter = None if nodes is None else set(nodes)
    ids = [
        ev.eid
        for ev in execution.trace.iter_events()
        if ev.time is not None
        and t_start <= ev.time <= t_end
        and (node_filter is None or ev.node in node_filter)
    ]
    if not ids:
        raise ValueError(f"no events in window [{t_start}, {t_end}]")
    return NonatomicEvent(execution, ids, name=name)


def random_interval(
    execution: Execution,
    rng: np.random.Generator,
    num_nodes: int | None = None,
    events_per_node: int = 2,
    nodes: Sequence[int] | None = None,
    exclude: Sequence[EventId] = (),
    name: str | None = None,
) -> NonatomicEvent:
    """A reproducible random nonatomic event.

    Parameters
    ----------
    execution:
        The execution to draw from.
    rng:
        NumPy random generator (callers own the seed).
    num_nodes:
        Desired ``|N_X|``; defaults to a random non-empty subset size.
        Nodes without eligible events are skipped, so the realised node
        set can be smaller on sparse executions.
    events_per_node:
        Maximum component events drawn on each chosen node.
    nodes:
        Candidate node pool (default: all nodes with real events).
    exclude:
        Event ids that must not be drawn (e.g. a previously drawn
        interval, to build disjoint pairs).
    """
    excluded = set(exclude)
    pool = [
        i
        for i in (nodes if nodes is not None else range(execution.num_nodes))
        if any(
            (i, j) not in excluded
            for j in range(1, execution.num_real(i) + 1)
        )
    ]
    if not pool:
        raise ValueError("no nodes with eligible events")
    if num_nodes is None:
        num_nodes = int(rng.integers(1, len(pool) + 1))
    num_nodes = min(num_nodes, len(pool))
    chosen_nodes = rng.choice(len(pool), size=num_nodes, replace=False)
    ids: list[EventId] = []
    for pos in chosen_nodes:
        node = pool[int(pos)]
        eligible = [
            j
            for j in range(1, execution.num_real(node) + 1)
            if (node, j) not in excluded
        ]
        take = min(events_per_node, len(eligible))
        picks = rng.choice(len(eligible), size=take, replace=False)
        ids.extend((node, eligible[int(p)]) for p in picks)
    return NonatomicEvent(execution, ids, name=name)


def random_disjoint_pair(
    execution: Execution,
    rng: np.random.Generator,
    num_nodes_x: int | None = None,
    num_nodes_y: int | None = None,
    events_per_node: int = 2,
) -> tuple[NonatomicEvent, NonatomicEvent]:
    """Two random intervals with no shared atomic event.

    Disjointness is the precondition under which the paper's evaluation
    conditions are exact (see DESIGN.md §2); benchmark and property-test
    workloads are generated through this helper.
    """
    x = random_interval(
        execution, rng, num_nodes=num_nodes_x,
        events_per_node=events_per_node, name="X",
    )
    y = random_interval(
        execution, rng, num_nodes=num_nodes_y,
        events_per_node=events_per_node, exclude=sorted(x.ids), name="Y",
    )
    return x, y
