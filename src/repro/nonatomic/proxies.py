"""Proxies ``L_X`` and ``U_X`` of nonatomic events (Definitions 2 and 3).

The 32-relation family ``R`` of the paper is built by applying the 8
base relations of Table 1 to the *proxies* of X and Y — nonatomic
events standing for the beginning (``L``) and end (``U``) of an
interval.  Two proxy definitions appear in the paper:

* **Definition 2** (per-node extrema, the default here):
  ``L_X = {e_i ∈ X | ∀e'_i ∈ X: e_i ≼ e'_i}`` — the least component
  event on each node of ``N_X`` (and dually for ``U_X``).  Under the
  linear local order this is simply the per-node first/last component
  event, so ``N_{L_X} = N_{U_X} = N_X`` and ``|X̂_i| = 1``.

* **Definition 3** (global extrema): ``L_X = {e ∈ X | ∀e' ∈ X: e ≼ e'}``
  — the component events below *all* of X.  By antisymmetry this is a
  single event when it exists, and it may not exist (no global minimum),
  in which case :class:`ProxyUndefinedError` is raised.

The paper notes *"Any of the above or a similar definition of proxies is
consistently used, depending on context and application."*  All engines
accept either via :class:`ProxyDefinition`.
"""

from __future__ import annotations

import enum

from .event import NonatomicEvent

__all__ = ["Proxy", "ProxyDefinition", "ProxyUndefinedError", "proxy_of"]


class Proxy(enum.Enum):
    """Which proxy of an interval: its beginning ``L`` or its end ``U``."""

    L = "L"
    U = "U"


class ProxyDefinition(enum.Enum):
    """Which formal definition of proxies to use (Def. 2 vs Def. 3)."""

    PER_NODE = "per-node"  # Definition 2
    GLOBAL = "global"  # Definition 3


class ProxyUndefinedError(ValueError):
    """Raised when a Definition-3 proxy does not exist.

    Definition 3 requires a component event comparable to (below/above)
    every other component event; concurrent extrema make the proxy
    empty, hence undefined as a nonatomic event.
    """


def _proxy_per_node(x: NonatomicEvent, which: Proxy) -> NonatomicEvent:
    ids = x.first_ids() if which is Proxy.L else x.last_ids()
    suffix = which.value
    name = f"{suffix}({x.name})" if x.name else None
    return NonatomicEvent(x.execution, ids, name=name)


def _proxy_global(x: NonatomicEvent, which: Proxy) -> NonatomicEvent:
    ex = x.execution
    # Only per-node extrema can be global extrema, so search those.
    candidates = x.first_ids() if which is Proxy.L else x.last_ids()
    others = list(x.ids)
    for cand in candidates:
        if which is Proxy.L:
            ok = all(ex.leq(cand, other) for other in others)
        else:
            ok = all(ex.leq(other, cand) for other in others)
        if ok:
            name = f"{which.value}3({x.name})" if x.name else None
            return NonatomicEvent(ex, [cand], name=name)
    raise ProxyUndefinedError(
        f"interval has no global {'minimum' if which is Proxy.L else 'maximum'}; "
        "Definition 3 proxy undefined (use ProxyDefinition.PER_NODE)"
    )


def proxy_of(
    x: NonatomicEvent,
    which: Proxy,
    definition: ProxyDefinition = ProxyDefinition.PER_NODE,
) -> NonatomicEvent:
    """The proxy ``X̂`` of interval ``x``.

    Results are cached on the interval (one proxy is typically reused
    across many relation evaluations — Key Idea 1).

    Parameters
    ----------
    x:
        The interval.
    which:
        :attr:`Proxy.L` for the beginning, :attr:`Proxy.U` for the end.
    definition:
        :attr:`ProxyDefinition.PER_NODE` (Definition 2, always defined)
        or :attr:`ProxyDefinition.GLOBAL` (Definition 3, may raise
        :class:`ProxyUndefinedError`).
    """
    key = ("proxy", which, definition)
    cached = x.cache.get(key)
    if cached is not None:
        return cached
    if definition is ProxyDefinition.PER_NODE:
        result = _proxy_per_node(x, which)
    elif definition is ProxyDefinition.GLOBAL:
        result = _proxy_global(x, which)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown proxy definition: {definition!r}")
    x.cache[key] = result
    return result
