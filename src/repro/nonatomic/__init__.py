"""Nonatomic poset events, their node sets, proxies, and selection."""

from .event import NonatomicEvent
from .proxies import Proxy, ProxyDefinition, ProxyUndefinedError, proxy_of
from .selection import (
    by_label,
    by_label_prefix,
    by_window,
    random_disjoint_pair,
    random_interval,
)

__all__ = [
    "NonatomicEvent",
    "Proxy",
    "ProxyDefinition",
    "ProxyUndefinedError",
    "proxy_of",
    "by_label",
    "by_label_prefix",
    "by_window",
    "random_interval",
    "random_disjoint_pair",
]
